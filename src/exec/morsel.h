#ifndef MAXSON_EXEC_MORSEL_H_
#define MAXSON_EXEC_MORSEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/record_batch.h"
#include "storage/sarg.h"

namespace maxson::exec {

/// The scheduler's unit of scan work: a contiguous stripe range of one
/// split. The executor above (engine/table_scan.cc) decides the granularity
/// — one morsel per split by default, finer when a morsel-row target is set
/// — and the scheduler only ever treats a morsel as an opaque, claimable
/// unit. Row bounds are informational (absolute over the split's file).
struct Morsel {
  size_t split_index = 0;
  std::string split_path;
  size_t begin_stripe = 0;  // [begin_stripe, end_stripe)
  size_t end_stripe = 0;
  uint64_t begin_row = 0;  // [begin_row, end_row)
  uint64_t end_row = 0;

  /// Identity key for coalescing: two subscriptions share a parse pass only
  /// when they ask for the exact same stripe range of the same split.
  std::string Id() const;
};

/// One subscriber's pushed-down pruning predicates for a morsel, plus a
/// canonical serialization used for predicate-identity checks. Sharing a
/// pass merges predicates as a *disjunction* for row-group pruning — a
/// group survives if any subscriber's SARG keeps it — which is sound
/// because pruning is advisory: every subscriber's residual WHERE filter
/// re-checks the surviving rows (see DESIGN.md, "SARG-merge soundness").
struct ScanPredicate {
  storage::SearchArgument raw_sarg;
  storage::SearchArgument cache_sarg;
  /// Canonical serialization of both SARGs; equal keys mean identical
  /// pruning behaviour. Empty-empty serializes to "" (reads every group).
  std::string key;

  bool unconstrained() const {
    return raw_sarg.empty() && cache_sarg.empty();
  }
  static std::string KeyFor(const storage::SearchArgument& raw,
                            const storage::SearchArgument& cache);
};

/// What one executed parse pass produced: the decoded rows of the morsel
/// with the task's *union* columns (in `MorselTask::union_columns` order),
/// plus the input bytes consumed to produce them (CORC bytes read + raw
/// bytes parsed) — the work a coalesced subscriber avoided repeating.
struct SharedPassOutput {
  storage::RecordBatch batch;
  uint64_t input_bytes = 0;
};

/// Shared state of one coalesced parse pass. All fields except `morsel` are
/// guarded by the owning MorselScheduler's mutex; subscribers hold
/// shared_ptrs and read results only after WaitDone establishes the
/// happens-before edge.
struct MorselTask {
  enum class State { kPending, kRunning, kDone };

  explicit MorselTask(Morsel m) : morsel(std::move(m)) {}

  const Morsel morsel;
  State state = State::kPending;
  /// Union of every registered subscriber's columns (opaque keys chosen by
  /// the executor layer), first-seen order, deduplicated. Frozen once the
  /// task is claimed.
  std::vector<std::string> union_columns;
  /// Deduplicated (by key) predicates of the registered subscribers; the
  /// pass prunes row groups with their disjunction.
  std::vector<ScanPredicate> predicates;
  /// True when any registered predicate is unconstrained: the pass reads
  /// every row group, so any same-columns subscriber may attach safely.
  bool reads_all_groups = false;
  size_t registered = 1;  // subscriptions riding this pass
  size_t consumed = 0;    // subscriptions that took their projection
  /// Output released (every registered subscriber consumed it); late
  /// arrivals start a fresh pass instead of attaching.
  bool retired = false;
  Status status = Status::Ok();
  SharedPassOutput output;  // valid when state==kDone && status.ok()
};

/// Work-stealing morsel scheduler for one scan group (one table at one
/// cache-validity stamp): the task table every ScanSubscription of the
/// group registers into, claims pending passes from, and publishes results
/// to. "Stealing" is by-claim rather than by-deque: a pending pass is run
/// by whichever subscriber thread (caller or pool helper) reaches it first,
/// and every other subscriber registered on it rides the result.
///
/// Blocking contract (deadlock safety on a shared pool): only WaitDone
/// blocks, and it is called exclusively from a subscription's *calling*
/// thread. Claim loops running on pool workers use ClaimPending, which
/// never waits — when nothing is pending they exit, so pool workers are
/// never parked waiting for work another parked worker would have to do.
class MorselScheduler {
 public:
  MorselScheduler() = default;
  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  struct Registration {
    std::shared_ptr<MorselTask> task;
    /// True when an existing pass was joined (merged into a pending task or
    /// attached to a running/completed one) — one parse pass coalesced.
    bool shared = false;
    /// Input bytes of an already-completed pass joined at registration;
    /// savings for passes still in flight are reported by Publish instead.
    uint64_t saved_bytes = 0;
  };

  /// Registers interest in `morsel` under `columns` and `predicate`.
  /// Pending tasks merge freely (column union + predicate disjunction). A
  /// running or completed task is joined only when it already covers the
  /// subscriber — every requested column in its union AND its pruning no
  /// narrower (identical predicate key, or the pass reads all groups) —
  /// because a claimed task's inputs are frozen. Otherwise a fresh task is
  /// created.
  Registration Register(const Morsel& morsel,
                        const std::vector<std::string>& columns,
                        const ScanPredicate& predicate)
      MAXSON_EXCLUDES(mutex_);

  struct Claim {
    std::shared_ptr<MorselTask> task;  // null when nothing was pending
    size_t ordinal = 0;                // index into the claimant's `tasks`
    /// Inputs frozen at claim time, copied out so the pass runs without
    /// the scheduler lock.
    std::vector<std::string> union_columns;
    std::vector<ScanPredicate> predicates;
  };

  /// Claims the first still-pending task of `tasks` (the claimant's
  /// registration list, in its morsel order) and marks it running. Returns
  /// a null task when none are pending — it never waits.
  Claim ClaimPending(const std::vector<std::shared_ptr<MorselTask>>& tasks)
      MAXSON_EXCLUDES(mutex_);

  /// Publishes a claimed task's result and wakes waiters. Returns the
  /// input bytes saved by coalescing: output.input_bytes for every
  /// registered subscriber beyond the executing one.
  uint64_t Publish(const std::shared_ptr<MorselTask>& task, Status status,
                   SharedPassOutput output) MAXSON_EXCLUDES(mutex_);

  /// Blocks until every task in `tasks` is done or `give_up()` returns
  /// true (checked a few hundred times per second; cancellation is
  /// cooperative). Calling-thread only — see the blocking contract above.
  void WaitDone(const std::vector<std::shared_ptr<MorselTask>>& tasks,
                const std::function<bool()>& give_up) MAXSON_EXCLUDES(mutex_);

  /// Records that one registered subscriber consumed `task`'s output;
  /// the last consumer of a completed task releases the decoded rows.
  void Consume(const std::shared_ptr<MorselTask>& task)
      MAXSON_EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  std::condition_variable cv_;
  /// Tasks by Morsel::Id in creation order: front-most compatible task
  /// wins a registration, so concurrent identical subscribers converge on
  /// one pass instead of fanning out over stale retired entries. The
  /// MorselTask objects the lists point to are guarded by mutex_ too (see
  /// the MorselTask comment) — pt_guarded_by cannot reach through the
  /// nested containers, so that half of the contract stays prose.
  std::map<std::string, std::vector<std::shared_ptr<MorselTask>>> tasks_
      MAXSON_GUARDED_BY(mutex_);
};

}  // namespace maxson::exec

#endif  // MAXSON_EXEC_MORSEL_H_
