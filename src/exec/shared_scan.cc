#include "exec/shared_scan.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace maxson::exec {

ScanSubscription::~ScanSubscription() {
  // Abandoned or partially consumed morsels still count as consumed so a
  // completed shared pass is not pinned by a subscriber that will never
  // read it (cancellation, an error on an earlier morsel).
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (consumed_[i] == 0) scheduler_->Consume(tasks_[i]);
  }
  manager_->Unsubscribe(group_key_);
}

Status ScanSubscription::RunClaims(const std::atomic<bool>* cancel) {
  while (!ShouldStop(cancel)) {
    MorselScheduler::Claim claim = scheduler_->ClaimPending(tasks_);
    if (claim.task == nullptr) break;
    // A claimed pass always runs to completion and publishes, even when
    // cancellation fires meanwhile: co-subscribers are waiting on it, and
    // a pass that could vanish after claim would strand them.
    Result<SharedPassOutput> result = pass_fn_(
        claim.task->morsel, claim.ordinal, claim.union_columns,
        claim.predicates);
    self_executed_[claim.ordinal] = 1;
    const uint64_t saved =
        result.ok()
            ? scheduler_->Publish(claim.task, Status::Ok(),
                                  std::move(*result))
            : scheduler_->Publish(claim.task, result.status(),
                                  SharedPassOutput{});
    manager_->RecordPass(saved);
  }
  // Pass failures land in their task (first failure in morsel order is
  // surfaced by Collect), mirroring TaskGroup's deterministic-error
  // contract: a failed morsel never cancels its siblings.
  return Status::Ok();
}

Status ScanSubscription::Collect(ThreadPool* pool,
                                 const std::atomic<bool>* cancel) {
  // Fan claim loops across the pool. Helpers claim-until-drained and exit
  // — they never wait — so pool workers cannot deadlock even when every
  // worker is inside some subscription's claim loop.
  if (pool != nullptr && pool->num_threads() > 1 && tasks_.size() > 1) {
    TaskGroup helpers(pool);
    const size_t fan =
        std::min(pool->num_threads() - 1, tasks_.size() - 1);
    for (size_t i = 0; i < fan; ++i) {
      helpers.Spawn([this, cancel] { return RunClaims(cancel); });
    }
    MAXSON_RETURN_NOT_OK(RunClaims(cancel));
    MAXSON_RETURN_NOT_OK(helpers.Wait());
  } else {
    MAXSON_RETURN_NOT_OK(RunClaims(cancel));
  }
  // Morsels claimed by other subscriptions finish on their threads; only
  // this (calling) thread parks for them.
  scheduler_->WaitDone(tasks_, [this, cancel] { return ShouldStop(cancel); });
  if (ShouldStop(cancel)) {
    return Status::Cancelled("shared scan subscription cancelled");
  }
  for (const std::shared_ptr<MorselTask>& task : tasks_) {
    if (!task->status.ok()) return task->status;
  }
  return Status::Ok();
}

std::vector<size_t> ScanSubscription::ColumnMapping(size_t ordinal) const {
  // Resolved against the batch's schema (columns are named by their keys)
  // rather than the union list: a pass may lay the union out in its own
  // order, e.g. raw columns before cache columns.
  const storage::Schema& schema = tasks_[ordinal]->output.batch.schema();
  std::vector<size_t> mapping;
  mapping.reserve(columns_.size());
  for (const std::string& col : columns_) {
    mapping.push_back(static_cast<size_t>(schema.FindField(col)));
  }
  return mapping;
}

void ScanSubscription::Release(size_t ordinal) {
  if (consumed_[ordinal] != 0) return;
  consumed_[ordinal] = 1;
  scheduler_->Consume(tasks_[ordinal]);
}

std::unique_ptr<ScanSubscription> SharedScanManager::Subscribe(
    const ScanInterest& interest, SharedScanPassFn pass_fn) {
  std::unique_ptr<ScanSubscription> sub(new ScanSubscription());
  sub->manager_ = this;
  sub->group_key_ = {interest.table_key, interest.validity};
  sub->columns_ = interest.columns;
  sub->pass_fn_ = std::move(pass_fn);
  {
    MutexLock lock(mutex_);
    Group& group = groups_[sub->group_key_];
    if (group.scheduler == nullptr) {
      group.scheduler = std::make_shared<MorselScheduler>();
      ++stats_.groups_opened;
    }
    ++group.refs;
    sub->scheduler_ = group.scheduler;
  }
  // Morsel registration takes the scheduler's lock, not the manager's, so
  // subscriptions to different tables never contend here.
  uint64_t coalesced = 0;
  uint64_t saved = 0;
  for (const Morsel& morsel : interest.morsels) {
    MorselScheduler::Registration reg =
        sub->scheduler_->Register(morsel, interest.columns,
                                  interest.predicate);
    sub->tasks_.push_back(std::move(reg.task));
    if (reg.shared) {
      ++coalesced;
      saved += reg.saved_bytes;
    }
  }
  sub->self_executed_.assign(sub->tasks_.size(), 0);
  sub->consumed_.assign(sub->tasks_.size(), 0);
  RecordAttach(coalesced, saved);
  return sub;
}

void SharedScanManager::Unsubscribe(
    const std::pair<std::string, uint64_t>& key) {
  MutexLock lock(mutex_);
  const auto it = groups_.find(key);
  if (it == groups_.end()) return;
  if (--it->second.refs == 0) groups_.erase(it);
}

void SharedScanManager::RecordPass(uint64_t saved_bytes) {
  obs::MetricsRegistry* registry;
  {
    MutexLock lock(mutex_);
    ++stats_.parse_passes;
    stats_.saved_bytes += saved_bytes;
    registry = metrics_registry_;
  }
  if (registry == nullptr) return;
  registry->GetCounter(obs::kSharedScanParsePasses)->Increment();
  if (saved_bytes > 0) {
    registry->GetCounter(obs::kSharedScanSavedBytes)->Increment(saved_bytes);
  }
}

void SharedScanManager::RecordAttach(uint64_t coalesced,
                                     uint64_t saved_bytes) {
  obs::MetricsRegistry* registry;
  {
    MutexLock lock(mutex_);
    ++stats_.subscribers;
    stats_.coalesced_parses += coalesced;
    stats_.saved_bytes += saved_bytes;
    registry = metrics_registry_;
  }
  if (registry == nullptr) return;
  registry->GetCounter(obs::kSharedScanSubscribers)->Increment();
  if (coalesced > 0) {
    registry->GetCounter(obs::kSharedScanCoalescedParses)
        ->Increment(coalesced);
  }
  if (saved_bytes > 0) {
    registry->GetCounter(obs::kSharedScanSavedBytes)->Increment(saved_bytes);
  }
}

SharedScanStats SharedScanManager::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace maxson::exec
