#ifndef MAXSON_EXEC_THREAD_POOL_H_
#define MAXSON_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace maxson::exec {

/// Shared worker pool behind the engine's split-parallel scans, the
/// row-chunk-parallel operators, and the midnight cacher — the in-process
/// analogue of the paper's SparkSQL executors (one file = one split = one
/// unit of parallelism).
///
/// The pool models a *parallelism degree* of `num_threads`: it owns
/// `num_threads - 1` OS threads and every blocking helper (TaskGroup::Wait,
/// ParallelFor) runs tasks on the calling thread as well, so the caller is
/// never idle and a degree of 1 owns no threads at all — execution is then
/// plain inline sequential code, byte-for-byte the pre-pool behaviour.
///
/// Workers are started lazily on the first submitted task; constructing a
/// pool (e.g. inside every QueryEngine) costs nothing until a parallel
/// operator actually runs. All members are thread-safe.
class ThreadPool {
 public:
  /// `num_threads` = 0 picks the hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (callers + owned workers); always >= 1.
  size_t num_threads() const { return num_threads_; }

  /// Enqueues `task` for a worker thread, starting the workers on first
  /// use. With a degree of 1 there are no workers: the task runs inline.
  void Submit(std::function<void()> task);

  /// Lifetime count of tasks handed to Submit. Observability only — the
  /// count depends on the parallelism degree (TaskGroup::Wait steals work
  /// before it is submitted), so it is exported as a gauge, never folded
  /// into the deterministic counter totals.
  uint64_t tasks_submitted() const {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }

 private:
  void EnsureStarted() MAXSON_REQUIRES(mutex_);
  void WorkerLoop() MAXSON_EXCLUDES(mutex_);

  const size_t num_threads_;
  std::atomic<uint64_t> tasks_submitted_{0};
  Mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ MAXSON_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ MAXSON_GUARDED_BY(mutex_);
  bool started_ MAXSON_GUARDED_BY(mutex_) = false;
  bool shutdown_ MAXSON_GUARDED_BY(mutex_) = false;
};

/// A batch of Status-returning tasks fanned out on a ThreadPool and joined
/// with Wait(). Wait() drains unstarted tasks on the calling thread, so a
/// group always makes progress even when every pool worker is busy with
/// other groups (queries and the midnight cycle share one pool).
///
/// Error contract: Wait() runs every spawned task (a failure does not
/// cancel its siblings — their side effects land in task-private buffers
/// the caller then discards) and returns the first non-OK status in spawn
/// order, making the returned status independent of scheduling.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  /// Backstop join for early-exit paths. A destructor cannot propagate the
  /// group status; callers that care must call Wait() themselves first.
  ~TaskGroup() { (void)Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<Status()> fn);

  /// Blocks until every spawned task has finished, helping to run them.
  /// Idempotent; returns the first failure in spawn order.
  Status Wait();

 private:
  struct State {
    Mutex mutex;
    std::condition_variable cv;
    /// Indexes into tasks not yet started.
    std::deque<size_t> pending MAXSON_GUARDED_BY(mutex);
    std::vector<std::function<Status()>> tasks MAXSON_GUARDED_BY(mutex);
    std::vector<Status> statuses MAXSON_GUARDED_BY(mutex);
    size_t done MAXSON_GUARDED_BY(mutex) = 0;

    /// Runs one pending task if any; returns false when none were pending.
    bool RunOne() MAXSON_EXCLUDES(mutex);
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

/// Runs `fn(i)` for every i in [0, n) across the pool, the calling thread
/// included. Iterations must be independent; each should write to its own
/// output slot so that merging in index order is deterministic. Returns the
/// first non-OK status in index order. A null pool runs inline.
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn);

/// Fixed-size chunk decomposition of [0, n): chunk boundaries depend only
/// on `n` and `chunk_rows` — never on the pool's thread count — so
/// chunk-merged results (including floating-point accumulation order) are
/// byte-identical at every parallelism degree.
struct ChunkRange {
  size_t begin;
  size_t end;
};
std::vector<ChunkRange> MakeChunks(size_t n, size_t chunk_rows);

}  // namespace maxson::exec

#endif  // MAXSON_EXEC_THREAD_POOL_H_
