#ifndef MAXSON_EXEC_SHARED_SCAN_H_
#define MAXSON_EXEC_SHARED_SCAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "exec/morsel.h"
#include "exec/thread_pool.h"
#include "storage/record_batch.h"

namespace maxson::obs {
class MetricsRegistry;
}  // namespace maxson::obs

namespace maxson::exec {

/// A query-side scan's declaration of interest: which table (at which
/// cache-validity stamp), which morsels, which columns, and which pruning
/// predicates. Column names are opaque keys chosen by the executor layer
/// above — the scheduler only unions and compares them — so anything that
/// identifies a decodable column (raw name, cache binding, …) works, and
/// two queries naming the same physical column share it regardless of how
/// their plans spell it.
struct ScanInterest {
  /// Identity of the scanned table (e.g. its directory). Subscriptions
  /// share passes only within one (table_key, validity) group.
  std::string table_key;
  /// Cache-state stamp (the session's CacheRegistry version): a mid-run
  /// invalidation moves new queries to a fresh group, so passes executed
  /// against the old cache state are never fanned out across the change.
  uint64_t validity = 0;
  std::vector<std::string> columns;  // this subscriber's keys, output order
  ScanPredicate predicate;
  std::vector<Morsel> morsels;  // assembly order of the subscriber's output
};

/// Executes one parse pass: decodes `morsel` with the task's union columns,
/// pruning row groups with the predicate disjunction. `ordinal` is the
/// position of the morsel in the *executing subscriber's* interest, so the
/// callback can attribute pass metrics to a per-morsel slot. The batch must
/// carry one column per `union_columns` entry, each *named* by its key (any
/// column order — subscribers map their columns by name).
///
/// The callback is supplied per subscription and only ever invoked for
/// tasks that subscription claimed, on its calling thread or its pool
/// helpers, strictly within Collect(); capturing query-local state by
/// reference is safe.
using SharedScanPassFn = std::function<Result<SharedPassOutput>(
    const Morsel& morsel, size_t ordinal,
    const std::vector<std::string>& union_columns,
    const std::vector<ScanPredicate>& predicates)>;

/// Monitoring totals of a SharedScanManager (also published to the obs
/// registry under the maxson_sharedscan_* names, see obs/metric_names.h).
struct SharedScanStats {
  uint64_t subscribers = 0;        // subscriptions opened
  uint64_t parse_passes = 0;       // passes actually executed
  uint64_t coalesced_parses = 0;   // morsel registrations that joined a pass
  uint64_t saved_bytes = 0;        // input bytes not re-processed
  uint64_t groups_opened = 0;      // (table, validity) groups created
};

class SharedScanManager;

/// One query's handle on a shared scan: created by
/// SharedScanManager::Subscribe, driven by Collect, consumed morsel by
/// morsel, closed by destruction. See DESIGN.md ("Morsel-driven shared
/// scans") for the lifecycle.
class ScanSubscription {
 public:
  ~ScanSubscription();
  ScanSubscription(const ScanSubscription&) = delete;
  ScanSubscription& operator=(const ScanSubscription&) = delete;

  /// Runs until every registered morsel has a result: claims pending
  /// passes (fanning claim loops across `pool`), then waits for morsels
  /// other subscriptions are executing. Returns the first failed morsel's
  /// status in morsel order, or Cancelled when Cancel()/`cancel` fired.
  /// Cancellation is cooperative — it is honoured between morsels, never
  /// mid-pass, so a claimed pass always publishes for its co-subscribers.
  Status Collect(ThreadPool* pool, const std::atomic<bool>* cancel = nullptr);

  /// Requests cancellation of a Collect in flight (thread-safe).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  size_t num_morsels() const { return tasks_.size(); }
  const Morsel& morsel(size_t ordinal) const {
    return tasks_[ordinal]->morsel;
  }

  /// The union-column batch of morsel `ordinal`; valid after a successful
  /// Collect and until Release(ordinal).
  const storage::RecordBatch& batch(size_t ordinal) const {
    return tasks_[ordinal]->output.batch;
  }

  /// Indexes of this subscription's columns (interest order) within
  /// batch(ordinal)'s columns.
  std::vector<size_t> ColumnMapping(size_t ordinal) const;

  /// True when this subscription executed the pass itself (its pass
  /// callback ran, so its per-morsel metrics slot is populated).
  bool executed_by_self(size_t ordinal) const {
    return self_executed_[ordinal] != 0;
  }

  /// Releases morsel `ordinal`'s shared output; the last registered
  /// consumer frees the decoded rows.
  void Release(size_t ordinal);

 private:
  friend class SharedScanManager;
  ScanSubscription() = default;

  /// Claims and executes this subscription's pending passes until none
  /// remain or cancellation fires. Never blocks waiting for work — safe on
  /// pool workers.
  Status RunClaims(const std::atomic<bool>* cancel);
  bool ShouldStop(const std::atomic<bool>* cancel) const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (cancel != nullptr && cancel->load(std::memory_order_relaxed));
  }

  SharedScanManager* manager_ = nullptr;
  std::shared_ptr<MorselScheduler> scheduler_;
  std::pair<std::string, uint64_t> group_key_;
  std::vector<std::string> columns_;
  SharedScanPassFn pass_fn_;
  std::vector<std::shared_ptr<MorselTask>> tasks_;  // morsel order
  std::vector<char> self_executed_;  // char, not bool: set concurrently
  std::vector<char> consumed_;
  std::atomic<bool> cancelled_{false};
};

/// Coalesces concurrent scans of one table into shared parse passes. Owned
/// by the QueryEngine (one per engine, like the thread pool); thread-safe.
/// Scan groups are keyed by (table_key, validity) and live exactly as long
/// as a subscription holds them — results are fanned out across in-flight
/// queries, never cached beyond the last open subscription, so the result
/// cache in src/serve/ remains the only cross-time cache.
class SharedScanManager {
 public:
  SharedScanManager() = default;
  SharedScanManager(const SharedScanManager&) = delete;
  SharedScanManager& operator=(const SharedScanManager&) = delete;

  /// Registry receiving the maxson_sharedscan_* counters; pass nullptr to
  /// disable. Not owned.
  void set_metrics_registry(obs::MetricsRegistry* registry)
      MAXSON_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    metrics_registry_ = registry;
  }

  /// Opens a subscription covering `interest.morsels`, merging into the
  /// group's existing passes where possible. The returned subscription must
  /// not outlive the manager; `pass_fn` must stay callable until Collect
  /// returns.
  std::unique_ptr<ScanSubscription> Subscribe(const ScanInterest& interest,
                                              SharedScanPassFn pass_fn)
      MAXSON_EXCLUDES(mutex_);

  SharedScanStats stats() const MAXSON_EXCLUDES(mutex_);

 private:
  friend class ScanSubscription;

  struct Group {
    std::shared_ptr<MorselScheduler> scheduler;
    size_t refs = 0;
  };

  void Unsubscribe(const std::pair<std::string, uint64_t>& key)
      MAXSON_EXCLUDES(mutex_);
  /// Counter publication points (shared_scan.cc is on lint's counter-write
  /// allowlist: these are cross-query scheduling counters with no per-query
  /// merge barrier to publish behind). Both release mutex_ before touching
  /// the registry, so the manager lock never nests over registry locks.
  void RecordPass(uint64_t saved_bytes) MAXSON_EXCLUDES(mutex_);
  void RecordAttach(uint64_t coalesced, uint64_t saved_bytes)
      MAXSON_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::map<std::pair<std::string, uint64_t>, Group> groups_
      MAXSON_GUARDED_BY(mutex_);
  SharedScanStats stats_ MAXSON_GUARDED_BY(mutex_);
  obs::MetricsRegistry* metrics_registry_ MAXSON_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace maxson::exec

#endif  // MAXSON_EXEC_SHARED_SCAN_H_
