#include "exec/morsel.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace maxson::exec {

using storage::SargLeaf;
using storage::SearchArgument;
using storage::Value;

std::string Morsel::Id() const {
  return std::to_string(split_index) + ":" + std::to_string(begin_stripe) +
         "-" + std::to_string(end_stripe);
}

namespace {

/// Unit-separator framing: SARG columns and literals are free-form text, so
/// the serialization uses control characters that cannot appear in SQL
/// identifiers or typed literal renderings.
constexpr char kFieldSep = '\x1f';
constexpr char kLeafSep = '\x1e';
constexpr char kSargSep = '\x1d';

char TypeTag(const Value& v) {
  if (v.is_null()) return 'n';
  if (v.is_bool()) return 'b';
  if (v.is_int64()) return 'i';
  if (v.is_double()) return 'd';
  return 's';
}

void AppendSarg(const SearchArgument& sarg, std::string* out) {
  for (const SargLeaf& leaf : sarg.leaves()) {
    out->push_back(kLeafSep);
    out->append(leaf.column);
    out->push_back(kFieldSep);
    out->append(std::to_string(static_cast<int>(leaf.op)));
    out->push_back(kFieldSep);
    out->push_back(TypeTag(leaf.literal));
    out->append(leaf.literal.ToString());
  }
}

}  // namespace

std::string ScanPredicate::KeyFor(const SearchArgument& raw,
                                  const SearchArgument& cache) {
  if (raw.empty() && cache.empty()) return std::string();
  std::string key;
  AppendSarg(raw, &key);
  key.push_back(kSargSep);
  AppendSarg(cache, &key);
  return key;
}

MorselScheduler::Registration MorselScheduler::Register(
    const Morsel& morsel, const std::vector<std::string>& columns,
    const ScanPredicate& predicate) {
  MutexLock lock(mutex_);
  std::vector<std::shared_ptr<MorselTask>>& list = tasks_[morsel.Id()];
  for (const std::shared_ptr<MorselTask>& task : list) {
    if (task->state == MorselTask::State::kPending) {
      // Unclaimed: merge freely. Column union keeps first-seen order;
      // predicates dedupe by key and widen the pruning disjunction.
      for (const std::string& col : columns) {
        if (std::find(task->union_columns.begin(), task->union_columns.end(),
                      col) == task->union_columns.end()) {
          task->union_columns.push_back(col);
        }
      }
      const bool known_key = std::any_of(
          task->predicates.begin(), task->predicates.end(),
          [&](const ScanPredicate& p) { return p.key == predicate.key; });
      if (!known_key) task->predicates.push_back(predicate);
      task->reads_all_groups |= predicate.unconstrained();
      ++task->registered;
      return Registration{task, /*shared=*/true, /*saved_bytes=*/0};
    }
    // Claimed (running or done): inputs are frozen, so join only when the
    // pass already covers this subscriber's columns and pruning.
    if (task->retired) continue;
    if (task->state == MorselTask::State::kDone && !task->status.ok()) {
      continue;  // do not ride a failed pass; a fresh one surfaces its own
    }
    const bool columns_covered = std::all_of(
        columns.begin(), columns.end(), [&](const std::string& col) {
          return std::find(task->union_columns.begin(),
                           task->union_columns.end(),
                           col) != task->union_columns.end();
        });
    const bool pruning_covered =
        task->reads_all_groups ||
        std::any_of(task->predicates.begin(), task->predicates.end(),
                    [&](const ScanPredicate& p) {
                      return p.key == predicate.key;
                    });
    if (!columns_covered || !pruning_covered) continue;
    ++task->registered;
    const uint64_t saved = task->state == MorselTask::State::kDone
                               ? task->output.input_bytes
                               : 0;
    return Registration{task, /*shared=*/true, saved};
  }
  auto task = std::make_shared<MorselTask>(morsel);
  task->union_columns = columns;
  task->predicates = {predicate};
  task->reads_all_groups = predicate.unconstrained();
  list.push_back(task);
  return Registration{std::move(task), /*shared=*/false, /*saved_bytes=*/0};
}

MorselScheduler::Claim MorselScheduler::ClaimPending(
    const std::vector<std::shared_ptr<MorselTask>>& tasks) {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < tasks.size(); ++i) {
    MorselTask& task = *tasks[i];
    if (task.state != MorselTask::State::kPending) continue;
    task.state = MorselTask::State::kRunning;
    Claim claim;
    claim.task = tasks[i];
    claim.ordinal = i;
    claim.union_columns = task.union_columns;
    claim.predicates = task.predicates;
    return claim;
  }
  return Claim{};
}

uint64_t MorselScheduler::Publish(const std::shared_ptr<MorselTask>& task,
                                  Status status, SharedPassOutput output) {
  uint64_t saved = 0;
  {
    MutexLock lock(mutex_);
    task->status = std::move(status);
    task->output = std::move(output);
    task->state = MorselTask::State::kDone;
    if (task->status.ok() && task->registered > 1) {
      saved = task->output.input_bytes *
              static_cast<uint64_t>(task->registered - 1);
    }
  }
  cv_.notify_all();
  return saved;
}

void MorselScheduler::WaitDone(
    const std::vector<std::shared_ptr<MorselTask>>& tasks,
    const std::function<bool()>& give_up) {
  MutexLock lock(mutex_);
  const auto all_done = [&tasks] {
    return std::all_of(tasks.begin(), tasks.end(),
                       [](const std::shared_ptr<MorselTask>& t) {
                         return t->state == MorselTask::State::kDone;
                       });
  };
  // Timed waits poll the give-up flag: cancellation may come from a plain
  // atomic nobody pairs with this condition variable.
  while (!all_done() && !(give_up && give_up())) {
    cv_.wait_for(lock.native(), std::chrono::milliseconds(2));
  }
}

void MorselScheduler::Consume(const std::shared_ptr<MorselTask>& task) {
  MutexLock lock(mutex_);
  ++task->consumed;
  if (task->state == MorselTask::State::kDone &&
      task->consumed >= task->registered && !task->retired) {
    task->retired = true;
    task->output = SharedPassOutput{};  // free the decoded rows
  }
}

}  // namespace maxson::exec
