#include "exec/thread_pool.h"

#include <algorithm>

namespace maxson::exec {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveThreads(num_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::EnsureStarted() {
  if (started_) return;
  started_ = true;
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ <= 1) {
    task();  // degenerate pool: inline execution, no threads at all
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureStarted();
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool TaskGroup::State::RunOne() {
  // Move the task out under the lock: a concurrent Spawn may reallocate
  // `tasks`, so no reference into the vector can outlive the critical
  // section.
  std::function<Status()> task;
  size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (pending.empty()) return false;
    index = pending.front();
    pending.pop_front();
    task = std::move(tasks[index]);
  }
  Status status = task();
  {
    std::lock_guard<std::mutex> lock(mutex);
    statuses[index] = std::move(status);
    ++done;
  }
  cv.notify_all();
  return true;
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    index = state_->tasks.size();
    state_->tasks.push_back(std::move(fn));
    state_->statuses.push_back(Status::Ok());
    state_->pending.push_back(index);
  }
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    // One pump per task: each pump runs at most one pending task (possibly
    // a different one than was spawned with it, or none if Wait() already
    // stole it). The shared_ptr keeps the state alive past the group.
    std::shared_ptr<State> state = state_;
    pool_->Submit([state] { state->RunOne(); });
  }
}

Status TaskGroup::Wait() {
  // Help: run pending tasks on the caller until none are left unstarted.
  while (state_->RunOne()) {
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock,
                  [this] { return state_->done == state_->tasks.size(); });
  for (const Status& status : state_->statuses) {
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::Ok();
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    // Sequential mode still runs every index (matching the parallel error
    // contract) and reports the first failure by index.
    Status first = Status::Ok();
    for (size_t i = 0; i < n; ++i) {
      Status status = fn(i);
      if (first.ok() && !status.ok()) first = std::move(status);
    }
    return first;
  }
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Spawn([&fn, i] { return fn(i); });
  }
  return group.Wait();
}

std::vector<ChunkRange> MakeChunks(size_t n, size_t chunk_rows) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  const size_t step = std::max<size_t>(1, chunk_rows);
  chunks.reserve((n + step - 1) / step);
  for (size_t begin = 0; begin < n; begin += step) {
    chunks.push_back(ChunkRange{begin, std::min(n, begin + step)});
  }
  return chunks;
}

}  // namespace maxson::exec
