#include "exec/thread_pool.h"

#include <algorithm>

namespace maxson::exec {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveThreads(num_threads)) {}

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock before joining: joining
  // while holding mutex_ would deadlock against WorkerLoop, and reading
  // workers_ unlocked would race a concurrent Submit's EnsureStarted (a
  // finding surfaced by the thread-safety annotations; see
  // ThreadPoolTest.DestructionRunsQueuedTasks).
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
    workers = std::move(workers_);
  }
  cv_.notify_all();
  for (std::thread& worker : workers) worker.join();
}

void ThreadPool::EnsureStarted() {
  if (started_) return;
  started_ = true;
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop: thread-safety analysis cannot see capabilities
      // through the predicate lambda of cv.wait(lock, pred).
      while (!shutdown_ && queue_.empty()) cv_.wait(lock.native());
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ <= 1) {
    task();  // degenerate pool: inline execution, no threads at all
    return;
  }
  {
    MutexLock lock(mutex_);
    EnsureStarted();
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool TaskGroup::State::RunOne() {
  // Move the task out under the lock: a concurrent Spawn may reallocate
  // `tasks`, so no reference into the vector can outlive the critical
  // section.
  std::function<Status()> task;
  size_t index = 0;
  {
    MutexLock lock(mutex);
    if (pending.empty()) return false;
    index = pending.front();
    pending.pop_front();
    task = std::move(tasks[index]);
  }
  Status status = task();
  {
    MutexLock lock(mutex);
    statuses[index] = std::move(status);
    ++done;
  }
  cv.notify_all();
  return true;
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  size_t index;
  {
    MutexLock lock(state_->mutex);
    index = state_->tasks.size();
    state_->tasks.push_back(std::move(fn));
    state_->statuses.push_back(Status::Ok());
    state_->pending.push_back(index);
  }
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    // One pump per task: each pump runs at most one pending task (possibly
    // a different one than was spawned with it, or none if Wait() already
    // stole it). The shared_ptr keeps the state alive past the group.
    std::shared_ptr<State> state = state_;
    pool_->Submit([state] { state->RunOne(); });
  }
}

Status TaskGroup::Wait() {
  // Help: run pending tasks on the caller until none are left unstarted.
  while (state_->RunOne()) {
  }
  MutexLock lock(state_->mutex);
  while (state_->done != state_->tasks.size()) {
    state_->cv.wait(lock.native());
  }
  for (const Status& status : state_->statuses) {
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::Ok();
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    // Sequential mode still runs every index (matching the parallel error
    // contract) and reports the first failure by index.
    Status first = Status::Ok();
    for (size_t i = 0; i < n; ++i) {
      Status status = fn(i);
      if (first.ok() && !status.ok()) first = std::move(status);
    }
    return first;
  }
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Spawn([&fn, i] { return fn(i); });
  }
  return group.Wait();
}

std::vector<ChunkRange> MakeChunks(size_t n, size_t chunk_rows) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  const size_t step = std::max<size_t>(1, chunk_rows);
  chunks.reserve((n + step - 1) / step);
  for (size_t begin = 0; begin < n; begin += step) {
    chunks.push_back(ChunkRange{begin, std::min(n, begin + step)});
  }
  return chunks;
}

}  // namespace maxson::exec
