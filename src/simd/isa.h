#ifndef MAXSON_SIMD_ISA_H_
#define MAXSON_SIMD_ISA_H_

#include <string_view>

namespace maxson::simd {

/// Instruction-set level a kernel table is compiled for. Levels are ordered:
/// a higher level is always at least as capable as a lower one, and forcing
/// a level above what the host supports clamps to the best available.
/// kSse2 doubles as the generic 128-bit level: on AArch64 the NEON kernels
/// register under this level, so "sse2" names "the 128-bit path" portably.
enum class Isa {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Stable lowercase name ("scalar" / "sse2" / "avx2") for configs, metrics
/// labels, and bench JSON.
const char* IsaName(Isa isa);

/// Parses an IsaName back; returns false (and leaves *out untouched) on any
/// other spelling. "auto" is not an Isa — callers treat it as ResetIsa().
bool ParseIsa(std::string_view name, Isa* out);

/// Highest level both compiled into this binary and supported by the CPU.
Isa BestSupportedIsa();

/// The level the dispatched kernels currently run at. First use initializes
/// from the MAXSON_FORCE_ISA environment variable (unset or invalid values
/// fall back to BestSupportedIsa()).
Isa ActiveIsa();

/// Forces the dispatch level (clamped to BestSupportedIsa()); returns the
/// level actually installed. Safe to call while kernels run on other
/// threads: every kernel call reads the table pointer once, and all levels
/// produce byte-identical results, so a mid-query switch cannot change any
/// outcome.
Isa ForceIsa(Isa isa);

/// Reverts to the startup policy: MAXSON_FORCE_ISA when set and valid,
/// otherwise BestSupportedIsa(). Returns the installed level.
Isa ResetIsa();

}  // namespace maxson::simd

#endif  // MAXSON_SIMD_ISA_H_
