#include "simd/kernel_table.h"

#include <cstring>

#include "simd/kernels.h"

// Compiled with -mavx2 when the toolchain targets x86 (see CMakeLists.txt
// in this directory); dispatch installs this table only after
// __builtin_cpu_supports("avx2") confirms the host executes it.

#if defined(__AVX2__)

#include <immintrin.h>

namespace maxson::simd {
namespace avx2 {

namespace {

/// 32 comparison lanes -> 32-bit mask, zero-extended.
inline uint32_t EqMask(__m256i v, __m256i broadcast) {
  return static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, broadcast)));
}

/// One 64-byte block -> the three classification words.
inline void ClassifyBlock(const char* p, uint64_t* quote_word,
                          uint64_t* backslash_word,
                          uint64_t* structural_word) {
  const __m256i quote = _mm256_set1_epi8('"');
  const __m256i backslash = _mm256_set1_epi8('\\');
  const __m256i colon = _mm256_set1_epi8(':');
  const __m256i lbrace = _mm256_set1_epi8('{');
  const __m256i rbrace = _mm256_set1_epi8('}');
  uint64_t qm = 0;
  uint64_t bm = 0;
  uint64_t sm = 0;
  for (int k = 0; k < 2; ++k) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + 32 * k));
    const int shift = 32 * k;
    qm |= static_cast<uint64_t>(EqMask(v, quote)) << shift;
    bm |= static_cast<uint64_t>(EqMask(v, backslash)) << shift;
    const __m256i st = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(v, colon),
                        _mm256_cmpeq_epi8(v, lbrace)),
        _mm256_cmpeq_epi8(v, rbrace));
    sm |= static_cast<uint64_t>(
              static_cast<uint32_t>(_mm256_movemask_epi8(st)))
          << shift;
  }
  *quote_word = qm;
  *backslash_word = bm;
  *structural_word = sm;
}

/// ClassifyBlock with the full structural alphabet (adds '[' ']' ',').
inline void ClassifyBlockFull(const char* p, uint64_t* quote_word,
                              uint64_t* backslash_word,
                              uint64_t* structural_word) {
  const __m256i quote = _mm256_set1_epi8('"');
  const __m256i backslash = _mm256_set1_epi8('\\');
  const __m256i colon = _mm256_set1_epi8(':');
  const __m256i comma = _mm256_set1_epi8(',');
  const __m256i lbrace = _mm256_set1_epi8('{');
  const __m256i rbrace = _mm256_set1_epi8('}');
  const __m256i lbracket = _mm256_set1_epi8('[');
  const __m256i rbracket = _mm256_set1_epi8(']');
  uint64_t qm = 0;
  uint64_t bm = 0;
  uint64_t sm = 0;
  for (int k = 0; k < 2; ++k) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + 32 * k));
    const int shift = 32 * k;
    qm |= static_cast<uint64_t>(EqMask(v, quote)) << shift;
    bm |= static_cast<uint64_t>(EqMask(v, backslash)) << shift;
    const __m256i st = _mm256_or_si256(
        _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi8(v, colon),
                            _mm256_cmpeq_epi8(v, comma)),
            _mm256_or_si256(_mm256_cmpeq_epi8(v, lbrace),
                            _mm256_cmpeq_epi8(v, rbrace))),
        _mm256_or_si256(_mm256_cmpeq_epi8(v, lbracket),
                        _mm256_cmpeq_epi8(v, rbracket)));
    sm |= static_cast<uint64_t>(
              static_cast<uint32_t>(_mm256_movemask_epi8(st)))
          << shift;
  }
  *quote_word = qm;
  *backslash_word = bm;
  *structural_word = sm;
}

}  // namespace

void ClassifyJson(const char* data, size_t n, uint64_t* quotes,
                  uint64_t* backslashes, uint64_t* structurals) {
  size_t w = 0;
  for (; (w + 1) * kWordBits <= n; ++w) {
    ClassifyBlock(data + w * kWordBits, &quotes[w], &backslashes[w],
                  &structurals[w]);
  }
  if (w * kWordBits < n) {
    char buf[kWordBits] = {0};
    std::memcpy(buf, data + w * kWordBits, n - w * kWordBits);
    ClassifyBlock(buf, &quotes[w], &backslashes[w], &structurals[w]);
  }
}

void ClassifyJsonFull(const char* data, size_t n, uint64_t* quotes,
                      uint64_t* backslashes, uint64_t* structurals) {
  size_t w = 0;
  for (; (w + 1) * kWordBits <= n; ++w) {
    ClassifyBlockFull(data + w * kWordBits, &quotes[w], &backslashes[w],
                      &structurals[w]);
  }
  if (w * kWordBits < n) {
    char buf[kWordBits] = {0};
    std::memcpy(buf, data + w * kWordBits, n - w * kWordBits);
    ClassifyBlockFull(buf, &quotes[w], &backslashes[w], &structurals[w]);
  }
}

size_t SkipWhitespace(const char* data, size_t n, size_t pos) {
  const __m256i space = _mm256_set1_epi8(' ');
  const __m256i tab = _mm256_set1_epi8('\t');
  const __m256i lf = _mm256_set1_epi8('\n');
  const __m256i cr = _mm256_set1_epi8('\r');
  while (pos + 32 <= n) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + pos));
    const __m256i ws = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(v, space),
                        _mm256_cmpeq_epi8(v, tab)),
        _mm256_or_si256(_mm256_cmpeq_epi8(v, lf),
                        _mm256_cmpeq_epi8(v, cr)));
    const uint32_t mask =
        static_cast<uint32_t>(_mm256_movemask_epi8(ws));
    if (mask != 0xFFFFFFFFu) {
      return pos + static_cast<size_t>(__builtin_ctz(~mask));
    }
    pos += 32;
  }
  while (pos < n) {
    const char c = data[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return pos;
    ++pos;
  }
  return n;
}

size_t FindStringSpecial(const char* data, size_t n, size_t pos) {
  const __m256i quote = _mm256_set1_epi8('"');
  const __m256i backslash = _mm256_set1_epi8('\\');
  while (pos + 32 <= n) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + pos));
    const __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi8(v, quote),
                                        _mm256_cmpeq_epi8(v, backslash));
    const uint32_t mask =
        static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    if (mask != 0) return pos + static_cast<size_t>(__builtin_ctz(mask));
    pos += 32;
  }
  while (pos < n) {
    const char c = data[pos];
    if (c == '"' || c == '\\') return pos;
    ++pos;
  }
  return n;
}

size_t FindSubstring(const char* hay, size_t n, const char* needle,
                     size_t m) {
  if (m == 0) return 0;
  if (m > n) return kNpos;
  const __m256i first = _mm256_set1_epi8(needle[0]);
  const __m256i last = _mm256_set1_epi8(needle[m - 1]);
  size_t i = 0;
  while (i + m + 31 <= n) {  // both 32-byte loads stay inside [0, n)
    const __m256i block_first = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hay + i));
    const __m256i block_last = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hay + i + m - 1));
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_and_si256(_mm256_cmpeq_epi8(block_first, first),
                         _mm256_cmpeq_epi8(block_last, last))));
    while (mask != 0) {
      const size_t j = static_cast<size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      if (std::memcmp(hay + i + j, needle, m) == 0) return i + j;
    }
    i += 32;
  }
  for (; i + m <= n; ++i) {
    if (hay[i] == needle[0] && std::memcmp(hay + i, needle, m) == 0) {
      return i;
    }
  }
  return kNpos;
}

namespace {

/// Nonzero-byte mask of one 64-byte block.
inline uint64_t NonZeroMask64(const uint8_t* p) {
  const __m256i zero = _mm256_setzero_si256();
  uint64_t mask = 0;
  for (int k = 0; k < 2; ++k) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + 32 * k));
    const uint32_t zeros = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    mask |= static_cast<uint64_t>(~zeros) << (32 * k);
  }
  return mask;
}

}  // namespace

uint64_t NullBytesToBitmap(const uint8_t* nulls, size_t n, uint64_t* bitmap) {
  uint64_t count = 0;
  size_t w = 0;
  for (; (w + 1) * kWordBits <= n; ++w) {
    const uint64_t mask = NonZeroMask64(nulls + w * kWordBits);
    bitmap[w] = mask;
    count += static_cast<uint64_t>(__builtin_popcountll(mask));
  }
  if (w * kWordBits < n) {
    uint64_t mask = 0;
    for (size_t i = w * kWordBits; i < n; ++i) {
      if (nulls[i] != 0) mask |= uint64_t{1} << (i - w * kWordBits);
    }
    bitmap[w] = mask;
    count += static_cast<uint64_t>(__builtin_popcountll(mask));
  }
  return count;
}

uint64_t CountNonZeroBytes(const uint8_t* bytes, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + kWordBits <= n; i += kWordBits) {
    count += static_cast<uint64_t>(
        __builtin_popcountll(NonZeroMask64(bytes + i)));
  }
  for (; i < n; ++i) {
    if (bytes[i] != 0) ++count;
  }
  return count;
}

void MinMaxInt64(const int64_t* values, size_t n, int64_t* min,
                 int64_t* max) {
  int64_t lo;
  int64_t hi;
  size_t i;
  if (n >= 8) {
    __m256i vlo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values));
    __m256i vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + i));
      vlo = _mm256_blendv_epi8(vlo, v, _mm256_cmpgt_epi64(vlo, v));
      vhi = _mm256_blendv_epi8(vhi, v, _mm256_cmpgt_epi64(v, vhi));
    }
    int64_t lo4[4];
    int64_t hi4[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo4), vlo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi4), vhi);
    lo = lo4[0];
    hi = hi4[0];
    for (int k = 1; k < 4; ++k) {
      if (lo4[k] < lo) lo = lo4[k];
      if (hi4[k] > hi) hi = hi4[k];
    }
  } else {
    lo = values[0];
    hi = values[0];
    i = 1;
  }
  for (; i < n; ++i) {
    if (values[i] < lo) lo = values[i];
    if (values[i] > hi) hi = values[i];
  }
  *min = lo;
  *max = hi;
}

void MinMaxDouble(const double* values, size_t n, double* min, double* max) {
  double lo;
  double hi;
  size_t i;
  if (n >= 8) {
    __m256d vlo = _mm256_loadu_pd(values);
    __m256d vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(values + i);
      vlo = _mm256_min_pd(vlo, v);
      vhi = _mm256_max_pd(vhi, v);
    }
    double lo4[4];
    double hi4[4];
    _mm256_storeu_pd(lo4, vlo);
    _mm256_storeu_pd(hi4, vhi);
    lo = lo4[0];
    hi = hi4[0];
    for (int k = 1; k < 4; ++k) {
      if (lo4[k] < lo) lo = lo4[k];
      if (hi4[k] > hi) hi = hi4[k];
    }
  } else {
    lo = values[0];
    hi = values[0];
    i = 1;
  }
  for (; i < n; ++i) {
    if (values[i] < lo) lo = values[i];
    if (values[i] > hi) hi = values[i];
  }
  if (lo == 0.0) lo = +0.0;  // kernel contract: zero results are +0.0
  if (hi == 0.0) hi = +0.0;
  *min = lo;
  *max = hi;
}

void RleSplat(const uint8_t* pattern, size_t width, size_t count,
              uint8_t* out) {
  const size_t total = width * count;
  __m256i v;
  switch (width) {
    case 1:
      v = _mm256_set1_epi8(static_cast<char>(pattern[0]));
      break;
    case 2: {
      uint16_t p;
      std::memcpy(&p, pattern, 2);
      v = _mm256_set1_epi16(static_cast<short>(p));
      break;
    }
    case 4: {
      uint32_t p;
      std::memcpy(&p, pattern, 4);
      v = _mm256_set1_epi32(static_cast<int>(p));
      break;
    }
    case 8: {
      uint64_t p;
      std::memcpy(&p, pattern, 8);
      v = _mm256_set1_epi64x(static_cast<long long>(p));
      break;
    }
    default:
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(out + i * width, pattern, width);
      }
      return;
  }
  size_t i = 0;
  for (; i + 32 <= total; i += 32) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  // 32 is a multiple of every broadcast width here, so the tail continues
  // the pattern phase-aligned.
  for (; i < total; ++i) {
    out[i] = pattern[i % width];
  }
}

uint32_t MaxU32(const uint32_t* values, size_t n) {
  size_t i = 0;
  uint32_t max = 0;
  if (n >= 8) {
    __m256i acc = _mm256_setzero_si256();
    for (; i + 8 <= n; i += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + i));
      acc = _mm256_max_epu32(acc, v);
    }
    uint32_t lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (const uint32_t lane : lanes) {
      if (lane > max) max = lane;
    }
  }
  for (; i < n; ++i) {
    if (values[i] > max) max = values[i];
  }
  return max;
}

#if defined(__SSE4_2__)
/// Hardware CRC32C: the crc32 instruction is SSE4.2, which -mavx2 implies
/// and every AVX2-capable CPU executes. 8 bytes per instruction, byte tail.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  uint64_t state = ~crc;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    state = _mm_crc32_u64(state, word);
  }
  uint32_t state32 = static_cast<uint32_t>(state);
  for (; i < n; ++i) {
    state32 = _mm_crc32_u8(state32, data[i]);
  }
  return ~state32;
}
#endif  // __SSE4_2__

}  // namespace avx2

const KernelTable* Avx2Kernels() {
  static const KernelTable kTable = {
      avx2::ClassifyJson,       avx2::ClassifyJsonFull,
      avx2::SkipWhitespace,     avx2::FindStringSpecial,
      avx2::FindSubstring,      avx2::NullBytesToBitmap,
      avx2::CountNonZeroBytes,  avx2::MinMaxInt64,
      avx2::MinMaxDouble,
#if defined(__SSE4_2__)
      avx2::Crc32cExtend,
#else
      ScalarKernels()->crc32c_extend,
#endif
      avx2::RleSplat,           avx2::MaxU32,
  };
  return &kTable;
}

}  // namespace maxson::simd

#else

namespace maxson::simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace maxson::simd

#endif
