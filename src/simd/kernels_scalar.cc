#include "simd/kernel_table.h"

#include <array>
#include <cstring>

#include "simd/kernels.h"

namespace maxson::simd {

// The scalar table doubles as the reference semantics every vector level is
// tested against; keep these routines obviously correct rather than clever.
namespace scalar {

void ClassifyJson(const char* data, size_t n, uint64_t* quotes,
                  uint64_t* backslashes, uint64_t* structurals) {
  const size_t words = BitmapWords(n);
  if (words == 0) return;  // n == 0 may come with null output pointers
  std::memset(quotes, 0, words * sizeof(uint64_t));
  std::memset(backslashes, 0, words * sizeof(uint64_t));
  std::memset(structurals, 0, words * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = uint64_t{1} << (i % kWordBits);
    switch (data[i]) {
      case '"':
        quotes[i / kWordBits] |= bit;
        break;
      case '\\':
        backslashes[i / kWordBits] |= bit;
        break;
      case ':':
      case '{':
      case '}':
        structurals[i / kWordBits] |= bit;
        break;
      default:
        break;
    }
  }
}

void ClassifyJsonFull(const char* data, size_t n, uint64_t* quotes,
                      uint64_t* backslashes, uint64_t* structurals) {
  const size_t words = BitmapWords(n);
  if (words == 0) return;  // n == 0 may come with null output pointers
  std::memset(quotes, 0, words * sizeof(uint64_t));
  std::memset(backslashes, 0, words * sizeof(uint64_t));
  std::memset(structurals, 0, words * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = uint64_t{1} << (i % kWordBits);
    switch (data[i]) {
      case '"':
        quotes[i / kWordBits] |= bit;
        break;
      case '\\':
        backslashes[i / kWordBits] |= bit;
        break;
      case ':':
      case ',':
      case '{':
      case '}':
      case '[':
      case ']':
        structurals[i / kWordBits] |= bit;
        break;
      default:
        break;
    }
  }
}

size_t SkipWhitespace(const char* data, size_t n, size_t pos) {
  while (pos < n) {
    const char c = data[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return pos;
    ++pos;
  }
  return n;
}

size_t FindStringSpecial(const char* data, size_t n, size_t pos) {
  while (pos < n) {
    const char c = data[pos];
    if (c == '"' || c == '\\') return pos;
    ++pos;
  }
  return n;
}

size_t FindSubstring(const char* hay, size_t n, const char* needle,
                     size_t m) {
  if (m == 0) return 0;
  if (m > n) return kNpos;
  const char first = needle[0];
  size_t pos = 0;
  while (pos + m <= n) {
    const void* hit = std::memchr(hay + pos, first, n - m + 1 - pos);
    if (hit == nullptr) return kNpos;
    pos = static_cast<size_t>(static_cast<const char*>(hit) - hay);
    if (std::memcmp(hay + pos, needle, m) == 0) return pos;
    ++pos;
  }
  return kNpos;
}

uint64_t NullBytesToBitmap(const uint8_t* nulls, size_t n, uint64_t* bitmap) {
  const size_t words = BitmapWords(n);
  if (words == 0) return 0;  // n == 0 may come with a null bitmap pointer
  std::memset(bitmap, 0, words * sizeof(uint64_t));
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (nulls[i] != 0) {
      bitmap[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
      ++count;
    }
  }
  return count;
}

uint64_t CountNonZeroBytes(const uint8_t* bytes, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (bytes[i] != 0) ++count;
  }
  return count;
}

void MinMaxInt64(const int64_t* values, size_t n, int64_t* min,
                 int64_t* max) {
  int64_t lo = values[0];
  int64_t hi = values[0];
  for (size_t i = 1; i < n; ++i) {
    if (values[i] < lo) lo = values[i];
    if (values[i] > hi) hi = values[i];
  }
  *min = lo;
  *max = hi;
}

void MinMaxDouble(const double* values, size_t n, double* min, double* max) {
  double lo = values[0];
  double hi = values[0];
  for (size_t i = 1; i < n; ++i) {
    if (values[i] < lo) lo = values[i];
    if (values[i] > hi) hi = values[i];
  }
  // The kernel contract (kernels.h): zero results are +0.0 at every level,
  // because vector min/max pick a zero sign by operand order.
  if (lo == 0.0) lo = +0.0;
  if (hi == 0.0) hi = +0.0;
  *min = lo;
  *max = hi;
}

namespace {

/// 256-entry CRC32C table for the reflected polynomial 0x82F63B78, built
/// once at first use. Byte-at-a-time: the reference every level must match.
const uint32_t* Crc32cTable() {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32cTable();
  uint32_t state = ~crc;
  for (size_t i = 0; i < n; ++i) {
    state = (state >> 8) ^ table[(state ^ data[i]) & 0xFF];
  }
  return ~state;
}

void RleSplat(const uint8_t* pattern, size_t width, size_t count,
              uint8_t* out) {
  if (width == 1) {
    std::memset(out, pattern[0], count);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(out + i * width, pattern, width);
  }
}

uint32_t MaxU32(const uint32_t* values, size_t n) {
  uint32_t max = 0;
  for (size_t i = 0; i < n; ++i) {
    if (values[i] > max) max = values[i];
  }
  return max;
}

}  // namespace scalar

const KernelTable* ScalarKernels() {
  static constexpr KernelTable kTable = {
      scalar::ClassifyJson,       scalar::ClassifyJsonFull,
      scalar::SkipWhitespace,     scalar::FindStringSpecial,
      scalar::FindSubstring,      scalar::NullBytesToBitmap,
      scalar::CountNonZeroBytes,  scalar::MinMaxInt64,
      scalar::MinMaxDouble,       scalar::Crc32cExtend,
      scalar::RleSplat,           scalar::MaxU32,
  };
  return &kTable;
}

}  // namespace maxson::simd
