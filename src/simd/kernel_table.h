#ifndef MAXSON_SIMD_KERNEL_TABLE_H_
#define MAXSON_SIMD_KERNEL_TABLE_H_

#include <cstddef>
#include <cstdint>

namespace maxson::simd {

/// One implementation of every dispatched kernel (internal to src/simd/).
/// Each ISA translation unit exports a complete table — entries a level has
/// no profitable vector form for point at the scalar routine, never null —
/// so dispatch is a single pointer swap.
struct KernelTable {
  void (*classify_json)(const char*, size_t, uint64_t*, uint64_t*, uint64_t*);
  void (*classify_json_full)(const char*, size_t, uint64_t*, uint64_t*,
                             uint64_t*);
  size_t (*skip_whitespace)(const char*, size_t, size_t);
  size_t (*find_string_special)(const char*, size_t, size_t);
  size_t (*find_substring)(const char*, size_t, const char*, size_t);
  uint64_t (*null_bytes_to_bitmap)(const uint8_t*, size_t, uint64_t*);
  uint64_t (*count_nonzero_bytes)(const uint8_t*, size_t);
  void (*minmax_int64)(const int64_t*, size_t, int64_t*, int64_t*);
  void (*minmax_double)(const double*, size_t, double*, double*);
  uint32_t (*crc32c_extend)(uint32_t, const uint8_t*, size_t);
  void (*rle_splat)(const uint8_t*, size_t, size_t, uint8_t*);
  uint32_t (*max_u32)(const uint32_t*, size_t);
};

/// The portable reference table; always available.
const KernelTable* ScalarKernels();

/// The generic 128-bit table (SSE2 on x86, NEON on AArch64); nullptr when
/// this binary was compiled without either.
const KernelTable* Sse2Kernels();

/// The AVX2 table; nullptr when not compiled in.
const KernelTable* Avx2Kernels();

}  // namespace maxson::simd

#endif  // MAXSON_SIMD_KERNEL_TABLE_H_
