#include "simd/kernel_table.h"

#include <cstring>

#include "simd/kernels.h"

// The generic 128-bit table: SSE2 on x86 (baseline for x86-64, so no extra
// compile flags), NEON on AArch64. Both register under Isa::kSse2 — "the
// 128-bit path". Elsewhere the table is absent and dispatch clamps to
// scalar.

#if defined(__SSE2__)

#include <immintrin.h>

namespace maxson::simd {
namespace sse2 {

namespace {

/// 16 comparison lanes -> 16-bit mask, zero-extended.
inline uint32_t EqMask(__m128i v, __m128i broadcast) {
  return static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(v, broadcast)));
}

/// One 64-byte block -> the three classification words.
inline void ClassifyBlock(const char* p, uint64_t* quote_word,
                          uint64_t* backslash_word,
                          uint64_t* structural_word) {
  const __m128i quote = _mm_set1_epi8('"');
  const __m128i backslash = _mm_set1_epi8('\\');
  const __m128i colon = _mm_set1_epi8(':');
  const __m128i lbrace = _mm_set1_epi8('{');
  const __m128i rbrace = _mm_set1_epi8('}');
  uint64_t qm = 0;
  uint64_t bm = 0;
  uint64_t sm = 0;
  for (int k = 0; k < 4; ++k) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * k));
    const int shift = 16 * k;
    qm |= static_cast<uint64_t>(EqMask(v, quote)) << shift;
    bm |= static_cast<uint64_t>(EqMask(v, backslash)) << shift;
    const __m128i st = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, colon), _mm_cmpeq_epi8(v, lbrace)),
        _mm_cmpeq_epi8(v, rbrace));
    sm |= static_cast<uint64_t>(
              static_cast<uint32_t>(_mm_movemask_epi8(st)))
          << shift;
  }
  *quote_word = qm;
  *backslash_word = bm;
  *structural_word = sm;
}

/// ClassifyBlock with the full structural alphabet (adds '[' ']' ',').
inline void ClassifyBlockFull(const char* p, uint64_t* quote_word,
                              uint64_t* backslash_word,
                              uint64_t* structural_word) {
  const __m128i quote = _mm_set1_epi8('"');
  const __m128i backslash = _mm_set1_epi8('\\');
  const __m128i colon = _mm_set1_epi8(':');
  const __m128i comma = _mm_set1_epi8(',');
  const __m128i lbrace = _mm_set1_epi8('{');
  const __m128i rbrace = _mm_set1_epi8('}');
  const __m128i lbracket = _mm_set1_epi8('[');
  const __m128i rbracket = _mm_set1_epi8(']');
  uint64_t qm = 0;
  uint64_t bm = 0;
  uint64_t sm = 0;
  for (int k = 0; k < 4; ++k) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * k));
    const int shift = 16 * k;
    qm |= static_cast<uint64_t>(EqMask(v, quote)) << shift;
    bm |= static_cast<uint64_t>(EqMask(v, backslash)) << shift;
    const __m128i st = _mm_or_si128(
        _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(v, colon),
                         _mm_cmpeq_epi8(v, comma)),
            _mm_or_si128(_mm_cmpeq_epi8(v, lbrace),
                         _mm_cmpeq_epi8(v, rbrace))),
        _mm_or_si128(_mm_cmpeq_epi8(v, lbracket),
                     _mm_cmpeq_epi8(v, rbracket)));
    sm |= static_cast<uint64_t>(
              static_cast<uint32_t>(_mm_movemask_epi8(st)))
          << shift;
  }
  *quote_word = qm;
  *backslash_word = bm;
  *structural_word = sm;
}

}  // namespace

void ClassifyJson(const char* data, size_t n, uint64_t* quotes,
                  uint64_t* backslashes, uint64_t* structurals) {
  size_t w = 0;
  for (; (w + 1) * kWordBits <= n; ++w) {
    ClassifyBlock(data + w * kWordBits, &quotes[w], &backslashes[w],
                  &structurals[w]);
  }
  if (w * kWordBits < n) {
    // Tail: a zeroed on-stack copy — the zero padding matches no byte
    // class, so tail bits come out zero without masking.
    char buf[kWordBits] = {0};
    std::memcpy(buf, data + w * kWordBits, n - w * kWordBits);
    ClassifyBlock(buf, &quotes[w], &backslashes[w], &structurals[w]);
  }
}

void ClassifyJsonFull(const char* data, size_t n, uint64_t* quotes,
                      uint64_t* backslashes, uint64_t* structurals) {
  size_t w = 0;
  for (; (w + 1) * kWordBits <= n; ++w) {
    ClassifyBlockFull(data + w * kWordBits, &quotes[w], &backslashes[w],
                      &structurals[w]);
  }
  if (w * kWordBits < n) {
    char buf[kWordBits] = {0};
    std::memcpy(buf, data + w * kWordBits, n - w * kWordBits);
    ClassifyBlockFull(buf, &quotes[w], &backslashes[w], &structurals[w]);
  }
}

size_t SkipWhitespace(const char* data, size_t n, size_t pos) {
  const __m128i space = _mm_set1_epi8(' ');
  const __m128i tab = _mm_set1_epi8('\t');
  const __m128i lf = _mm_set1_epi8('\n');
  const __m128i cr = _mm_set1_epi8('\r');
  while (pos + 16 <= n) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(data + pos));
    const __m128i ws = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, space), _mm_cmpeq_epi8(v, tab)),
        _mm_or_si128(_mm_cmpeq_epi8(v, lf), _mm_cmpeq_epi8(v, cr)));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(ws));
    if (mask != 0xFFFFu) {
      return pos + static_cast<size_t>(__builtin_ctz(~mask & 0xFFFFu));
    }
    pos += 16;
  }
  while (pos < n) {
    const char c = data[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return pos;
    ++pos;
  }
  return n;
}

size_t FindStringSpecial(const char* data, size_t n, size_t pos) {
  const __m128i quote = _mm_set1_epi8('"');
  const __m128i backslash = _mm_set1_epi8('\\');
  while (pos + 16 <= n) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(data + pos));
    const __m128i hit = _mm_or_si128(_mm_cmpeq_epi8(v, quote),
                                     _mm_cmpeq_epi8(v, backslash));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(hit));
    if (mask != 0) return pos + static_cast<size_t>(__builtin_ctz(mask));
    pos += 16;
  }
  while (pos < n) {
    const char c = data[pos];
    if (c == '"' || c == '\\') return pos;
    ++pos;
  }
  return n;
}

size_t FindSubstring(const char* hay, size_t n, const char* needle,
                     size_t m) {
  if (m == 0) return 0;
  if (m > n) return kNpos;
  // Muła's first/last-byte prefilter: a candidate start i survives only
  // when hay[i] == needle[0] and hay[i+m-1] == needle[m-1]; survivors are
  // confirmed with an exact memcmp.
  const __m128i first = _mm_set1_epi8(needle[0]);
  const __m128i last = _mm_set1_epi8(needle[m - 1]);
  size_t i = 0;
  while (i + m + 15 <= n) {  // both 16-byte loads stay inside [0, n)
    const __m128i block_first = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(hay + i));
    const __m128i block_last = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(hay + i + m - 1));
    uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_and_si128(_mm_cmpeq_epi8(block_first, first),
                      _mm_cmpeq_epi8(block_last, last))));
    while (mask != 0) {
      const size_t j = static_cast<size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      if (std::memcmp(hay + i + j, needle, m) == 0) return i + j;
    }
    i += 16;
  }
  for (; i + m <= n; ++i) {
    if (hay[i] == needle[0] && std::memcmp(hay + i, needle, m) == 0) {
      return i;
    }
  }
  return kNpos;
}

namespace {

/// Nonzero-byte mask of one 64-byte block.
inline uint64_t NonZeroMask64(const uint8_t* p) {
  const __m128i zero = _mm_setzero_si128();
  uint64_t mask = 0;
  for (int k = 0; k < 4; ++k) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * k));
    const uint32_t zeros =
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)));
    mask |= static_cast<uint64_t>(~zeros & 0xFFFFu) << (16 * k);
  }
  return mask;
}

}  // namespace

uint64_t NullBytesToBitmap(const uint8_t* nulls, size_t n, uint64_t* bitmap) {
  uint64_t count = 0;
  size_t w = 0;
  for (; (w + 1) * kWordBits <= n; ++w) {
    const uint64_t mask = NonZeroMask64(nulls + w * kWordBits);
    bitmap[w] = mask;
    count += static_cast<uint64_t>(__builtin_popcountll(mask));
  }
  if (w * kWordBits < n) {
    uint64_t mask = 0;
    for (size_t i = w * kWordBits; i < n; ++i) {
      if (nulls[i] != 0) mask |= uint64_t{1} << (i - w * kWordBits);
    }
    bitmap[w] = mask;
    count += static_cast<uint64_t>(__builtin_popcountll(mask));
  }
  return count;
}

uint64_t CountNonZeroBytes(const uint8_t* bytes, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + kWordBits <= n; i += kWordBits) {
    count += static_cast<uint64_t>(
        __builtin_popcountll(NonZeroMask64(bytes + i)));
  }
  for (; i < n; ++i) {
    if (bytes[i] != 0) ++count;
  }
  return count;
}

void MinMaxDouble(const double* values, size_t n, double* min, double* max) {
  double lo;
  double hi;
  size_t i;
  if (n >= 4) {
    __m128d vlo = _mm_loadu_pd(values);
    __m128d vhi = vlo;
    for (i = 2; i + 2 <= n; i += 2) {
      const __m128d v = _mm_loadu_pd(values + i);
      vlo = _mm_min_pd(vlo, v);
      vhi = _mm_max_pd(vhi, v);
    }
    double lo2[2];
    double hi2[2];
    _mm_storeu_pd(lo2, vlo);
    _mm_storeu_pd(hi2, vhi);
    lo = lo2[0] < lo2[1] ? lo2[0] : lo2[1];
    hi = hi2[0] > hi2[1] ? hi2[0] : hi2[1];
  } else {
    lo = values[0];
    hi = values[0];
    i = 1;
  }
  for (; i < n; ++i) {
    if (values[i] < lo) lo = values[i];
    if (values[i] > hi) hi = values[i];
  }
  if (lo == 0.0) lo = +0.0;  // kernel contract: zero results are +0.0
  if (hi == 0.0) hi = +0.0;
  *min = lo;
  *max = hi;
}

void RleSplat(const uint8_t* pattern, size_t width, size_t count,
              uint8_t* out) {
  const size_t total = width * count;
  __m128i v;
  switch (width) {
    case 1:
      v = _mm_set1_epi8(static_cast<char>(pattern[0]));
      break;
    case 2: {
      uint16_t p;
      std::memcpy(&p, pattern, 2);
      v = _mm_set1_epi16(static_cast<short>(p));
      break;
    }
    case 4: {
      uint32_t p;
      std::memcpy(&p, pattern, 4);
      v = _mm_set1_epi32(static_cast<int>(p));
      break;
    }
    case 8: {
      uint64_t p;
      std::memcpy(&p, pattern, 8);
      v = _mm_set1_epi64x(static_cast<long long>(p));
      break;
    }
    default:
      // Widths that do not tile a 16-byte register stay on the plain copy
      // loop (identical output by construction).
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(out + i * width, pattern, width);
      }
      return;
  }
  size_t i = 0;
  for (; i + 16 <= total; i += 16) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);
  }
  // 16 is a multiple of every broadcast width here, so the tail continues
  // the pattern phase-aligned.
  for (; i < total; ++i) {
    out[i] = pattern[i % width];
  }
}

uint32_t MaxU32(const uint32_t* values, size_t n) {
  size_t i = 0;
  uint32_t max = 0;
  if (n >= 4) {
    // SSE2 has no unsigned 32-bit max; bias by 0x80000000 so the signed
    // compare orders unsigned values, then blend with and/andnot.
    const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    __m128i acc = bias;  // biased representation of 0
    for (; i + 4 <= n; i += 4) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(values + i));
      const __m128i vb = _mm_xor_si128(v, bias);
      const __m128i gt = _mm_cmpgt_epi32(vb, acc);
      acc = _mm_or_si128(_mm_and_si128(gt, vb), _mm_andnot_si128(gt, acc));
    }
    uint32_t lanes[4];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes),
                     _mm_xor_si128(acc, bias));
    for (const uint32_t lane : lanes) {
      if (lane > max) max = lane;
    }
  }
  for (; i < n; ++i) {
    if (values[i] > max) max = values[i];
  }
  return max;
}

}  // namespace sse2

const KernelTable* Sse2Kernels() {
  // SSE2 has no 64-bit integer compare, so minmax_int64 stays on the
  // scalar routine at this level; the crc32 instruction arrives with
  // SSE4.2, so crc32c stays on the table-driven reference too.
  static const KernelTable kTable = {
      sse2::ClassifyJson,       sse2::ClassifyJsonFull,
      sse2::SkipWhitespace,     sse2::FindStringSpecial,
      sse2::FindSubstring,      sse2::NullBytesToBitmap,
      sse2::CountNonZeroBytes,
      ScalarKernels()->minmax_int64,
      sse2::MinMaxDouble,
      ScalarKernels()->crc32c_extend,
      sse2::RleSplat,           sse2::MaxU32,
  };
  return &kTable;
}

}  // namespace maxson::simd

#elif defined(__ARM_NEON)

#include <arm_neon.h>

namespace maxson::simd {
namespace neon {

namespace {

/// NEON "movemask": 4 bits per lane (0x0 or 0xF), so lane index is
/// ctz(mask) / 4 and popcount(mask) is 4x the lane count.
inline uint64_t NibbleMask(uint8x16_t lanes) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(lanes), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

}  // namespace

size_t SkipWhitespace(const char* data, size_t n, size_t pos) {
  const uint8x16_t space = vdupq_n_u8(' ');
  const uint8x16_t tab = vdupq_n_u8('\t');
  const uint8x16_t lf = vdupq_n_u8('\n');
  const uint8x16_t cr = vdupq_n_u8('\r');
  while (pos + 16 <= n) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data) + pos);
    const uint8x16_t ws = vorrq_u8(
        vorrq_u8(vceqq_u8(v, space), vceqq_u8(v, tab)),
        vorrq_u8(vceqq_u8(v, lf), vceqq_u8(v, cr)));
    const uint64_t mask = NibbleMask(ws);
    if (mask != ~uint64_t{0}) {
      return pos + static_cast<size_t>(__builtin_ctzll(~mask)) / 4;
    }
    pos += 16;
  }
  while (pos < n) {
    const char c = data[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return pos;
    ++pos;
  }
  return n;
}

size_t FindStringSpecial(const char* data, size_t n, size_t pos) {
  const uint8x16_t quote = vdupq_n_u8('"');
  const uint8x16_t backslash = vdupq_n_u8('\\');
  while (pos + 16 <= n) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data) + pos);
    const uint8x16_t hit =
        vorrq_u8(vceqq_u8(v, quote), vceqq_u8(v, backslash));
    const uint64_t mask = NibbleMask(hit);
    if (mask != 0) {
      return pos + static_cast<size_t>(__builtin_ctzll(mask)) / 4;
    }
    pos += 16;
  }
  while (pos < n) {
    const char c = data[pos];
    if (c == '"' || c == '\\') return pos;
    ++pos;
  }
  return n;
}

size_t FindSubstring(const char* hay, size_t n, const char* needle,
                     size_t m) {
  if (m == 0) return 0;
  if (m > n) return kNpos;
  const uint8x16_t first = vdupq_n_u8(static_cast<uint8_t>(needle[0]));
  const uint8x16_t last = vdupq_n_u8(static_cast<uint8_t>(needle[m - 1]));
  size_t i = 0;
  while (i + m + 15 <= n) {
    const uint8x16_t block_first =
        vld1q_u8(reinterpret_cast<const uint8_t*>(hay) + i);
    const uint8x16_t block_last =
        vld1q_u8(reinterpret_cast<const uint8_t*>(hay) + i + m - 1);
    uint64_t mask = NibbleMask(
        vandq_u8(vceqq_u8(block_first, first), vceqq_u8(block_last, last)));
    while (mask != 0) {
      const size_t j = static_cast<size_t>(__builtin_ctzll(mask)) / 4;
      mask &= ~(uint64_t{0xF} << (4 * j));
      if (std::memcmp(hay + i + j, needle, m) == 0) return i + j;
    }
    i += 16;
  }
  for (; i + m <= n; ++i) {
    if (hay[i] == needle[0] && std::memcmp(hay + i, needle, m) == 0) {
      return i;
    }
  }
  return kNpos;
}

uint64_t CountNonZeroBytes(const uint8_t* bytes, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(bytes + i);
    const uint8x16_t nonzero = vtstq_u8(v, v);  // 0xFF where byte != 0
    count += static_cast<uint64_t>(
                 __builtin_popcountll(NibbleMask(nonzero))) /
             4;
  }
  for (; i < n; ++i) {
    if (bytes[i] != 0) ++count;
  }
  return count;
}

}  // namespace neon

const KernelTable* Sse2Kernels() {
  // The bitmap producers and min/max reductions stay scalar on NEON: the
  // scan kernels above carry the hot-path weight, and a 1-bit-per-byte
  // movemask needs extra shuffle work that has not been profiled on ARM.
  static const KernelTable kTable = {
      ScalarKernels()->classify_json,
      ScalarKernels()->classify_json_full,
      neon::SkipWhitespace,
      neon::FindStringSpecial,
      neon::FindSubstring,
      ScalarKernels()->null_bytes_to_bitmap,
      neon::CountNonZeroBytes,
      ScalarKernels()->minmax_int64,
      ScalarKernels()->minmax_double,
      ScalarKernels()->crc32c_extend,
      ScalarKernels()->rle_splat,
      ScalarKernels()->max_u32,
  };
  return &kTable;
}

}  // namespace maxson::simd

#else

namespace maxson::simd {

const KernelTable* Sse2Kernels() { return nullptr; }

}  // namespace maxson::simd

#endif
