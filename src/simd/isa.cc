#include "simd/isa.h"

#include "simd/kernel_table.h"

namespace maxson::simd {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseIsa(std::string_view name, Isa* out) {
  if (name == "scalar") {
    *out = Isa::kScalar;
    return true;
  }
  if (name == "sse2") {
    *out = Isa::kSse2;
    return true;
  }
  if (name == "avx2") {
    *out = Isa::kAvx2;
    return true;
  }
  return false;
}

Isa BestSupportedIsa() {
#if defined(__x86_64__) || defined(__i386__)
  if (Avx2Kernels() != nullptr && __builtin_cpu_supports("avx2")) {
    return Isa::kAvx2;
  }
  if (Sse2Kernels() != nullptr && __builtin_cpu_supports("sse2")) {
    return Isa::kSse2;
  }
  return Isa::kScalar;
#else
  // Non-x86 (NEON registers as the generic 128-bit level): presence of the
  // compiled table is the whole capability check.
  return Sse2Kernels() != nullptr ? Isa::kSse2 : Isa::kScalar;
#endif
}

}  // namespace maxson::simd
