#ifndef MAXSON_SIMD_KERNELS_H_
#define MAXSON_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/isa.h"

namespace maxson::simd {

/// Byte-scanning kernels behind one-time runtime CPU dispatch (see isa.h).
///
/// Contracts shared by every kernel, at every ISA level:
///   - Byte-identical results: the vector implementations are drop-in
///     replacements for the scalar reference — same outputs, same tie
///     breaking, bit for bit. The differential test (tests/simd_kernel_test)
///     holds each level to the scalar reference on random and adversarial
///     inputs.
///   - Tail safety: inputs need no padding and no alignment. Vector loads
///     touch only full blocks inside [data, data+n); tails run through a
///     scalar loop or a zeroed on-stack copy. ASan/UBSan clean.
///   - No hidden state: kernels are pure functions; the only global is the
///     dispatch table pointer, read once per call.

inline constexpr size_t kNpos = ~size_t{0};
inline constexpr size_t kWordBits = 64;

/// Number of 64-bit bitmap words covering `n` bytes.
inline constexpr size_t BitmapWords(size_t n) {
  return (n + kWordBits - 1) / kWordBits;
}

/// Mison/simdjson phase 1: per-64-byte-block bitmaps of '"' (quotes), '\\'
/// (backslashes), and the merged ':' '{' '}' structural candidates. Each
/// output array must hold BitmapWords(n) words; bits past `n` are zero.
void ClassifyJson(const char* data, size_t n, uint64_t* quotes,
                  uint64_t* backslashes, uint64_t* structurals);

/// ClassifyJson with the full structural alphabet: the merged bitmap also
/// carries '[' ']' and ',' so the on-demand tape builder
/// (json/ondemand_parser) can walk arrays and skip sibling subtrees without
/// re-scanning bytes. Kept separate from ClassifyJson because the Mison
/// colon index neither wants nor pays for the three extra comparisons.
void ClassifyJsonFull(const char* data, size_t n, uint64_t* quotes,
                      uint64_t* backslashes, uint64_t* structurals);

/// First position >= `pos` whose byte is not JSON whitespace
/// (' ', '\t', '\n', '\r'), or `n` when the rest is all whitespace.
size_t SkipWhitespace(const char* data, size_t n, size_t pos);

/// First position >= `pos` holding '"' or '\\', or `n` when absent — the
/// DOM string parser's "next interesting byte" scan.
size_t FindStringSpecial(const char* data, size_t n, size_t pos);

/// First occurrence of needle[0..m) in hay[0..n), or kNpos. m == 0 returns
/// 0; m > n returns kNpos. Vector levels use the first/last-byte broadcast
/// prefilter (Muła) with an exact memcmp confirm, so false positives of the
/// prefilter never surface.
size_t FindSubstring(const char* hay, size_t n, const char* needle, size_t m);

/// Expands a byte-per-row null vector (CORC row-group layout: nonzero byte
/// means NULL) into a bitmap (bit i set iff row i is null; BitmapWords(n)
/// words, tail bits zero) and returns the null count.
uint64_t NullBytesToBitmap(const uint8_t* nulls, size_t n, uint64_t* bitmap);

/// Number of nonzero bytes in [bytes, bytes+n) — the writer-side null count
/// when no bitmap is needed.
uint64_t CountNonZeroBytes(const uint8_t* bytes, size_t n);

/// Min and max of `n` >= 1 values, for row-group SARG statistics.
void MinMaxInt64(const int64_t* values, size_t n, int64_t* min, int64_t* max);

/// Writes `count` back-to-back copies of the `width`-byte pattern to
/// [out, out + width*count) — the run expansion of the CORC v3 RLE chunk
/// decoder. `width` >= 1; pattern and out must not overlap. Vector levels
/// broadcast power-of-two widths up to 8 into full-register stores; other
/// widths fall through to the scalar copy loop.
void RleSplat(const uint8_t* pattern, size_t width, size_t count,
              uint8_t* out);

/// Maximum of [values, values+n), or 0 when n == 0 — the CORC v3
/// dictionary decoder validates every per-row index against the dictionary
/// size in one pass with this.
uint32_t MaxU32(const uint32_t* values, size_t n);

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) of
/// [data, data+n), continuing from `crc` — pass the previous call's return
/// value to checksum a stream in pieces, 0 for the first piece. `crc` is a
/// finalized CRC (init/final XOR handled inside), so
/// Crc32cExtend(Crc32cExtend(0, a), b) == Crc32cExtend(0, a+b) and any
/// prefix split produces the same value. Scalar and SSE2 run the
/// table-driven reference; AVX2 hosts use the SSE4.2 crc32 instruction
/// (every AVX2 CPU has it) — identical values at every level.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n);

/// CRC32C of one whole buffer (Crc32cExtend from 0).
inline uint32_t Crc32c(const uint8_t* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Double min/max with two extra contract points so every ISA level agrees
/// bit for bit: inputs must be NaN-free (JSON cannot encode NaN, and the
/// CORC writer only sees parsed JSON numbers), and a zero result is
/// canonicalized to +0.0 — vector min/max instructions are order-dependent
/// on -0.0 vs +0.0, so all levels (including scalar) normalize the sign.
void MinMaxDouble(const double* values, size_t n, double* min, double* max);

// ---- Word-parallel helpers shared by every kernel table ----
//
// These run on 64-bit words, not vectors, so one definition serves all ISA
// levels — cross-level identity holds by construction. They live here
// because the structural-index construction composes them directly with
// ClassifyJson output.

/// Positions escaped by backslashes (preceded by an odd-length backslash
/// run), one word at a time. `*carry` threads run parity across words:
/// pass 0 for the first word, then the value left by the previous call.
/// This is the branchless odd-backslash-sequence detection of simdjson
/// (Keiser & Lemire); the differential test pins it to the run-counting
/// scalar definition across word boundaries.
inline uint64_t EscapedPositions(uint64_t backslashes, uint64_t* carry) {
  constexpr uint64_t kEvenBits = 0x5555555555555555ULL;
  const uint64_t escaped_first = *carry;  // bit 0: first byte is escaped
  backslashes &= ~escaped_first;          // an escaped backslash starts no run
  const uint64_t follows_escape = (backslashes << 1) | escaped_first;
  const uint64_t odd_starts = backslashes & ~kEvenBits & ~follows_escape;
  const uint64_t sum = odd_starts + backslashes;  // carry ripples through runs
  *carry = (sum < backslashes) ? 1 : 0;           // run continues past bit 63
  const uint64_t invert_mask = sum << 1;
  return (kEvenBits ^ invert_mask) & follows_escape;
}

/// Mison phase 2: string mask from an (escape-cleaned) quote bitmap via
/// prefix XOR. Bit i is set iff byte i lies inside a string literal
/// (opening quote inside, closing quote outside). `*parity` threads the
/// quote parity across words: 0 for the first word, then the value left by
/// the previous call; nonzero after the last word means an unterminated
/// string literal.
inline uint64_t StringMaskWord(uint64_t quotes, uint64_t* parity) {
  uint64_t q = quotes;
  q ^= q << 1;
  q ^= q << 2;
  q ^= q << 4;
  q ^= q << 8;
  q ^= q << 16;
  q ^= q << 32;
  const uint64_t mask = q ^ *parity;
  *parity = (mask >> (kWordBits - 1)) ? ~uint64_t{0} : 0;
  return mask;
}

}  // namespace maxson::simd

#endif  // MAXSON_SIMD_KERNELS_H_
