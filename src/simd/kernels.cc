#include "simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "simd/kernel_table.h"

namespace maxson::simd {

namespace {

// Dispatch state: one table pointer plus the level it implements, swapped
// atomically. Kernel wrappers read the pointer once per call, so a
// concurrent ForceIsa never leaves a call half-switched — and since every
// table is byte-identical, a mid-query switch cannot change any result.
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_isa{0};
std::once_flag g_init_once;

/// Highest compiled table at or below `isa` (capability is the caller's
/// concern; Install clamps with BestSupportedIsa first).
const KernelTable* TableFor(Isa isa) {
  if (isa == Isa::kAvx2) {
    if (const KernelTable* t = Avx2Kernels(); t != nullptr) return t;
    isa = Isa::kSse2;
  }
  if (isa == Isa::kSse2) {
    if (const KernelTable* t = Sse2Kernels(); t != nullptr) return t;
  }
  return ScalarKernels();
}

Isa Install(Isa want) {
  const Isa best = BestSupportedIsa();
  const Isa actual = static_cast<int>(want) <= static_cast<int>(best)
                         ? want
                         : best;
  g_table.store(TableFor(actual), std::memory_order_release);
  g_isa.store(static_cast<int>(actual), std::memory_order_release);
  return actual;
}

/// Startup policy: MAXSON_FORCE_ISA when set and recognized, else the best
/// the host supports. Re-applied by ResetIsa().
Isa StartupIsa() {
  const char* env = std::getenv("MAXSON_FORCE_ISA");
  if (env != nullptr && *env != '\0') {
    Isa forced;
    if (ParseIsa(env, &forced)) return forced;
    MAXSON_LOG(Warning) << "MAXSON_FORCE_ISA='" << env
                        << "' not recognized (scalar|sse2|avx2); using "
                        << IsaName(BestSupportedIsa());
  }
  return BestSupportedIsa();
}

void EnsureInit() {
  std::call_once(g_init_once, [] { Install(StartupIsa()); });
}

const KernelTable* Table() {
  EnsureInit();
  return g_table.load(std::memory_order_acquire);
}

}  // namespace

Isa ActiveIsa() {
  EnsureInit();
  return static_cast<Isa>(g_isa.load(std::memory_order_acquire));
}

Isa ForceIsa(Isa isa) {
  EnsureInit();
  return Install(isa);
}

Isa ResetIsa() {
  EnsureInit();
  return Install(StartupIsa());
}

void ClassifyJson(const char* data, size_t n, uint64_t* quotes,
                  uint64_t* backslashes, uint64_t* structurals) {
  Table()->classify_json(data, n, quotes, backslashes, structurals);
}

void ClassifyJsonFull(const char* data, size_t n, uint64_t* quotes,
                      uint64_t* backslashes, uint64_t* structurals) {
  Table()->classify_json_full(data, n, quotes, backslashes, structurals);
}

size_t SkipWhitespace(const char* data, size_t n, size_t pos) {
  return Table()->skip_whitespace(data, n, pos);
}

size_t FindStringSpecial(const char* data, size_t n, size_t pos) {
  return Table()->find_string_special(data, n, pos);
}

size_t FindSubstring(const char* hay, size_t n, const char* needle,
                     size_t m) {
  return Table()->find_substring(hay, n, needle, m);
}

uint64_t NullBytesToBitmap(const uint8_t* nulls, size_t n, uint64_t* bitmap) {
  return Table()->null_bytes_to_bitmap(nulls, n, bitmap);
}

uint64_t CountNonZeroBytes(const uint8_t* bytes, size_t n) {
  return Table()->count_nonzero_bytes(bytes, n);
}

void MinMaxInt64(const int64_t* values, size_t n, int64_t* min,
                 int64_t* max) {
  Table()->minmax_int64(values, n, min, max);
}

void MinMaxDouble(const double* values, size_t n, double* min, double* max) {
  Table()->minmax_double(values, n, min, max);
}

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  return Table()->crc32c_extend(crc, data, n);
}

void RleSplat(const uint8_t* pattern, size_t width, size_t count,
              uint8_t* out) {
  Table()->rle_splat(pattern, width, count, out);
}

uint32_t MaxU32(const uint32_t* values, size_t n) {
  return Table()->max_u32(values, n);
}

}  // namespace maxson::simd
