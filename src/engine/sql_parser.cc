#include "engine/sql_parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "engine/sql_lexer.h"

namespace maxson::engine {

namespace {

using storage::Value;

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    MAXSON_RETURN_NOT_OK(ExpectKeyword("select"));
    SelectStatement stmt;
    if (PeekKeyword("distinct")) {
      stmt.distinct = true;
      Advance();
    }

    // Projection list.
    while (true) {
      SelectItem item;
      MAXSON_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (PeekKeyword("as")) {
        Advance();
        MAXSON_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().Is(TokenKind::kIdentifier) && !PeekAnyClauseKeyword()) {
        // Bare alias without AS.
        item.alias = Peek().text;
        Advance();
      }
      stmt.items.push_back(std::move(item));
      if (PeekOperator(",")) {
        Advance();
        continue;
      }
      break;
    }

    MAXSON_RETURN_NOT_OK(ExpectKeyword("from"));
    MAXSON_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());

    if (PeekKeyword("join") || PeekKeyword("inner")) {
      if (PeekKeyword("inner")) Advance();
      MAXSON_RETURN_NOT_OK(ExpectKeyword("join"));
      MAXSON_ASSIGN_OR_RETURN(TableRef right, ParseTableRef());
      stmt.join = std::move(right);
      MAXSON_RETURN_NOT_OK(ExpectKeyword("on"));
      MAXSON_ASSIGN_OR_RETURN(stmt.join_condition, ParseExpr());
    }

    if (PeekKeyword("where")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }

    if (PeekKeyword("group")) {
      Advance();
      MAXSON_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        MAXSON_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (PeekOperator(",")) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (PeekKeyword("having")) {
      if (stmt.group_by.empty()) return Error("HAVING requires GROUP BY");
      Advance();
      MAXSON_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }

    if (PeekKeyword("order")) {
      Advance();
      MAXSON_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        OrderKey key;
        MAXSON_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (PeekKeyword("desc")) {
          key.descending = true;
          Advance();
        } else if (PeekKeyword("asc")) {
          Advance();
        }
        stmt.order_by.push_back(std::move(key));
        if (PeekOperator(",")) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (PeekKeyword("limit")) {
      Advance();
      if (!Peek().Is(TokenKind::kInteger)) {
        return Error("LIMIT expects an integer");
      }
      stmt.limit = std::strtoll(Peek().text.c_str(), nullptr, 10);
      Advance();
    }

    // Optional trailing semicolon token never produced by the lexer; just
    // require end of input.
    if (!Peek().Is(TokenKind::kEnd)) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " (near offset " +
                              std::to_string(Peek().offset) + ")");
  }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().IsKeyword(keyword);
  }
  bool PeekOperator(std::string_view op) const {
    return Peek().Is(TokenKind::kOperator) && Peek().text == op;
  }
  bool PeekAnyClauseKeyword() const {
    static const char* kClauses[] = {"from",  "where", "group", "order",
                                     "limit", "join",  "inner", "on",
                                     "and",   "or",    "as",    "asc",
                                     "desc",  "between"};
    for (const char* kw : kClauses) {
      if (Peek().IsKeyword(kw)) return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return Error("expected " + std::string(keyword));
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectOperator(std::string_view op) {
    if (!PeekOperator(op)) {
      return Error("expected '" + std::string(op) + "'");
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenKind::kIdentifier)) {
      return Error("expected identifier");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    MAXSON_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    if (PeekOperator(".")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
      ref.database = std::move(first);
    } else {
      ref.table = std::move(first);
    }
    if (Peek().Is(TokenKind::kIdentifier) && !PeekAnyClauseKeyword()) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  // Expression grammar (precedence climbing):
  //   expr       := or_expr
  //   or_expr    := and_expr (OR and_expr)*
  //   and_expr   := not_expr (AND not_expr)*
  //   not_expr   := NOT not_expr | predicate
  //   predicate  := additive (cmp additive | BETWEEN a AND b
  //                 | IS [NOT] NULL)?
  //   additive   := term ((+|-) term)*
  //   term       := unary ((*|/|%) unary)*
  //   unary      := - unary | primary
  //   primary    := literal | call | column | ( expr ) | *
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MAXSON_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekKeyword("or")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    MAXSON_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekKeyword("and")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("not")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    MAXSON_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Peek().Is(TokenKind::kOperator)) {
      const std::string& op = Peek().text;
      BinaryOp bin;
      if (op == "=") {
        bin = BinaryOp::kEq;
      } else if (op == "!=") {
        bin = BinaryOp::kNe;
      } else if (op == "<") {
        bin = BinaryOp::kLt;
      } else if (op == "<=") {
        bin = BinaryOp::kLe;
      } else if (op == ">") {
        bin = BinaryOp::kGt;
      } else if (op == ">=") {
        bin = BinaryOp::kGe;
      } else {
        return lhs;
      }
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return Expr::Binary(bin, std::move(lhs), std::move(rhs));
    }
    if (PeekKeyword("between")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      MAXSON_RETURN_NOT_OK(ExpectKeyword("and"));
      MAXSON_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // a BETWEEN lo AND hi  ==>  a >= lo AND a <= hi
      ExprPtr ge = Expr::Binary(BinaryOp::kGe, lhs->Clone(), std::move(lo));
      ExprPtr le = Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(hi));
      return Expr::Binary(BinaryOp::kAnd, std::move(ge), std::move(le));
    }
    // [NOT] IN (list) and [NOT] LIKE 'pattern'.
    {
      bool negated = false;
      if (PeekKeyword("not") &&
          (Peek(1).IsKeyword("in") || Peek(1).IsKeyword("like"))) {
        negated = true;
        Advance();
      }
      if (PeekKeyword("in")) {
        Advance();
        MAXSON_RETURN_NOT_OK(ExpectOperator("("));
        std::vector<ExprPtr> args;
        args.push_back(std::move(lhs));
        while (true) {
          MAXSON_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          args.push_back(std::move(item));
          if (PeekOperator(",")) {
            Advance();
            continue;
          }
          break;
        }
        MAXSON_RETURN_NOT_OK(ExpectOperator(")"));
        ExprPtr in = Expr::Function("in", std::move(args));
        return negated ? Expr::Unary(UnaryOp::kNot, std::move(in))
                       : std::move(in);
      }
      if (PeekKeyword("like")) {
        Advance();
        MAXSON_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
        std::vector<ExprPtr> args;
        args.push_back(std::move(lhs));
        args.push_back(std::move(pattern));
        ExprPtr like = Expr::Function("like", std::move(args));
        return negated ? Expr::Unary(UnaryOp::kNot, std::move(like))
                       : std::move(like);
      }
      if (negated) return Error("dangling NOT");
    }
    if (PeekKeyword("is")) {
      Advance();
      bool negated = false;
      if (PeekKeyword("not")) {
        negated = true;
        Advance();
      }
      MAXSON_RETURN_NOT_OK(ExpectKeyword("null"));
      return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(lhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    MAXSON_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (PeekOperator("+") || PeekOperator("-")) {
      const BinaryOp op =
          Peek().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseTerm() {
    MAXSON_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (PeekOperator("*") || PeekOperator("/") || PeekOperator("%")) {
      BinaryOp op = BinaryOp::kMul;
      if (Peek().text == "/") op = BinaryOp::kDiv;
      if (Peek().text == "%") op = BinaryOp::kMod;
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekOperator("-")) {
      Advance();
      MAXSON_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  static bool IsAggregateName(const std::string& name, AggKind* agg) {
    if (EqualsIgnoreCase(name, "count")) {
      *agg = AggKind::kCount;
    } else if (EqualsIgnoreCase(name, "sum")) {
      *agg = AggKind::kSum;
    } else if (EqualsIgnoreCase(name, "avg")) {
      *agg = AggKind::kAvg;
    } else if (EqualsIgnoreCase(name, "min")) {
      *agg = AggKind::kMin;
    } else if (EqualsIgnoreCase(name, "max")) {
      *agg = AggKind::kMax;
    } else {
      return false;
    }
    return true;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger: {
        ExprPtr e = Expr::Literal(
            Value::Int64(std::strtoll(token.text.c_str(), nullptr, 10)));
        Advance();
        return e;
      }
      case TokenKind::kFloat: {
        ExprPtr e = Expr::Literal(
            Value::Double(std::strtod(token.text.c_str(), nullptr)));
        Advance();
        return e;
      }
      case TokenKind::kString: {
        ExprPtr e = Expr::Literal(Value::String(token.text));
        Advance();
        return e;
      }
      case TokenKind::kOperator:
        if (token.text == "(") {
          Advance();
          MAXSON_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          MAXSON_RETURN_NOT_OK(ExpectOperator(")"));
          return inner;
        }
        if (token.text == "*") {
          Advance();
          return Expr::Star();
        }
        return Error("unexpected token '" + token.text + "'");
      case TokenKind::kIdentifier: {
        if (token.IsKeyword("true") || token.IsKeyword("false")) {
          ExprPtr e = Expr::Literal(Value::Bool(token.IsKeyword("true")));
          Advance();
          return e;
        }
        if (token.IsKeyword("null")) {
          Advance();
          return Expr::Literal(Value::Null());
        }
        std::string name = token.text;
        Advance();
        if (PeekOperator("(")) {
          Advance();
          AggKind agg;
          std::vector<ExprPtr> args;
          if (!PeekOperator(")")) {
            while (true) {
              MAXSON_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (PeekOperator(",")) {
                Advance();
                continue;
              }
              break;
            }
          }
          MAXSON_RETURN_NOT_OK(ExpectOperator(")"));
          if (IsAggregateName(name, &agg)) {
            if (args.empty()) return Error(name + "() needs an argument");
            if (args.size() != 1) return Error(name + "() takes one argument");
            // COUNT(*) arrives as a kStar argument.
            if (args[0]->kind == ExprKind::kStar) {
              if (agg != AggKind::kCount) {
                return Error("'*' only valid in count(*)");
              }
              return Expr::Aggregate(AggKind::kCount, nullptr);
            }
            return Expr::Aggregate(agg, std::move(args[0]));
          }
          return Expr::Function(ToLower(name), std::move(args));
        }
        // Qualified column "a.b".
        if (PeekOperator(".")) {
          Advance();
          MAXSON_ASSIGN_OR_RETURN(std::string member, ExpectIdentifier());
          return Expr::ColumnRef(name + "." + member);
        }
        return Expr::ColumnRef(std::move(name));
      }
      case TokenKind::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

namespace {

/// Trims whitespace and a trailing semicolon, then tokenizes.
Result<std::vector<Token>> TokenizeStatement(std::string_view sql) {
  std::string_view trimmed = StripWhitespace(sql);
  if (!trimmed.empty() && trimmed.back() == ';') {
    trimmed = StripWhitespace(trimmed.substr(0, trimmed.size() - 1));
  }
  return Tokenize(trimmed);
}

}  // namespace

Result<SelectStatement> ParseSql(std::string_view sql) {
  MAXSON_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeStatement(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

Result<Statement> ParseStatement(std::string_view sql) {
  MAXSON_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeStatement(sql));
  Statement stmt;
  // Peel an EXPLAIN [ANALYZE] prefix off the token stream, then hand the
  // remainder to the SELECT grammar.
  size_t skip = 0;
  if (!tokens.empty() && tokens[0].IsKeyword("explain")) {
    stmt.kind = StatementKind::kExplain;
    skip = 1;
    if (tokens.size() > 1 && tokens[1].IsKeyword("analyze")) {
      stmt.kind = StatementKind::kExplainAnalyze;
      skip = 2;
    }
  }
  if (skip > 0) tokens.erase(tokens.begin(), tokens.begin() + skip);
  Parser parser(std::move(tokens));
  MAXSON_ASSIGN_OR_RETURN(stmt.select, parser.ParseSelect());
  return stmt;
}

}  // namespace maxson::engine
