#include "engine/sql_lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace maxson::engine {

bool Token::IsKeyword(std::string_view keyword) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, keyword);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t pos = 0;
  const size_t n = sql.size();

  auto error = [&](const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos));
  };

  while (pos < n) {
    const char c = sql[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    // Line comments.
    if (c == '-' && pos + 1 < n && sql[pos + 1] == '-') {
      while (pos < n && sql[pos] != '\n') ++pos;
      continue;
    }
    Token token;
    token.offset = pos;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < n && (std::isalnum(static_cast<unsigned char>(sql[pos])) ||
                         sql[pos] == '_')) {
        ++pos;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(sql.substr(start, pos - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos;
      bool is_float = false;
      while (pos < n && std::isdigit(static_cast<unsigned char>(sql[pos]))) {
        ++pos;
      }
      if (pos < n && sql[pos] == '.' && pos + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[pos + 1]))) {
        is_float = true;
        ++pos;
        while (pos < n && std::isdigit(static_cast<unsigned char>(sql[pos]))) {
          ++pos;
        }
      }
      token.kind = is_float ? TokenKind::kFloat : TokenKind::kInteger;
      token.text = std::string(sql.substr(start, pos - start));
    } else if (c == '\'') {
      ++pos;
      std::string text;
      bool closed = false;
      while (pos < n) {
        if (sql[pos] == '\'') {
          if (pos + 1 < n && sql[pos + 1] == '\'') {  // '' escape
            text.push_back('\'');
            pos += 2;
            continue;
          }
          ++pos;
          closed = true;
          break;
        }
        text.push_back(sql[pos]);
        ++pos;
      }
      if (!closed) return error("unterminated string literal");
      token.kind = TokenKind::kString;
      token.text = std::move(text);
    } else {
      token.kind = TokenKind::kOperator;
      // Two-character operators first.
      if (pos + 1 < n) {
        const std::string_view two = sql.substr(pos, 2);
        if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
          token.text = two == "<>" ? "!=" : std::string(two);
          pos += 2;
          tokens.push_back(std::move(token));
          continue;
        }
      }
      switch (c) {
        case '=':
        case '<':
        case '>':
        case '(':
        case ')':
        case ',':
        case '.':
        case '*':
        case '+':
        case '-':
        case '/':
        case '%':
          token.text = std::string(1, c);
          ++pos;
          break;
        default:
          return error(std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace maxson::engine
