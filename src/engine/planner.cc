#include "engine/planner.h"

#include <functional>
#include <set>

#include "common/string_util.h"

namespace maxson::engine {

using storage::Schema;
using storage::TypeKind;
using storage::Value;

storage::Schema ScanOutputSchema(const ScanNode& scan) {
  Schema out;
  for (const std::string& name : scan.columns) {
    const int idx = scan.table_schema.FindField(name);
    const TypeKind type = idx >= 0
                              ? scan.table_schema.field(static_cast<size_t>(idx)).type
                              : TypeKind::kString;
    out.AddField(scan.OutputName(name), type);
  }
  for (const CacheColumnRequest& req : scan.cache_columns) {
    out.AddField(req.output_name, TypeKind::kString);
  }
  return out;
}

int ResolveColumn(const storage::Schema& schema, const std::string& name) {
  const int exact = schema.FindField(name);
  if (exact >= 0) return exact;
  // Unique suffix match: "x" resolves to "a.x" when only one qualifier has x.
  int found = -1;
  const std::string suffix = "." + name;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (EndsWith(schema.field(i).name, suffix)) {
      if (found >= 0) return -1;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  if (found >= 0) return found;
  // Qualified reference against an unqualified schema ("a.x" -> "x"): accept
  // when the bare name is unique. This covers single-table queries that use
  // an alias prefix.
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    return schema.FindField(name.substr(dot + 1));
  }
  return -1;
}

Status BindExpr(Expr* expr, const storage::Schema& schema) {
  Status status;
  expr->Visit([&](Expr* node) {
    if (!status.ok() || node->kind != ExprKind::kColumnRef) return;
    const int idx = ResolveColumn(schema, node->column);
    if (idx < 0) {
      status = Status::InvalidArgument("cannot resolve column '" +
                                       node->column + "'");
      return;
    }
    node->column_index = idx;
  });
  return status;
}

namespace {

/// Collects top-level AND conjuncts.
void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == ExprKind::kBinary && expr->bin_op == BinaryOp::kAnd) {
    CollectConjuncts(expr->children[0].get(), out);
    CollectConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

bool ToSargOp(BinaryOp op, bool flipped, storage::SargOp* out) {
  switch (op) {
    case BinaryOp::kEq:
      *out = storage::SargOp::kEq;
      return true;
    case BinaryOp::kNe:
      *out = storage::SargOp::kNe;
      return true;
    case BinaryOp::kLt:
      *out = flipped ? storage::SargOp::kGt : storage::SargOp::kLt;
      return true;
    case BinaryOp::kLe:
      *out = flipped ? storage::SargOp::kGe : storage::SargOp::kLe;
      return true;
    case BinaryOp::kGt:
      *out = flipped ? storage::SargOp::kLt : storage::SargOp::kGt;
      return true;
    case BinaryOp::kGe:
      *out = flipped ? storage::SargOp::kLe : storage::SargOp::kGe;
      return true;
    default:
      return false;
  }
}

/// Strips a leading "qualifier." when it matches the scan's qualifier.
std::string UnqualifiedName(const ScanNode& scan, const std::string& name) {
  if (!scan.qualifier.empty() && StartsWith(name, scan.qualifier + ".")) {
    return name.substr(scan.qualifier.size() + 1);
  }
  return name;
}

}  // namespace

namespace {

/// Peels numeric-cast wrappers: `to_int(col)` / `to_double(col)` compare
/// like the column itself when the column's storage is numeric (typed cache
/// columns, int64 raw columns), so the cast is transparent to row-group
/// min/max pruning.
const Expr* UnwrapNumericCast(const Expr* e) {
  if (e->kind == ExprKind::kFunction &&
      (e->func_name == "to_int" || e->func_name == "to_double") &&
      e->children.size() == 1 &&
      e->children[0]->kind == ExprKind::kColumnRef) {
    return e->children[0].get();
  }
  return e;
}

}  // namespace

void ExtractSargs(const Expr* where, ScanNode* scan) {
  if (where == nullptr) return;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind != ExprKind::kBinary) continue;
    const Expr* lhs = UnwrapNumericCast(conjunct->children[0].get());
    const Expr* rhs = UnwrapNumericCast(conjunct->children[1].get());
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    bool flipped = false;
    if (lhs->kind == ExprKind::kColumnRef && rhs->kind == ExprKind::kLiteral) {
      col = lhs;
      lit = rhs;
    } else if (rhs->kind == ExprKind::kColumnRef &&
               lhs->kind == ExprKind::kLiteral) {
      col = rhs;
      lit = lhs;
      flipped = true;
    } else {
      continue;
    }
    storage::SargOp op;
    if (!ToSargOp(conjunct->bin_op, flipped, &op)) continue;

    const std::string bare = UnqualifiedName(*scan, col->column);
    // A raw table column?
    if (scan->table_schema.FindField(bare) >= 0) {
      scan->raw_sarg.AddLeaf(storage::SargLeaf{bare, op, lit->literal});
      continue;
    }
    // A cache output column? Push down on the cache field (Algorithm 3).
    for (const CacheColumnRequest& req : scan->cache_columns) {
      if (req.output_name == col->column || req.output_name == bare) {
        scan->cache_sarg.AddLeaf(
            storage::SargLeaf{req.cache_field, op, lit->literal});
        break;
      }
    }
  }
}

Result<ScanNode> Planner::BuildScan(const TableRef& ref, bool qualify) const {
  const std::string database =
      ref.database.empty() ? default_database_ : ref.database;
  MAXSON_ASSIGN_OR_RETURN(const catalog::TableInfo* info,
                          catalog_->GetTable(database, ref.table));
  ScanNode scan;
  scan.table_dir = info->location;
  scan.table_schema = info->schema;
  if (qualify) scan.qualifier = ref.Qualifier();
  return scan;
}

Result<PhysicalPlan> Planner::Plan(const SelectStatement& stmt,
                                   PlanRewriter* rewriter) const {
  PhysicalPlan plan;
  const bool has_join = stmt.join.has_value();
  MAXSON_ASSIGN_OR_RETURN(plan.scan, BuildScan(stmt.from, has_join));
  if (has_join) {
    MAXSON_ASSIGN_OR_RETURN(ScanNode right, BuildScan(*stmt.join, true));
    plan.join_scan = std::move(right);
  }

  // Copy expressions into the plan.
  plan.distinct = stmt.distinct;
  for (const SelectItem& item : stmt.items) {
    plan.projections.push_back(item.expr->Clone());
    plan.projection_names.push_back(
        item.alias.empty() ? item.expr->ToString() : item.alias);
    if (item.expr->ContainsAggregate()) plan.has_aggregates = true;
  }
  if (stmt.where != nullptr) plan.where = stmt.where->Clone();

  // GROUP BY / HAVING / ORDER BY may name a projection alias ("ORDER BY
  // cnt", "HAVING n > 1"); substitute the aliased expression recursively so
  // binding sees real columns. Real table columns shadow aliases.
  auto alias_target = [&](const std::string& name) -> const Expr* {
    if (plan.scan.table_schema.FindField(name) >= 0) return nullptr;
    for (const SelectItem& item : stmt.items) {
      if (!item.alias.empty() && item.alias == name) return item.expr.get();
    }
    return nullptr;
  };
  std::function<ExprPtr(const Expr&)> resolve_alias_rec =
      [&](const Expr& e) -> ExprPtr {
    if (e.kind == ExprKind::kColumnRef) {
      if (const Expr* target = alias_target(e.column)) {
        return target->Clone();
      }
    }
    ExprPtr copy = e.Clone();
    for (ExprPtr& child : copy->children) {
      child = resolve_alias_rec(*child);
    }
    return copy;
  };
  auto resolve_alias = [&](const ExprPtr& e) { return resolve_alias_rec(*e); };
  for (const ExprPtr& g : stmt.group_by) {
    plan.group_by.push_back(resolve_alias(g));
  }
  if (stmt.having != nullptr) {
    plan.having = resolve_alias(stmt.having);
    if (plan.having->ContainsAggregate()) plan.has_aggregates = true;
  }
  for (const OrderKey& key : stmt.order_by) {
    plan.order_by.emplace_back(resolve_alias(key.expr), key.descending);
  }
  plan.limit = stmt.limit;

  // Split an equi-join condition into pairwise key expressions.
  if (has_join) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(stmt.join_condition.get(), &conjuncts);
    for (const Expr* conjunct : conjuncts) {
      if (conjunct->kind != ExprKind::kBinary ||
          conjunct->bin_op != BinaryOp::kEq) {
        return Status::Unimplemented(
            "only conjunctive equi-join conditions are supported");
      }
      plan.join_keys_left.push_back(conjunct->children[0]->Clone());
      plan.join_keys_right.push_back(conjunct->children[1]->Clone());
    }
  }

  // Determine the raw columns each scan must read: every column reference
  // that resolves to it, plus arguments of get_json_object.
  auto collect_columns = [&](ScanNode* scan) {
    std::set<std::string> needed;
    auto note = [&](const Expr* node) {
      if (node->kind != ExprKind::kColumnRef) return;
      const std::string bare = UnqualifiedName(*scan, node->column);
      if (scan->table_schema.FindField(bare) >= 0) needed.insert(bare);
    };
    for (const ExprPtr& e : plan.projections) e->Visit(note);
    if (plan.where != nullptr) plan.where->Visit(note);
    if (plan.having != nullptr) plan.having->Visit(note);
    for (const ExprPtr& e : plan.group_by) e->Visit(note);
    for (const auto& [e, desc] : plan.order_by) e->Visit(note);
    for (const ExprPtr& e : plan.join_keys_left) e->Visit(note);
    for (const ExprPtr& e : plan.join_keys_right) e->Visit(note);
    scan->columns.assign(needed.begin(), needed.end());
    // A scan that references no columns at all (e.g. SELECT COUNT(*)) must
    // still produce one row per table row: read the cheapest column.
    if (scan->columns.empty() && scan->cache_columns.empty() &&
        scan->table_schema.num_fields() > 0) {
      std::string cheapest = scan->table_schema.field(0).name;
      for (const storage::Field& f : scan->table_schema.fields()) {
        if (f.type != TypeKind::kString) {
          cheapest = f.name;
          break;
        }
      }
      scan->columns.push_back(std::move(cheapest));
    }
  };
  collect_columns(&plan.scan);
  if (plan.join_scan.has_value()) collect_columns(&*plan.join_scan);

  // Maxson's plan modification happens here, before binding, so placeholders
  // participate in column resolution like ordinary columns (Algorithm 1).
  if (rewriter != nullptr) {
    MAXSON_ASSIGN_OR_RETURN(int substitutions, rewriter->Rewrite(&plan));
    if (substitutions > 0) {
      // Raw JSON columns whose every use was replaced no longer need to be
      // read; recompute the scan column lists.
      collect_columns(&plan.scan);
      if (plan.join_scan.has_value()) collect_columns(&*plan.join_scan);
    }
  }

  // SARG extraction (WHERE only applies to the joined row, so in join
  // queries push down only to the left scan when unambiguous; for
  // simplicity we extract per-scan and rely on SARGs being advisory).
  ExtractSargs(plan.where.get(), &plan.scan);
  if (plan.join_scan.has_value()) {
    ExtractSargs(plan.where.get(), &*plan.join_scan);
  }

  // Bind every expression against the executor's input schema.
  Schema input = ScanOutputSchema(plan.scan);
  if (plan.join_scan.has_value()) {
    Schema right = ScanOutputSchema(*plan.join_scan);
    // Join keys bind against their own side.
    for (ExprPtr& e : plan.join_keys_left) {
      MAXSON_RETURN_NOT_OK(BindExpr(e.get(), input));
    }
    for (ExprPtr& e : plan.join_keys_right) {
      MAXSON_RETURN_NOT_OK(BindExpr(e.get(), right));
    }
    // Everything downstream sees the concatenated schema.
    Schema joined = input;
    for (const storage::Field& f : right.fields()) {
      joined.AddField(f.name, f.type);
    }
    input = std::move(joined);
  }

  for (ExprPtr& e : plan.projections) {
    MAXSON_RETURN_NOT_OK(BindExpr(e.get(), input));
  }
  if (plan.where != nullptr) {
    MAXSON_RETURN_NOT_OK(BindExpr(plan.where.get(), input));
  }
  if (plan.having != nullptr) {
    MAXSON_RETURN_NOT_OK(BindExpr(plan.having.get(), input));
  }
  for (ExprPtr& e : plan.group_by) {
    MAXSON_RETURN_NOT_OK(BindExpr(e.get(), input));
  }
  for (auto& [e, desc] : plan.order_by) {
    MAXSON_RETURN_NOT_OK(BindExpr(e.get(), input));
  }
  return plan;
}

}  // namespace maxson::engine
