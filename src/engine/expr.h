#ifndef MAXSON_ENGINE_EXPR_H_
#define MAXSON_ENGINE_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/record_batch.h"
#include "storage/types.h"

namespace maxson::json {
class MisonParser;
class OndemandParser;
}  // namespace maxson::json

namespace maxson::engine {

struct QueryMetrics;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFunction,   // scalar function, e.g. get_json_object
  kAggregate,  // COUNT/SUM/AVG/MIN/MAX
  kStar,       // the '*' of COUNT(*)
};

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

/// N-ary membership test: children[0] IN (children[1..]). NOT IN is
/// expressed as kNot over a kIn node.
/// LIKE is a kFunction named "like" with (subject, pattern) arguments.

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One node of an expression tree. A single representation is used from SQL
/// parsing through plan rewriting to evaluation: column references carry the
/// textual name from the query and get a resolved index at bind time.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  storage::Value literal;

  // kColumnRef: name as written (possibly "alias.column"); `column_index`
  // is -1 until bound against the executor's input schema.
  std::string column;
  int column_index = -1;

  // kBinary / kUnary
  BinaryOp bin_op = BinaryOp::kEq;
  UnaryOp un_op = UnaryOp::kNot;

  // kFunction
  std::string func_name;

  // kAggregate
  AggKind agg = AggKind::kCount;

  std::vector<ExprPtr> children;

  static ExprPtr Literal(storage::Value v);
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args);
  static ExprPtr Aggregate(AggKind agg, ExprPtr arg);  // arg null = COUNT(*)
  static ExprPtr Star();

  /// Deep copy.
  ExprPtr Clone() const;

  /// SQL-ish rendering for diagnostics and plan printing.
  std::string ToString() const;

  /// True when any node in the subtree is an aggregate.
  bool ContainsAggregate() const;

  /// Invokes `fn` on every node of the subtree (pre-order). `fn` receives
  /// `Expr*` on mutable trees and may accept `const Expr*` on const ones.
  template <typename Fn>
  void Visit(Fn&& fn) {
    fn(this);
    for (ExprPtr& child : children) child->Visit(fn);
  }
  template <typename Fn>
  void Visit(Fn&& fn) const {
    fn(this);
    for (const ExprPtr& child : children) child->Visit(fn);
  }
};

struct EvalContext;

/// Callback evaluating a scalar function: given argument values and the
/// evaluation environment, produce the function result. Registered
/// per-engine so get_json_object can carry the configured parser backend;
/// the context supplies the per-worker metrics sink and speculative parser
/// so one engine can evaluate rows on many threads at once.
using ScalarFunction = std::function<storage::Value(
    const std::vector<storage::Value>& args, const EvalContext& ctx)>;

/// Evaluation environment: the input batch/row plus the function registry
/// and the per-worker execution state. One EvalContext is private to one
/// worker; parallel operators hand each row chunk its own copy.
struct EvalContext {
  const storage::RecordBatch* batch = nullptr;
  size_t row = 0;
  /// Resolves a function by lowercase name; nullptr when unknown.
  const ScalarFunction* (*lookup_function)(const std::string& name,
                                           void* hook) = nullptr;
  void* lookup_hook = nullptr;
  /// Per-worker parse accounting sink; null when parse time is unmeasured.
  QueryMetrics* metrics = nullptr;
  /// Per-worker speculative Mison parser (its pattern memoization mutates
  /// on every extraction, so workers must not share one); null falls back
  /// to the engine's single-threaded parser.
  json::MisonParser* mison = nullptr;
  /// Per-worker on-demand parser (its tape scratch mutates per record, so
  /// workers must not share one). Non-null only when the engine's
  /// enable_ondemand knob is on; null keeps get_json_object on the
  /// configured DOM/Mison backend.
  json::OndemandParser* ondemand = nullptr;
};

/// Evaluates a bound, aggregate-free expression for one row. NULL propagates
/// through arithmetic; comparisons with NULL yield NULL (falsy); AND/OR use
/// three-valued logic collapsed to NULL-as-false at the filter boundary.
Result<storage::Value> EvaluateExpr(const Expr& expr, const EvalContext& ctx);

/// True when `v` is non-null and truthy (boolean true or nonzero number).
bool IsTruthy(const storage::Value& v);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_EXPR_H_
