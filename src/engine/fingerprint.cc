#include "engine/fingerprint.h"

#include <cinttypes>
#include <cstdio>

namespace maxson::engine {

std::string FingerprintBatch(const storage::RecordBatch& batch) {
  std::string out;
  char buffer[64];
  for (const storage::Field& f : batch.schema().fields()) {
    out += f.name;
    out += ":";
    out += storage::TypeKindName(f.type);
    out += "|";
  }
  out += "\n";
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const storage::ColumnVector& col = batch.column(c);
      if (col.IsNull(r)) {
        out += "NULL";
      } else {
        switch (col.type()) {
          case storage::TypeKind::kBool:
            out += col.GetBool(r) ? "t" : "f";
            break;
          case storage::TypeKind::kInt64:
            std::snprintf(buffer, sizeof(buffer), "%" PRId64, col.GetInt64(r));
            out += buffer;
            break;
          case storage::TypeKind::kDouble:
            std::snprintf(buffer, sizeof(buffer), "%.17g", col.GetDouble(r));
            out += buffer;
            break;
          case storage::TypeKind::kString:
            out += col.GetString(r);
            break;
        }
      }
      out += "|";
    }
    out += "\n";
  }
  return out;
}

uint64_t FingerprintHash(const storage::RecordBatch& batch) {
  const std::string rendered = FingerprintBatch(batch);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char ch : rendered) {
    hash ^= ch;
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

}  // namespace maxson::engine
