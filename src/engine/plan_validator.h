#ifndef MAXSON_ENGINE_PLAN_VALIDATOR_H_
#define MAXSON_ENGINE_PLAN_VALIDATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"

namespace maxson::engine {

/// One cached-column binding the validator checks placeholder requests
/// against: a (cache table directory, field) pair currently backed by a
/// registry entry. The engine cannot see core::CacheRegistry (core links
/// against engine, not the reverse), so the session flattens its registry
/// snapshot into this form.
struct CacheBinding {
  std::string cache_table_dir;
  std::string cache_field;
};

/// Produces the live set of cache bindings at validation time. Installed
/// into the engine by MaxsonSession; a null source — or a source returning
/// null — skips only the binding-existence check (every structural check
/// still runs). Returned as a shared immutable snapshot so the session can
/// rebuild it only when the registry actually changes (keyed off
/// CacheRegistry::version()) instead of copying the registry per plan.
using CacheBindingSource =
    std::function<std::shared_ptr<const std::vector<CacheBinding>>()>;

/// Validates the structural invariants of a fully planned (and, when Maxson
/// is installed, rewritten) physical plan — the properties the compiler
/// cannot see but the executor silently depends on:
///
///  - operator schema agreement: the projection list matches its name list,
///    join key lists pair up, and every operator input is the schema the
///    planner bound against;
///  - expression resolution: every column reference is bound to an index
///    that exists in — and resolves back to the same field of — its input
///    schema; expression nodes are structurally well formed (arity, no
///    aggregates below Filter/Scan);
///  - cache-placeholder binding: every CacheColumnRequest names a real
///    (cache table dir, field) pair of `bindings` — a dangling request
///    would read garbage or fail deep inside the value combiner;
///  - pushdown soundness: a predicate moved to the cache-table reader
///    references only cached fields requested by the scan, and raw-table
///    SARGs reference only raw table columns (Algorithm 3's precondition);
///  - dual-reader alignment: all cache columns of one scan come from one
///    cache table directory (the value combiner opens a single cache file
///    per split) distinct from the raw table, and output names are unique
///    so the combined schema has no ambiguous positions.
///
/// Returns OK, or an Internal status naming the violated invariant with the
/// offending node and the EXPLAIN rendering of the whole plan. Pass null
/// `bindings` when no registry snapshot is available (plain engine without
/// Maxson): the binding-existence check is skipped.
Status ValidatePlan(const PhysicalPlan& plan,
                    const std::vector<CacheBinding>* bindings);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_PLAN_VALIDATOR_H_
