#ifndef MAXSON_ENGINE_FINGERPRINT_H_
#define MAXSON_ENGINE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "storage/record_batch.h"

namespace maxson::engine {

/// Cell-exact rendering of a result batch: a schema header line (column
/// names and types) followed by one line per row, cells "|"-separated.
/// Doubles print at %.17g so they round-trip IEEE-754 — equal fingerprints
/// mean byte-identical results including column names, order, and types.
/// Used by the result cache to detect wrong results under concurrent
/// invalidation and by the benches to compare runs.
std::string FingerprintBatch(const storage::RecordBatch& batch);

/// FNV-1a hash of FingerprintBatch(batch); cheap to store and compare when
/// the full rendering is only needed on mismatch.
uint64_t FingerprintHash(const storage::RecordBatch& batch);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_FINGERPRINT_H_
