#ifndef MAXSON_ENGINE_SQL_AST_H_
#define MAXSON_ENGINE_SQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/expr.h"

namespace maxson::engine {

/// One table mentioned in FROM: "[db.]name [alias]".
struct TableRef {
  std::string database;  // empty = default database
  std::string table;
  std::string alias;  // empty = no alias

  /// Name that qualifies this table's columns in a join ("a" or "T").
  const std::string& Qualifier() const {
    return alias.empty() ? table : alias;
  }
};

/// A SELECT item: expression plus optional AS name.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = derive from expression
};

/// Sort key of ORDER BY.
struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

/// Parsed form of one SELECT statement. Supported shape:
///
///   SELECT items FROM t [JOIN t2 ON expr] [WHERE expr]
///     [GROUP BY exprs] [ORDER BY keys] [LIMIT n]
struct SelectStatement {
  bool distinct = false;  // SELECT DISTINCT
  std::vector<SelectItem> items;
  TableRef from;
  std::optional<TableRef> join;  // single inner join
  ExprPtr join_condition;        // set iff join
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                // may be null; only with GROUP BY
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  // -1 = no limit
};

/// Top-level statement kinds the engine executes. EXPLAIN renders the plan
/// tree without executing; EXPLAIN ANALYZE executes and annotates the tree
/// with per-operator runtime statistics.
enum class StatementKind { kSelect, kExplain, kExplainAnalyze };

/// One parsed statement: a SELECT, optionally wrapped in EXPLAIN [ANALYZE].
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;
};

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_SQL_AST_H_
