#include "engine/plan_validator.h"

#include <string_view>
#include <utility>
#include <vector>

#include "engine/explain.h"
#include "engine/planner.h"

namespace maxson::engine {

namespace {

using storage::Schema;

/// Builds the structured failure Status: the violated invariant, the
/// offending node's rendering, and the EXPLAIN tree of the whole plan so
/// the report stands on its own in a test log or a production error.
///
/// Validation runs on every plan, so the success path must stay
/// allocation-light (the fig13 planning-latency budget allows it <1% of
/// plan time): sites are passed as string_views and every message below is
/// built only after a violation is found.
Status Violation(const PhysicalPlan& plan, std::string_view invariant,
                 const std::string& detail) {
  std::string message = "plan validation failed [";
  message += invariant;
  message += "]: ";
  message += detail;
  message += "\nplan:";
  for (const std::string& line : RenderPlanTree(plan, nullptr)) {
    message += "\n  " + line;
  }
  return Status::Internal(std::move(message));
}

std::string Site(std::string_view site, std::string_view arg) {
  std::string text(site);
  if (!arg.empty()) {
    text += " '";
    text += arg;
    text += "'";
  }
  return text;
}

/// One pass over an expression tree checking structural well-formedness
/// (node arities match their kinds, function nodes carry a name), aggregate
/// placement (disallowed in WHERE, GROUP BY, join keys, and scans, which
/// evaluate row-at-a-time and would misfire on one), and column resolution:
/// every reference bound to an in-range index that agrees with what its own
/// text resolves to in `schema` — a stale index (schema changed after
/// binding) is exactly the Filter/Project mismatch class. A single Visit
/// does all three because validation runs on every plan.
/// `saw_aggregate` (may be null) is OR-ed with whether any aggregate node
/// appeared.
Status CheckExpr(const PhysicalPlan& plan, const Expr& root,
                 const Schema& schema, std::string_view site,
                 std::string_view site_arg, bool allow_aggregates,
                 bool* saw_aggregate = nullptr) {
  Status status;
  root.Visit([&](const Expr* node) {
    if (!status.ok()) return;
    const size_t arity = node->children.size();
    switch (node->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kStar:
        if (arity != 0) {
          status = Violation(plan, "expr-shape",
                             Site(site, site_arg) + ": leaf node has " +
                                 std::to_string(arity) + " children in " +
                                 root.ToString());
        }
        break;
      case ExprKind::kColumnRef: {
        if (arity != 0) {
          status = Violation(plan, "expr-shape",
                             Site(site, site_arg) + ": column ref '" +
                                 node->column + "' has children");
          return;
        }
        if (node->column_index < 0) {
          status = Violation(plan, "column-resolution",
                             Site(site, site_arg) + ": unbound column '" +
                                 node->column + "'");
          return;
        }
        const size_t index = static_cast<size_t>(node->column_index);
        if (index >= schema.num_fields()) {
          status = Violation(
              plan, "column-resolution",
              Site(site, site_arg) + ": column '" + node->column +
                  "' bound to index " + std::to_string(node->column_index) +
                  " outside the " + std::to_string(schema.num_fields()) +
                  "-column input schema");
          return;
        }
        const int resolved = ResolveColumn(schema, node->column);
        if (resolved != node->column_index) {
          status = Violation(
              plan, "column-resolution",
              Site(site, site_arg) + ": column '" + node->column +
                  "' bound to index " + std::to_string(node->column_index) +
                  " ('" + schema.field(index).name + "') but resolves to " +
                  std::to_string(resolved) + " in the input schema");
        }
        break;
      }
      case ExprKind::kBinary:
        if (arity != 2) {
          status = Violation(plan, "expr-shape",
                             Site(site, site_arg) + ": binary node has " +
                                 std::to_string(arity) + " children in " +
                                 root.ToString());
        }
        break;
      case ExprKind::kUnary:
        if (arity != 1) {
          status = Violation(plan, "expr-shape",
                             Site(site, site_arg) + ": unary node has " +
                                 std::to_string(arity) + " children in " +
                                 root.ToString());
        }
        break;
      case ExprKind::kFunction:
        if (node->func_name.empty()) {
          status = Violation(plan, "expr-shape",
                             Site(site, site_arg) +
                                 ": function node without a name in " +
                                 root.ToString());
        }
        break;
      case ExprKind::kAggregate:
        if (arity > 1) {
          status = Violation(plan, "expr-shape",
                             Site(site, site_arg) + ": aggregate node has " +
                                 std::to_string(arity) + " children in " +
                                 root.ToString());
        } else if (!allow_aggregates) {
          status = Violation(plan, "aggregate-placement",
                             Site(site, site_arg) +
                                 ": aggregate not allowed here: " +
                                 root.ToString());
        } else if (saw_aggregate != nullptr) {
          *saw_aggregate = true;
        }
        break;
    }
  });
  return status;
}

/// Scan-level invariants: requested raw columns exist in the table schema,
/// cache requests are well formed, dual-reader alignment preconditions
/// hold, and both SARGs reference only columns their reader can see.
Status CheckScan(const PhysicalPlan& plan, const ScanNode& scan,
                 std::string_view side,
                 const std::vector<CacheBinding>* bindings) {
  if (scan.table_dir.empty()) {
    return Violation(plan, "scan-target",
                     Site(side, {}) + ": empty table directory");
  }
  for (const std::string& column : scan.columns) {
    if (scan.table_schema.FindField(column) < 0) {
      return Violation(plan, "scan-columns",
                       Site(side, {}) + ": requested raw column '" + column +
                           "' is not in the table schema");
    }
  }

  // Cache requests: complete fields, one cache table per scan (the value
  // combiner opens cache_columns[0]'s directory for every split), distinct
  // from the raw table, no duplicate output positions. Plans have a handful
  // of output columns, so duplicate detection is a linear probe; qualified
  // names are only materialized when the scan actually has a qualifier.
  std::vector<std::string_view> output_names;
  std::vector<std::string> qualified_storage;
  output_names.reserve(scan.columns.size() + scan.cache_columns.size());
  if (scan.qualifier.empty()) {
    for (const std::string& column : scan.columns) {
      output_names.push_back(column);
    }
  } else {
    qualified_storage.reserve(scan.columns.size());
    for (const std::string& column : scan.columns) {
      qualified_storage.push_back(scan.OutputName(column));
      output_names.push_back(qualified_storage.back());
    }
  }
  const auto taken = [&output_names](std::string_view name) {
    for (std::string_view existing : output_names) {
      if (existing == name) return true;
    }
    return false;
  };
  for (const CacheColumnRequest& req : scan.cache_columns) {
    if (req.cache_table_dir.empty() || req.cache_field.empty() ||
        req.output_name.empty()) {
      return Violation(plan, "cache-binding",
                       Site(side, {}) +
                           ": incomplete cache column request (dir='" +
                           req.cache_table_dir + "', field='" +
                           req.cache_field + "', output='" + req.output_name +
                           "')");
    }
    if (req.cache_table_dir != scan.cache_columns[0].cache_table_dir) {
      return Violation(
          plan, "dual-reader-alignment",
          Site(side, {}) + ": cache columns span two cache tables ('" +
              scan.cache_columns[0].cache_table_dir + "' and '" +
              req.cache_table_dir +
              "'); the value combiner reads one cache file per split");
    }
    if (req.cache_table_dir == scan.table_dir) {
      return Violation(plan, "dual-reader-alignment",
                       Site(side, {}) +
                           ": cache table directory equals the raw table "
                           "directory '" +
                           scan.table_dir + "'");
    }
    if (taken(req.output_name)) {
      return Violation(plan, "cache-binding",
                       Site(side, {}) + ": duplicate scan output name '" +
                           req.output_name + "'");
    }
    output_names.push_back(req.output_name);
    // Fallback-source invariant: when a request names the raw column it was
    // derived from, that column must exist in the raw table schema as a
    // string — otherwise the corruption fallback would re-parse garbage (or
    // nothing) and silently return wrong rows. Empty sources are legal
    // (hand-built plans); they just forfeit degraded mode.
    if (!req.source_column.empty()) {
      const int src = scan.table_schema.FindField(req.source_column);
      if (src < 0) {
        return Violation(plan, "fallback-source",
                         Site(side, {}) + ": fallback source column '" +
                             req.source_column +
                             "' is not in the raw table schema");
      }
      if (scan.table_schema.field(static_cast<size_t>(src)).type !=
          storage::TypeKind::kString) {
        return Violation(plan, "fallback-source",
                         Site(side, {}) + ": fallback source column '" +
                             req.source_column + "' is not a string column");
      }
      if (req.source_path.empty()) {
        return Violation(plan, "fallback-source",
                         Site(side, {}) + ": fallback source column '" +
                             req.source_column + "' has no source path");
      }
    }
    if (bindings != nullptr) {
      bool bound = false;
      // Field first: fields are short and differ early, directories share a
      // long common prefix, so this order rejects most candidates cheaply.
      for (const CacheBinding& binding : *bindings) {
        if (binding.cache_field == req.cache_field &&
            binding.cache_table_dir == req.cache_table_dir) {
          bound = true;
          break;
        }
      }
      if (!bound) {
        return Violation(plan, "cache-binding",
                         Site(side, {}) + ": cache column '" +
                             req.cache_field + "' in '" +
                             req.cache_table_dir +
                             "' has no live registry entry");
      }
    }
  }

  // Pushdown soundness. Raw SARG leaves must name raw table columns; cache
  // SARG leaves must name cache fields this scan actually requests — a
  // predicate pushed to the cache reader for an uncached path would prune
  // row groups on a column the cache file does not carry values for.
  for (const storage::SargLeaf& leaf : scan.raw_sarg.leaves()) {
    if (scan.table_schema.FindField(leaf.column) < 0) {
      return Violation(plan, "pushdown-soundness",
                       Site(side, {}) + ": raw SARG on '" + leaf.column +
                           "', which is not a raw table column");
    }
  }
  for (const storage::SargLeaf& leaf : scan.cache_sarg.leaves()) {
    bool cached = false;
    for (const CacheColumnRequest& req : scan.cache_columns) {
      if (req.cache_field == leaf.column) {
        cached = true;
        break;
      }
    }
    if (!cached) {
      return Violation(plan, "pushdown-soundness",
                       Site(side, {}) + ": cache SARG on '" + leaf.column +
                           "', which is not a cache field requested by the "
                           "scan");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidatePlan(const PhysicalPlan& plan,
                    const std::vector<CacheBinding>* bindings) {
  // ---- Scan invariants (both sides of a join) ----
  MAXSON_RETURN_NOT_OK(CheckScan(plan, plan.scan, "scan", bindings));
  if (plan.join_scan.has_value()) {
    MAXSON_RETURN_NOT_OK(
        CheckScan(plan, *plan.join_scan, "join scan", bindings));
  }

  // ---- Operator schema agreement ----
  if (plan.projections.empty()) {
    return Violation(plan, "operator-schema", "plan has no projections");
  }
  if (plan.projections.size() != plan.projection_names.size()) {
    return Violation(plan, "operator-schema",
                     std::to_string(plan.projections.size()) +
                         " projections but " +
                         std::to_string(plan.projection_names.size()) +
                         " projection names");
  }
  if (plan.join_keys_left.size() != plan.join_keys_right.size()) {
    return Violation(plan, "operator-schema",
                     std::to_string(plan.join_keys_left.size()) +
                         " left join keys vs " +
                         std::to_string(plan.join_keys_right.size()) +
                         " right join keys");
  }
  if (!plan.join_scan.has_value() && !plan.join_keys_left.empty()) {
    return Violation(plan, "operator-schema",
                     "join keys present without a join scan");
  }
  if (plan.limit < -1) {
    return Violation(plan, "operator-schema",
                     "negative limit " + std::to_string(plan.limit));
  }

  // ---- Expression resolution against the executor's input schema ----
  // Filter, Project, Aggregate and Sort all evaluate against the (joined)
  // scan output; join keys bind against their own side only.
  Schema input = ScanOutputSchema(plan.scan);
  if (plan.join_scan.has_value()) {
    const Schema right = ScanOutputSchema(*plan.join_scan);
    for (size_t k = 0; k < plan.join_keys_left.size(); ++k) {
      MAXSON_RETURN_NOT_OK(CheckExpr(plan, *plan.join_keys_left[k], input,
                                     "join key", {}, false));
      MAXSON_RETURN_NOT_OK(CheckExpr(plan, *plan.join_keys_right[k], right,
                                     "join key", {}, false));
    }
    for (const storage::Field& field : right.fields()) {
      input.AddField(field.name, field.type);
    }
  }

  bool any_aggregate = false;
  for (size_t p = 0; p < plan.projections.size(); ++p) {
    MAXSON_RETURN_NOT_OK(CheckExpr(plan, *plan.projections[p], input,
                                   "projection", plan.projection_names[p],
                                   true, &any_aggregate));
  }
  if (plan.where != nullptr) {
    MAXSON_RETURN_NOT_OK(
        CheckExpr(plan, *plan.where, input, "WHERE", {}, false));
  }
  if (plan.having != nullptr) {
    MAXSON_RETURN_NOT_OK(CheckExpr(plan, *plan.having, input, "HAVING", {},
                                   true, &any_aggregate));
  }
  for (const ExprPtr& expr : plan.group_by) {
    MAXSON_RETURN_NOT_OK(
        CheckExpr(plan, *expr, input, "GROUP BY", {}, false));
  }
  for (const auto& [expr, descending] : plan.order_by) {
    (void)descending;
    MAXSON_RETURN_NOT_OK(
        CheckExpr(plan, *expr, input, "ORDER BY", {}, true));
  }

  // The executor dispatches on has_aggregates; an unset flag with aggregate
  // projections would evaluate aggregate nodes row-at-a-time.
  if (any_aggregate && !plan.has_aggregates) {
    return Violation(plan, "aggregate-placement",
                     "plan contains aggregates but has_aggregates is false");
  }
  return Status::Ok();
}

}  // namespace maxson::engine
