#ifndef MAXSON_ENGINE_ENGINE_H_
#define MAXSON_ENGINE_ENGINE_H_

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/exec_context.h"
#include "engine/plan.h"
#include "engine/plan_validator.h"
#include "exec/thread_pool.h"
#include "json/mison_parser.h"
#include "xml/xml_path.h"

namespace maxson::exec {
class SharedScanManager;
}  // namespace maxson::exec

namespace maxson::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace maxson::obs

namespace maxson::engine {

/// Which JSON parser backs get_json_object, mirroring the paper's Fig. 15
/// configurations: kDom = Spark+Jackson (full deserialization), kMison =
/// Spark+Mison (structural-index projection).
enum class JsonBackend { kDom, kMison };

struct EngineConfig {
  JsonBackend json_backend = JsonBackend::kDom;
  std::string default_database = "default";
  /// Sparser-style raw-byte prefiltering: equality predicates over
  /// get_json_object reject records by substring search before any parsing
  /// happens. Sound for standard-encoded JSON (see json/raw_filter.h);
  /// opt-in because exotic escape-encoded data could defeat the needle.
  bool enable_raw_filter = false;
  /// On-demand parsing tier (json/ondemand_parser.h): under the kDom
  /// backend, uncached get_json_object extraction and the corruption
  /// re-derive path resolve selective path sets by cursoring a SIMD
  /// structural tape instead of materializing the whole DOM, falling back
  /// to the DOM parser per record on any on-demand error. Results are
  /// byte-identical on well-formed data; see DESIGN.md, "On-demand parsing
  /// tier" for the skipped-subtree validation contract that makes this
  /// opt-in.
  bool enable_ondemand = false;
  /// Parallelism degree of query execution (the paper's splits-across-
  /// executors model, in process): splits are scanned and row chunks are
  /// evaluated on this many threads. 0 = hardware concurrency; 1 runs
  /// everything inline on the calling thread (the pre-parallel behaviour).
  /// Results are byte-identical at every setting; see exec/thread_pool.h.
  size_t num_threads = 0;
  /// Run the PlanValidator over every plan Plan()/Execute() produces (after
  /// Maxson's rewrite, before any execution). Debug builds validate
  /// unconditionally; this flag gates the check in Release builds only. A
  /// violation fails the query with kInternal and bumps the
  /// maxson_plan_validation_failures counter.
  bool validate_plans = true;
  /// SIMD kernel level for the byte-scanning hot paths (structural index,
  /// DOM string scans, raw filter, CORC decode): "scalar", "sse2", "avx2",
  /// or ""/"auto" for the startup policy (MAXSON_FORCE_ISA env override,
  /// else the best level the CPU supports). Results are byte-identical at
  /// every level; see src/simd/kernels.h. Applied best-effort at engine
  /// construction — unknown names log a warning and keep the current level.
  std::string force_isa = "";
  /// Route scans through the engine's SharedScanManager so concurrent
  /// queries over one table coalesce into one parse pass per morsel (see
  /// exec/shared_scan.h). Results are byte-identical either way; per-query
  /// metrics under sharing attribute passes to whichever query executed
  /// them. Off by default: single-session workloads gain nothing and keep
  /// the fully deterministic per-query metrics of the private path.
  bool enable_shared_scan = false;
  /// Target rows per shared-scan morsel; 0 = one morsel per split (the
  /// paper's one-file-one-split granularity). Smaller morsels increase
  /// steal/coalesce opportunities at bookkeeping cost.
  size_t morsel_rows = 0;
};

/// The mini analytical engine: SparkSQL's role in the paper. Parses SQL,
/// plans (optionally letting a PlanRewriter — Maxson — modify the plan),
/// and executes scan → [join] → filter → project/aggregate → sort → limit
/// over CORC tables registered in the catalog. Scans fan their splits and
/// the row-oriented operators fan fixed-size row chunks across the engine's
/// thread pool; per-chunk buffers are merged in chunk order so query
/// results do not depend on the thread count.
class QueryEngine {
 public:
  QueryEngine(const catalog::Catalog* catalog, EngineConfig config);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Installs Maxson's plan modifier; pass nullptr to remove. Not owned.
  void set_plan_rewriter(PlanRewriter* rewriter) { rewriter_ = rewriter; }

  /// Registry receiving this engine's per-query observability series
  /// (maxson_query_* counters and time histograms), published once per
  /// query after the merge barrier so counter totals are independent of the
  /// thread count — and the cross-query maxson_sharedscan_* counters the
  /// shared-scan manager publishes per scheduling event. Pass nullptr to
  /// disable. Not owned.
  void set_metrics_registry(obs::MetricsRegistry* registry);

  /// Installs the source of live cache bindings the PlanValidator checks
  /// CacheColumnRequests against (MaxsonSession wires this to its
  /// CacheRegistry snapshot). Pass an empty function to remove; without a
  /// source the binding-existence check is skipped.
  void set_cache_binding_source(CacheBindingSource source) {
    cache_binding_source_ = std::move(source);
  }

  /// Recorder receiving per-stage trace spans (scan, filter, aggregate, …).
  /// Pass nullptr to disable. Not owned.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }
  obs::TraceRecorder* tracer() const { return tracer_; }

  const catalog::Catalog* catalog() const { return catalog_; }
  const EngineConfig& config() const { return config_; }

  /// The pool executing this engine's parallel operators; shared with the
  /// midnight cacher through MaxsonSession so queries and cache population
  /// draw from one set of workers.
  const std::shared_ptr<exec::ThreadPool>& pool() const { return pool_; }

  /// Replaces the thread pool with one of degree `num_threads` (0 =
  /// hardware concurrency). Must not be called while a query is executing;
  /// holders of the previous pool (shared_ptr) keep it alive and usable.
  void set_num_threads(size_t num_threads);

  /// Toggles the Sparser-style raw-byte prefilter; consulted per query, so
  /// the change applies from the next Execute on. Same thread-safety
  /// contract as set_num_threads.
  void set_raw_filter(bool enabled) { config_.enable_raw_filter = enabled; }

  /// Toggles the on-demand parsing tier; consulted per query. Same
  /// thread-safety contract as set_num_threads.
  void set_ondemand(bool enabled) { config_.enable_ondemand = enabled; }

  /// Toggles shared-scan coalescing / sets the morsel-row target; consulted
  /// per query. Same thread-safety contract as set_num_threads.
  void set_shared_scan(bool enabled) { config_.enable_shared_scan = enabled; }
  void set_morsel_rows(size_t rows) { config_.morsel_rows = rows; }

  /// The engine's shared-scan manager (always constructed; engaged only
  /// when enable_shared_scan is on). Exposed for stats and tests.
  exec::SharedScanManager* shared_scan_manager() const {
    return shared_scan_.get();
  }

  /// Installs the source of the cache-state stamp keying shared-scan
  /// groups (MaxsonSession wires this to CacheRegistry::version), so
  /// queries planned across an invalidation never coalesce. Pass an empty
  /// function to remove; without a source every query shares stamp 0 —
  /// only safe when nothing invalidates mid-flight.
  void set_scan_validity_source(std::function<uint64_t()> source) {
    scan_validity_source_ = std::move(source);
  }

  /// Parses and plans `sql` without executing (used by the Fig. 13 bench to
  /// time plan generation with and without Maxson).
  Result<PhysicalPlan> Plan(const std::string& sql);

  /// Plans then executes. Accepts SELECT and EXPLAIN [ANALYZE] SELECT; the
  /// EXPLAIN forms return the rendered plan tree as a one-column batch of
  /// text rows (ANALYZE executes the query first and annotates the tree
  /// with per-operator statistics, carrying the execution's metrics in the
  /// result).
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes an already-built plan under `ctx` (see exec_context.h for
  /// the fields; Execute() assembles the context from the engine's
  /// configuration). A default-constructed context runs the plan
  /// sequentially and unshared.
  Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                  const ExecContext& ctx);

  /// Value snapshot of the Mison backend's speculation telemetry (zeros
  /// under kDom). Cumulative across queries.
  struct ParserTelemetry {
    uint64_t speculation_hits = 0;
    uint64_t speculation_misses = 0;
    uint64_t records_indexed = 0;
  };

  /// Speculation telemetry of the Mison backend. Workers extract with
  /// private parsers; their counters fold into a query-local parser and
  /// land in mison_ once per query under mison_mutex_. The snapshot is
  /// taken under the same mutex, so stats read while queries run are
  /// merely slightly stale, never torn — and no caller can alias the
  /// guarded parser, which is what lets the analysis cover every access.
  ParserTelemetry parser_telemetry() const MAXSON_EXCLUDES(mison_mutex_) {
    MutexLock lock(mison_mutex_);
    return {mison_.speculation_hits(), mison_.speculation_misses(),
            mison_.records_indexed()};
  }

 private:
  friend const ScalarFunction* LookupEngineFunction(const std::string& name,
                                                    void* hook);

  void RegisterBuiltinFunctions();

  /// Runs the PlanValidator over a freshly planned (possibly rewritten)
  /// plan when validation is enabled for this build/config; a violation
  /// bumps maxson_plan_validation_failures and is returned to the caller.
  /// `sql` keys the Release-build verdict cache (see validation_cache_).
  Status ValidatePlanned(const PhysicalPlan& plan, const std::string& sql);

  /// Publishes one executed query's deterministic counters and measured
  /// time distributions to `metrics_registry_` (no-op when unset). Runs on
  /// the coordinating thread after all accumulators merged.
  void PublishMetrics(const QueryMetrics& metrics);

  /// Returns the parsed JSONPath for `text` from the shared cache,
  /// parsing and inserting on first sight; nullptr when the text is not a
  /// valid path. Thread-safe; the returned pointer stays valid for the
  /// engine's lifetime (unordered_map element references are stable).
  const json::JsonPath* CachedJsonPath(const std::string& text)
      MAXSON_EXCLUDES(path_cache_mutex_);
  const xml::XmlPath* CachedXmlPath(const std::string& text)
      MAXSON_EXCLUDES(path_cache_mutex_);

  const catalog::Catalog* catalog_;
  EngineConfig config_;
  PlanRewriter* rewriter_ = nullptr;
  CacheBindingSource cache_binding_source_;
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  std::shared_ptr<exec::ThreadPool> pool_;
  /// Coalesces concurrent scans into shared parse passes; engaged per
  /// query when config_.enable_shared_scan is set (see exec/shared_scan.h).
  std::unique_ptr<exec::SharedScanManager> shared_scan_;
  /// Cache-state stamp source for shared-scan group keys; see
  /// set_scan_validity_source.
  std::function<uint64_t()> scan_validity_source_;
  /// Long-lived telemetry accumulator and single-threaded fallback parser
  /// (used only when an EvalContext carries no per-worker parser — never
  /// the case inside ExecutePlan, which always supplies a query-local
  /// parser so concurrent Execute calls stay independent). Guarded by
  /// mison_mutex_ for the once-per-query telemetry fold; mutable so the
  /// const parser_telemetry() snapshot can lock it.
  mutable Mutex mison_mutex_;
  json::MisonParser mison_ MAXSON_GUARDED_BY(mison_mutex_);
  std::unordered_map<std::string, ScalarFunction> functions_;
  /// Caches of parsed path objects keyed by text, to keep path parsing out
  /// of the measured parse time. Shared across worker threads: lookups
  /// take the mutex shared, first-sight inserts take it exclusive — after
  /// the first few rows every access is a shared-lock read, so the hot
  /// extraction path sees no exclusive-lock contention.
  SharedMutex path_cache_mutex_;
  std::unordered_map<std::string, json::JsonPath> path_cache_
      MAXSON_GUARDED_BY(path_cache_mutex_);
  std::unordered_map<std::string, xml::XmlPath> xml_path_cache_
      MAXSON_GUARDED_BY(path_cache_mutex_);

  /// One remembered clean verdict: the rewriter and binding snapshot the
  /// validation ran under. Planning is deterministic given the SQL text,
  /// the catalog, the installed rewriter, and the registry state (the same
  /// assumption the Maxson rewrite cache rests on), so a query that
  /// validated clean stays clean until one of those inputs changes. The
  /// rewriter is compared by identity; the binding snapshot by pointer
  /// identity — the session rebuilds it only when the registry's version
  /// counter moves, and the shared_ptr held here keeps the old snapshot's
  /// address from being reused. Failures are never cached: a violation is
  /// re-proven (and re-counted) on every occurrence. Release builds only —
  /// Debug builds run the full validator on every plan.
  struct ValidationVerdict {
    const PlanRewriter* rewriter = nullptr;
    std::shared_ptr<const std::vector<CacheBinding>> bindings;
  };
  /// Hashes the length plus at most the first and last 32 bytes of the SQL
  /// text: the key is hashed on every Plan() call, and a full-string hash
  /// of a many-projection SELECT costs more than the verdict lookup it
  /// amortizes. Equality stays exact, so a collision costs one extra
  /// compare, never a wrong verdict.
  struct SqlKeyHash {
    size_t operator()(const std::string& sql) const {
      const size_t n = sql.size();
      const size_t span = std::min<size_t>(n, 32);
      const std::hash<std::string_view> hasher;
      const size_t head = hasher(std::string_view(sql.data(), span));
      const size_t tail =
          hasher(std::string_view(sql.data() + (n - span), span));
      return (head * 1315423911u) ^ tail ^ n;
    }
  };
  Mutex validation_cache_mutex_;
  std::unordered_map<std::string, ValidationVerdict, SqlKeyHash>
      validation_cache_ MAXSON_GUARDED_BY(validation_cache_mutex_);
};

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_ENGINE_H_
