#ifndef MAXSON_ENGINE_ENGINE_H_
#define MAXSON_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/plan.h"
#include "json/mison_parser.h"
#include "xml/xml_path.h"

namespace maxson::engine {

/// Which JSON parser backs get_json_object, mirroring the paper's Fig. 15
/// configurations: kDom = Spark+Jackson (full deserialization), kMison =
/// Spark+Mison (structural-index projection).
enum class JsonBackend { kDom, kMison };

struct EngineConfig {
  JsonBackend json_backend = JsonBackend::kDom;
  std::string default_database = "default";
  /// Sparser-style raw-byte prefiltering: equality predicates over
  /// get_json_object reject records by substring search before any parsing
  /// happens. Sound for standard-encoded JSON (see json/raw_filter.h);
  /// opt-in because exotic escape-encoded data could defeat the needle.
  bool enable_raw_filter = false;
};

/// The mini analytical engine: SparkSQL's role in the paper. Parses SQL,
/// plans (optionally letting a PlanRewriter — Maxson — modify the plan),
/// and executes scan → [join] → filter → project/aggregate → sort → limit
/// over CORC tables registered in the catalog.
class QueryEngine {
 public:
  QueryEngine(const catalog::Catalog* catalog, EngineConfig config);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Installs Maxson's plan modifier; pass nullptr to remove. Not owned.
  void set_plan_rewriter(PlanRewriter* rewriter) { rewriter_ = rewriter; }

  const catalog::Catalog* catalog() const { return catalog_; }
  const EngineConfig& config() const { return config_; }

  /// Parses and plans `sql` without executing (used by the Fig. 13 bench to
  /// time plan generation with and without Maxson).
  Result<PhysicalPlan> Plan(const std::string& sql);

  /// Plans then executes.
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes an already-built plan. `plan_seconds` is carried into the
  /// result's metrics.
  Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                  double plan_seconds);

  /// Speculation telemetry of the Mison backend (empty stats under kDom).
  const json::MisonParser& mison() const { return mison_; }

 private:
  friend const ScalarFunction* LookupEngineFunction(const std::string& name,
                                                    void* hook);

  void RegisterBuiltinFunctions();

  const catalog::Catalog* catalog_;
  EngineConfig config_;
  PlanRewriter* rewriter_ = nullptr;
  json::MisonParser mison_;
  std::unordered_map<std::string, ScalarFunction> functions_;
  /// Parse-time accounting sink for the currently executing query; set by
  /// ExecutePlan around evaluation (single-threaded execution).
  QueryMetrics* active_metrics_ = nullptr;
  /// Caches of parsed path objects keyed by text, to keep path parsing out
  /// of the measured parse time.
  std::unordered_map<std::string, json::JsonPath> path_cache_;
  std::unordered_map<std::string, xml::XmlPath> xml_path_cache_;
};

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_ENGINE_H_
