#ifndef MAXSON_ENGINE_TABLE_SCAN_H_
#define MAXSON_ENGINE_TABLE_SCAN_H_

#include "common/result.h"
#include "engine/plan.h"
#include "exec/thread_pool.h"
#include "storage/record_batch.h"

namespace maxson::engine {

/// Executes one ScanNode: enumerates the table's splits (one file = one
/// split), and for each split runs the value combiner of Algorithm 2 —
/// a PrimaryReader over the raw part file and, when cache columns are
/// requested, a synchronized CacheReader over the cache part file with the
/// same index. When a cache SARG is present and the two files' row groups
/// align (same group size, single stripe — the paper's Section IV-F
/// condition), the CacheReader's row-group exclusions are shared with the
/// PrimaryReader so both skip the same groups (Algorithm 3).
///
/// Splits execute in parallel on `pool` (one split = one task, the paper's
/// unit of parallelism; null pool = sequential), each into a private
/// buffer with private metrics; buffers and counters are merged in split
/// order, so the output is byte-identical at every parallelism degree.
///
/// Returns the concatenated scan output (raw columns, qualified when the
/// scan has a qualifier, followed by cache columns). Metrics accumulate
/// read time, bytes, and shared-skip counts into `metrics`.
Result<storage::RecordBatch> ExecuteScan(const ScanNode& scan,
                                         QueryMetrics* metrics,
                                         exec::ThreadPool* pool = nullptr);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_TABLE_SCAN_H_
