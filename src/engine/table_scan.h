#ifndef MAXSON_ENGINE_TABLE_SCAN_H_
#define MAXSON_ENGINE_TABLE_SCAN_H_

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/plan.h"
#include "storage/record_batch.h"

namespace maxson::engine {

/// Executes one ScanNode: enumerates the table's splits (one file = one
/// split), and for each split runs the value combiner of Algorithm 2 —
/// a PrimaryReader over the raw part file and, when cache columns are
/// requested, a synchronized CacheReader over the cache part file with the
/// same index. When a cache SARG is present and the two files' row groups
/// align (same group size, single stripe — the paper's Section IV-F
/// condition), the CacheReader's row-group exclusions are shared with the
/// PrimaryReader so both skip the same groups (Algorithm 3).
///
/// Two execution paths, selected by `ctx`:
///
///  - Private (ctx.shared_scan == nullptr): one task per split on ctx.pool
///    (the paper's unit of parallelism; null pool = sequential), each into
///    a private buffer with private metrics; buffers and counters merge in
///    split order, so the output is byte-identical at every parallelism
///    degree.
///
///  - Shared (ctx.shared_scan set): the scan subscribes its (table, split,
///    columns, SARGs) interest to the SharedScanManager and morsels are
///    parsed once per concurrent subscriber group — see exec/shared_scan.h
///    and DESIGN.md ("Morsel-driven shared scans"). Rows are assembled in
///    morsel (split/stripe) order, so results are byte-identical to the
///    private path; per-query *metrics* attribute a pass to whichever
///    query executed it, so under concurrency they are a scheduling
///    property, unlike the deterministic private path.
///
/// Returns the concatenated scan output (raw columns, qualified when the
/// scan has a qualifier, followed by cache columns). Metrics accumulate
/// read time, bytes, and shared-skip counts into `metrics`.
Result<storage::RecordBatch> ExecuteScan(const ScanNode& scan,
                                         QueryMetrics* metrics,
                                         const ExecContext& ctx);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_TABLE_SCAN_H_
