#ifndef MAXSON_ENGINE_SQL_PARSER_H_
#define MAXSON_ENGINE_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "engine/sql_ast.h"

namespace maxson::engine {

/// Parses one SELECT statement (optionally ';'-terminated) into an AST.
///
/// The grammar covers the query shapes of the paper's workload: projections
/// with AS aliases, `get_json_object` and other scalar calls, single inner
/// JOIN ... ON, WHERE with AND/OR/NOT, comparisons, BETWEEN, IS [NOT] NULL,
/// arithmetic, GROUP BY, ORDER BY ... [ASC|DESC], LIMIT.
Result<SelectStatement> ParseSql(std::string_view sql);

/// Parses one top-level statement: a SELECT, or EXPLAIN [ANALYZE] SELECT.
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_SQL_PARSER_H_
