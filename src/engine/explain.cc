#include "engine/explain.h"

#include <cstdio>
#include <deque>
#include <map>

#include "simd/isa.h"

namespace maxson::engine {

namespace {

std::string FormatMillis(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  return buf;
}

const char* SargOpText(storage::SargOp op) {
  switch (op) {
    case storage::SargOp::kEq: return "=";
    case storage::SargOp::kNe: return "!=";
    case storage::SargOp::kLt: return "<";
    case storage::SargOp::kLe: return "<=";
    case storage::SargOp::kGt: return ">";
    case storage::SargOp::kGe: return ">=";
    case storage::SargOp::kIsNull: return "IS NULL";
    case storage::SargOp::kIsNotNull: return "IS NOT NULL";
  }
  return "?";
}

std::string RenderSarg(const storage::SearchArgument& sarg) {
  std::string out;
  for (const storage::SargLeaf& leaf : sarg.leaves()) {
    if (!out.empty()) out += " AND ";
    out += leaf.column;
    out += ' ';
    out += SargOpText(leaf.op);
    if (leaf.op != storage::SargOp::kIsNull &&
        leaf.op != storage::SargOp::kIsNotNull) {
      out += ' ';
      out += leaf.literal.is_string() ? "'" + leaf.literal.string_value() + "'"
                                      : leaf.literal.ToString();
    }
  }
  return out;
}

/// Hands out the executor's OperatorStats by operator name, in recording
/// order — the executor emits them in pipeline order, and the renderer
/// consumes them in the same order (scan before join scan, etc.).
class StatsPool {
 public:
  explicit StatsPool(const QueryMetrics* metrics) {
    if (metrics == nullptr) return;
    for (const OperatorStats& op : metrics->operators) {
      by_name_[op.name].push_back(&op);
    }
  }

  const OperatorStats* Take(const std::string& name) {
    auto it = by_name_.find(name);
    if (it == by_name_.end() || it->second.empty()) return nullptr;
    const OperatorStats* op = it->second.front();
    it->second.pop_front();
    return op;
  }

 private:
  std::map<std::string, std::deque<const OperatorStats*>> by_name_;
};

/// One rendered node: static label plus optional runtime annotation.
std::string Annotate(std::string label, const OperatorStats* stats,
                     bool is_scan) {
  if (stats == nullptr) return label;
  label += " [";
  if (is_scan) {
    label += "rows=" + std::to_string(stats->rows_out);
    label += " splits=" + std::to_string(stats->units);
    if (stats->cache_columns > 0) {
      label += " cache_columns=" + std::to_string(stats->cache_columns);
    }
  } else {
    label += "rows_in=" + std::to_string(stats->rows_in);
    label += " rows_out=" + std::to_string(stats->rows_out);
    if (stats->units > 0) label += " chunks=" + std::to_string(stats->units);
  }
  label += " wall=" + FormatMillis(stats->wall_seconds);
  if (stats->cpu_seconds > 0) {
    label += " cpu=" + FormatMillis(stats->cpu_seconds);
  }
  label += "]";
  return label;
}

std::string ScanLabel(const ScanNode& scan) {
  std::string label = "Scan " + TableDisplayName(scan.table_dir);
  if (!scan.qualifier.empty()) label += " AS " + scan.qualifier;
  std::string detail;
  if (!scan.columns.empty()) {
    detail += "columns: ";
    for (size_t i = 0; i < scan.columns.size(); ++i) {
      if (i > 0) detail += ", ";
      detail += scan.columns[i];
    }
  }
  if (!scan.cache_columns.empty()) {
    if (!detail.empty()) detail += "; ";
    detail += "cache: ";
    for (size_t i = 0; i < scan.cache_columns.size(); ++i) {
      if (i > 0) detail += ", ";
      detail += scan.cache_columns[i].cache_field;
    }
  }
  if (!scan.raw_sarg.empty()) {
    if (!detail.empty()) detail += "; ";
    detail += "sarg: " + RenderSarg(scan.raw_sarg);
  }
  if (!scan.cache_sarg.empty()) {
    if (!detail.empty()) detail += "; ";
    detail += "cache sarg: " + RenderSarg(scan.cache_sarg);
  }
  if (!detail.empty()) label += " (" + detail + ")";
  return label;
}

}  // namespace

std::string TableDisplayName(const std::string& table_dir) {
  std::string trimmed = table_dir;
  while (!trimmed.empty() && trimmed.back() == '/') trimmed.pop_back();
  const size_t slash = trimmed.find_last_of('/');
  return slash == std::string::npos ? trimmed : trimmed.substr(slash + 1);
}

std::vector<std::string> RenderPlanTree(const PhysicalPlan& plan,
                                        const QueryMetrics* metrics) {
  StatsPool stats(metrics);

  // Build the operator chain top-down; each entry is one tree level. The
  // scan level is special-cased at the end (a join has two children).
  struct Level {
    std::string label;
  };
  std::vector<Level> chain;

  if (plan.limit >= 0) {
    chain.push_back({Annotate("Limit (" + std::to_string(plan.limit) + ")",
                              stats.Take("Limit"), false)});
  }
  if (plan.distinct) {
    chain.push_back({Annotate("Distinct", stats.Take("Distinct"), false)});
  }
  if (!plan.order_by.empty()) {
    std::string keys;
    for (size_t i = 0; i < plan.order_by.size(); ++i) {
      if (i > 0) keys += ", ";
      keys += plan.order_by[i].first->ToString();
      if (plan.order_by[i].second) keys += " DESC";
    }
    chain.push_back(
        {Annotate("Sort (" + keys + ")", stats.Take("Sort"), false)});
  }
  if (plan.has_aggregates || !plan.group_by.empty()) {
    std::string detail;
    if (!plan.group_by.empty()) {
      detail = "group by ";
      for (size_t i = 0; i < plan.group_by.size(); ++i) {
        if (i > 0) detail += ", ";
        detail += plan.group_by[i]->ToString();
      }
      if (plan.having != nullptr) {
        detail += "; having " + plan.having->ToString();
      }
    }
    std::string label = "Aggregate";
    if (!detail.empty()) label += " (" + detail + ")";
    chain.push_back({Annotate(std::move(label), stats.Take("Aggregate"),
                              false)});
  } else {
    std::string names;
    for (size_t i = 0; i < plan.projection_names.size(); ++i) {
      if (i > 0) names += ", ";
      names += plan.projection_names[i];
    }
    chain.push_back({Annotate("Project (" + names + ")",
                              stats.Take("Project"), false)});
  }
  if (plan.where != nullptr) {
    chain.push_back({Annotate("Filter (" + plan.where->ToString() + ")",
                              stats.Take("Filter"), false)});
  }

  std::vector<std::string> lines;
  std::string indent;
  for (const Level& level : chain) {
    if (lines.empty()) {
      lines.push_back(level.label);
    } else {
      lines.push_back(indent + "+- " + level.label);
      indent += "   ";
    }
  }

  // Scan level: the main scan's stats entry was recorded first, the join
  // scan's second (execution order).
  const OperatorStats* main_scan_stats = stats.Take("Scan");
  const OperatorStats* join_scan_stats = stats.Take("Scan");
  auto push_leaf = [&](const std::string& label) {
    if (lines.empty()) {
      lines.push_back(label);
    } else {
      lines.push_back(indent + "+- " + label);
    }
  };
  if (plan.join_scan.has_value()) {
    std::string keys;
    for (size_t i = 0; i < plan.join_keys_left.size(); ++i) {
      if (i > 0) keys += " AND ";
      keys += plan.join_keys_left[i]->ToString() + " = " +
              plan.join_keys_right[i]->ToString();
    }
    push_leaf(Annotate("HashJoin (" + keys + ")", stats.Take("HashJoin"),
                       false));
    indent += "   ";
    lines.push_back(indent + "+- " +
                    Annotate(ScanLabel(plan.scan), main_scan_stats, true));
    lines.push_back(indent + "+- " +
                    Annotate(ScanLabel(*plan.join_scan), join_scan_stats,
                             true));
  } else {
    push_leaf(Annotate(ScanLabel(plan.scan), main_scan_stats, true));
  }

  // Cache-effectiveness footer: visible in plain EXPLAIN (plan-time rewrite
  // counters) and extended with runtime counters under ANALYZE.
  lines.push_back("");
  lines.push_back("cache: hits=" + std::to_string(plan.rewrite_cache_hits) +
                  " misses=" + std::to_string(plan.rewrite_cache_misses) +
                  " fallbacks=" +
                  std::to_string(plan.rewrite_cache_fallbacks));
  if (metrics != nullptr) {
    lines.push_back(
        "read: bytes=" + std::to_string(metrics->read.bytes_read) +
        " rows=" + std::to_string(metrics->read.rows_read) +
        " groups_read=" + std::to_string(metrics->read.row_groups_read) +
        " groups_skipped=" +
        std::to_string(metrics->read.row_groups_skipped) +
        " shared_skips=" + std::to_string(metrics->shared_skips));
    lines.push_back(
        "parse: records=" + std::to_string(metrics->parse.records_parsed) +
        " bytes=" + std::to_string(metrics->parse.bytes_parsed) +
        " cache_columns_read=" + std::to_string(metrics->cache_columns_read) +
        " raw_filtered_rows=" + std::to_string(metrics->raw_filtered_rows));
    lines.push_back("time: plan=" + FormatMillis(metrics->plan_seconds) +
                    " read(cpu)=" + FormatMillis(metrics->read_seconds) +
                    " parse(cpu)=" + FormatMillis(metrics->parse_seconds) +
                    " compute(cpu)=" + FormatMillis(metrics->compute_seconds));
    lines.push_back(std::string("simd: isa=") +
                    simd::IsaName(simd::ActiveIsa()));
  }
  return lines;
}

}  // namespace maxson::engine
