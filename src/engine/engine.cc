#include "engine/engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "engine/explain.h"
#include "engine/planner.h"
#include "engine/sql_parser.h"
#include "engine/table_scan.h"
#include "exec/shared_scan.h"
#include "json/dom_parser.h"
#include "json/json_path.h"
#include "json/ondemand_parser.h"
#include "json/raw_filter.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "simd/isa.h"
#include "xml/xml_path.h"

namespace maxson::engine {

using storage::RecordBatch;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

const ScalarFunction* LookupEngineFunction(const std::string& name,
                                           void* hook) {
  auto* engine = static_cast<QueryEngine*>(hook);
  auto it = engine->functions_.find(name);
  return it == engine->functions_.end() ? nullptr : &it->second;
}

QueryEngine::QueryEngine(const catalog::Catalog* catalog, EngineConfig config)
    : catalog_(catalog),
      config_(std::move(config)),
      pool_(std::make_shared<exec::ThreadPool>(config_.num_threads)),
      shared_scan_(std::make_unique<exec::SharedScanManager>()) {
  RegisterBuiltinFunctions();
  if (!config_.force_isa.empty() && config_.force_isa != "auto") {
    simd::Isa want;
    if (simd::ParseIsa(config_.force_isa, &want)) {
      simd::ForceIsa(want);
    } else {
      MAXSON_LOG(Warning) << "EngineConfig::force_isa ignores unknown level '"
                          << config_.force_isa << "'";
    }
  } else if (config_.force_isa == "auto") {
    simd::ResetIsa();
  }
}

QueryEngine::~QueryEngine() = default;

void QueryEngine::set_metrics_registry(obs::MetricsRegistry* registry) {
  metrics_registry_ = registry;
  // The shared-scan manager publishes its cross-query scheduling counters
  // to the same registry as the per-query series.
  shared_scan_->set_metrics_registry(registry);
}

void QueryEngine::set_num_threads(size_t num_threads) {
  config_.num_threads = num_threads;
  pool_ = std::make_shared<exec::ThreadPool>(num_threads);
}

const json::JsonPath* QueryEngine::CachedJsonPath(const std::string& text) {
  {
    SharedMutexLock lock(path_cache_mutex_);
    auto it = path_cache_.find(text);
    if (it != path_cache_.end()) return &it->second;
  }
  auto parsed = json::JsonPath::Parse(text);
  if (!parsed.ok()) return nullptr;
  WriterMutexLock lock(path_cache_mutex_);
  // Another worker may have inserted meanwhile; emplace keeps the first.
  return &path_cache_.emplace(text, std::move(*parsed)).first->second;
}

const xml::XmlPath* QueryEngine::CachedXmlPath(const std::string& text) {
  {
    SharedMutexLock lock(path_cache_mutex_);
    auto it = xml_path_cache_.find(text);
    if (it != xml_path_cache_.end()) return &it->second;
  }
  auto parsed = xml::XmlPath::Parse(text);
  if (!parsed.ok()) return nullptr;
  WriterMutexLock lock(path_cache_mutex_);
  return &xml_path_cache_.emplace(text, std::move(*parsed)).first->second;
}

void QueryEngine::RegisterBuiltinFunctions() {
  // get_json_object(json_string, json_path): the workhorse of the paper's
  // workload. Its wall time is attributed to the Parse phase, into the
  // calling worker's metrics accumulator.
  functions_["get_json_object"] = [this](const std::vector<Value>& args,
                                         const EvalContext& ctx) -> Value {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    const std::string& text = args[0].is_string() ? args[0].string_value()
                                                  : args[0].ToString();
    const json::JsonPath* path = CachedJsonPath(args[1].string_value());
    if (path == nullptr) return Value::Null();

    Stopwatch timer;
    Result<std::string> extracted = [&]() -> Result<std::string> {
      if (config_.json_backend == JsonBackend::kMison) {
        json::MisonParser* mison = ctx.mison != nullptr ? ctx.mison : &mison_;
        return mison->Extract(text, *path);
      }
      if (config_.enable_ondemand && ctx.ondemand != nullptr) {
        const uint64_t skipped_before = ctx.ondemand->skipped_bytes();
        Result<std::string> ondemand = ctx.ondemand->Extract(text, *path);
        // NotFound is a definitive answer (the differential tests prove the
        // tiers agree on missing paths); only structural failures re-parse
        // through the DOM tier so results stay byte-identical either way.
        if (ondemand.ok() ||
            ondemand.status().code() == StatusCode::kNotFound) {
          if (ctx.metrics != nullptr) {
            ++ctx.metrics->ondemand_records;
            ctx.metrics->ondemand_skipped_bytes +=
                ctx.ondemand->skipped_bytes() - skipped_before;
          }
          return ondemand;
        }
        if (ctx.metrics != nullptr) ++ctx.metrics->ondemand_fallbacks;
      }
      return json::GetJsonObject(text, *path);
    }();
    if (ctx.metrics != nullptr) {
      ctx.metrics->parse_seconds += timer.ElapsedSeconds();
      ++ctx.metrics->parse.records_parsed;
      ctx.metrics->parse.bytes_parsed += text.size();
    }
    if (!extracted.ok()) return Value::Null();
    return Value::String(std::move(*extracted));
  };

  // get_xml_object(xml_string, xpath): the XML counterpart the paper names
  // as future work; same contract as get_json_object (NULL on missing).
  functions_["get_xml_object"] = [this](const std::vector<Value>& args,
                                        const EvalContext& ctx) -> Value {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    const std::string& text = args[0].is_string() ? args[0].string_value()
                                                  : args[0].ToString();
    const xml::XmlPath* xpath = CachedXmlPath(args[1].string_value());
    if (xpath == nullptr) return Value::Null();
    Stopwatch timer;
    Result<std::string> extracted = xml::GetXmlObject(text, *xpath);
    if (ctx.metrics != nullptr) {
      ctx.metrics->parse_seconds += timer.ElapsedSeconds();
      ++ctx.metrics->parse.records_parsed;
      ctx.metrics->parse.bytes_parsed += text.size();
    }
    if (!extracted.ok()) return Value::Null();
    return Value::String(std::move(*extracted));
  };

  functions_["length"] = [](const std::vector<Value>& args,
                            const EvalContext&) -> Value {
    if (args.size() != 1 || args[0].is_null()) return Value::Null();
    return Value::Int64(static_cast<int64_t>(args[0].ToString().size()));
  };
  functions_["lower"] = [](const std::vector<Value>& args,
                           const EvalContext&) -> Value {
    if (args.size() != 1 || args[0].is_null()) return Value::Null();
    return Value::String(ToLower(args[0].ToString()));
  };
  functions_["concat"] = [](const std::vector<Value>& args,
                            const EvalContext&) -> Value {
    std::string out;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      out += v.ToString();
    }
    return Value::String(std::move(out));
  };
  functions_["coalesce"] = [](const std::vector<Value>& args,
                              const EvalContext&) -> Value {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  };
  // SQL LIKE with % (any run) and _ (any char) wildcards.
  functions_["like"] = [](const std::vector<Value>& args,
                          const EvalContext&) -> Value {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    const std::string subject = args[0].ToString();
    const std::string& pattern = args[1].ToString();
    // Iterative glob match with backtracking on the last '%'.
    size_t s = 0;
    size_t p = 0;
    size_t star_p = std::string::npos;
    size_t star_s = 0;
    while (s < subject.size()) {
      if (p < pattern.size() &&
          (pattern[p] == '_' || pattern[p] == subject[s])) {
        ++s;
        ++p;
      } else if (p < pattern.size() && pattern[p] == '%') {
        star_p = p++;
        star_s = s;
      } else if (star_p != std::string::npos) {
        p = star_p + 1;
        s = ++star_s;
      } else {
        return Value::Bool(false);
      }
    }
    while (p < pattern.size() && pattern[p] == '%') ++p;
    return Value::Bool(p == pattern.size());
  };
  // Membership test backing the SQL IN list: args[0] IN args[1..].
  functions_["in"] = [](const std::vector<Value>& args,
                        const EvalContext&) -> Value {
    if (args.empty() || args[0].is_null()) return Value::Null();
    for (size_t i = 1; i < args.size(); ++i) {
      if (!args[i].is_null() && args[0].Compare(args[i]) == 0) {
        return Value::Bool(true);
      }
    }
    return Value::Bool(false);
  };
  // cast helpers used by benches to force numeric comparisons.
  functions_["to_double"] = [](const std::vector<Value>& args,
                               const EvalContext&) -> Value {
    if (args.size() != 1 || args[0].is_null()) return Value::Null();
    return Value::Double(args[0].AsDouble());
  };
  functions_["to_int"] = [](const std::vector<Value>& args,
                            const EvalContext&) -> Value {
    if (args.size() != 1 || args[0].is_null()) return Value::Null();
    return Value::Int64(static_cast<int64_t>(args[0].AsDouble()));
  };
}

Status QueryEngine::ValidatePlanned(const PhysicalPlan& plan,
                                    const std::string& sql) {
#ifdef NDEBUG
  // Release builds honor the config knob; Debug builds always validate.
  if (!config_.validate_plans) return Status::Ok();
#endif
  std::shared_ptr<const std::vector<CacheBinding>> bindings;
  if (cache_binding_source_) bindings = cache_binding_source_();
#ifdef NDEBUG
  // Clean verdicts are remembered per SQL text so steady-state planning
  // (the fig13 plan-time loop, dashboards re-issuing the same query) pays
  // the full walk once per (rewriter, registry snapshot) state, not per
  // plan. See ValidationVerdict for the determinism argument.
  {
    MutexLock lock(validation_cache_mutex_);
    auto it = validation_cache_.find(sql);
    if (it != validation_cache_.end() && it->second.rewriter == rewriter_ &&
        it->second.bindings == bindings) {
      return Status::Ok();
    }
  }
#endif
  Status status = ValidatePlan(plan, bindings.get());
  if (!status.ok()) {
    if (metrics_registry_ != nullptr) {
      metrics_registry_->GetCounter(obs::kPlanValidationFailures)
          ->Increment();
    }
    return status;
  }
#ifdef NDEBUG
  MutexLock lock(validation_cache_mutex_);
  // Unbounded growth guard; a full reset is fine — verdicts re-prove in
  // one validation each.
  if (validation_cache_.size() >= 1024) validation_cache_.clear();
  validation_cache_[sql] = ValidationVerdict{rewriter_, std::move(bindings)};
#endif
  return status;
}

Result<PhysicalPlan> QueryEngine::Plan(const std::string& sql) {
  MAXSON_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  Planner planner(catalog_, config_.default_database);
  MAXSON_ASSIGN_OR_RETURN(PhysicalPlan plan, planner.Plan(stmt, rewriter_));
  MAXSON_RETURN_NOT_OK(ValidatePlanned(plan, sql));
  return plan;
}

namespace {

/// Wraps rendered plan lines as a one-column batch so EXPLAIN output flows
/// through the same display path as query results.
RecordBatch PlanTextBatch(const std::vector<std::string>& lines) {
  Schema schema;
  schema.AddField("plan", TypeKind::kString);
  RecordBatch batch(schema);
  for (const std::string& line : lines) {
    batch.AppendRow({Value::String(line)});
  }
  return batch;
}

}  // namespace

Result<QueryResult> QueryEngine::Execute(const std::string& sql) {
  MAXSON_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  Stopwatch plan_timer;
  Planner planner(catalog_, config_.default_database);
  MAXSON_ASSIGN_OR_RETURN(PhysicalPlan plan,
                          planner.Plan(stmt.select, rewriter_));
  MAXSON_RETURN_NOT_OK(ValidatePlanned(plan, sql));
  const double plan_seconds = plan_timer.ElapsedSeconds();

  if (stmt.kind == StatementKind::kExplain) {
    QueryResult result;
    result.metrics.plan_seconds = plan_seconds;
    result.metrics.plan_cache_hits = plan.rewrite_cache_hits;
    result.metrics.plan_cache_misses = plan.rewrite_cache_misses;
    result.metrics.plan_cache_fallbacks = plan.rewrite_cache_fallbacks;
    result.batch = PlanTextBatch(RenderPlanTree(plan, nullptr));
    return result;
  }

  // Gather the engine-level execution state into one context (satellites
  // of the engine config land here instead of new ExecutePlan parameters).
  ExecContext exec_ctx;
  exec_ctx.plan_seconds = plan_seconds;
  exec_ctx.pool = pool_.get();
  exec_ctx.enable_ondemand = config_.enable_ondemand;
  if (config_.enable_shared_scan) {
    exec_ctx.shared_scan = shared_scan_.get();
    exec_ctx.scan_validity =
        scan_validity_source_ ? scan_validity_source_() : 0;
    exec_ctx.morsel_rows = config_.morsel_rows;
  }
  MAXSON_ASSIGN_OR_RETURN(QueryResult executed, ExecutePlan(plan, exec_ctx));
  if (stmt.kind == StatementKind::kExplainAnalyze) {
    QueryResult result;
    result.metrics = executed.metrics;
    result.batch = PlanTextBatch(RenderPlanTree(plan, &executed.metrics));
    return result;
  }
  return executed;
}

void QueryEngine::PublishMetrics(const QueryMetrics& metrics) {
  if (metrics_registry_ == nullptr) return;
  obs::MetricsRegistry& reg = *metrics_registry_;
  reg.GetCounter(obs::kQueriesTotal)->Increment();
  reg.GetCounter(obs::kQueryRowsRead)
      ->Increment(metrics.read.rows_read);
  reg.GetCounter(obs::kQueryBytesRead)
      ->Increment(metrics.read.bytes_read);
  reg.GetCounter(obs::kQueryRowGroupsRead)
      ->Increment(metrics.read.row_groups_read);
  reg.GetCounter(obs::kQueryRowGroupsSkipped)
      ->Increment(metrics.read.row_groups_skipped);
  reg.GetCounter(obs::kQuerySharedSkips)
      ->Increment(metrics.shared_skips);
  reg.GetCounter(obs::kQueryRecordsParsed)
      ->Increment(metrics.parse.records_parsed);
  reg.GetCounter(obs::kQueryBytesParsed)
      ->Increment(metrics.parse.bytes_parsed);
  reg.GetCounter(obs::kQueryCacheColumnsRead)
      ->Increment(metrics.cache_columns_read);
  reg.GetCounter(obs::kQueryRawFilteredRows)
      ->Increment(metrics.raw_filtered_rows);
  reg.GetCounter(obs::kOndemandRecords)
      ->Increment(metrics.ondemand_records);
  reg.GetCounter(obs::kOndemandSkippedBytes)
      ->Increment(metrics.ondemand_skipped_bytes);
  reg.GetCounter(obs::kOndemandFallbacks)
      ->Increment(metrics.ondemand_fallbacks);
  reg.GetCounter(obs::kCacheCorruption)
      ->Increment(metrics.cache_corruption_fallbacks);
  reg.GetCounter(obs::kPlanCacheHits)
      ->Increment(metrics.plan_cache_hits);
  reg.GetCounter(obs::kPlanCacheMisses)
      ->Increment(metrics.plan_cache_misses);
  reg.GetCounter(obs::kPlanCacheFallbacks)
      ->Increment(metrics.plan_cache_fallbacks);
  // Time distributions: measured, so histograms — excluded from the
  // determinism comparison (CounterTotals reports counters only).
  const std::vector<double> bounds = obs::Histogram::DefaultSecondsBounds();
  reg.GetHistogram(obs::kQueryPlanSeconds, bounds)
      ->Observe(metrics.plan_seconds);
  reg.GetHistogram(obs::kQueryReadSeconds, bounds)
      ->Observe(metrics.read_seconds);
  reg.GetHistogram(obs::kQueryParseSeconds, bounds)
      ->Observe(metrics.parse_seconds);
  reg.GetHistogram(obs::kQueryComputeSeconds, bounds)
      ->Observe(metrics.compute_seconds);
}

namespace {

/// Rows per parallel work unit of the row-oriented operators. Fixed — never
/// derived from the thread count — so the chunk decomposition, and with it
/// every chunk-merged accumulation (including the floating-point partial
/// sums of aggregates), is byte-identical at every parallelism degree.
constexpr size_t kRowsPerChunk = 1024;

/// Worker-private execution state of one row chunk: a metrics accumulator
/// (replacing the engine-global sink of the single-threaded engine) and a
/// speculative parser whose memoization the chunk mutates freely. Both are
/// folded back in chunk order after the barrier.
struct ChunkState {
  QueryMetrics metrics;
  json::MisonParser mison;
  /// Per-chunk on-demand parser: its tape scratch mutates on every record,
  /// so chunks must not share one. Counters flow through `metrics`.
  json::OndemandParser ondemand;
  /// Wall time of this chunk's task on its worker; chunk times sum (in
  /// chunk order) into the owning operator's cpu_seconds.
  double seconds = 0;
};

/// Sums the per-chunk task times accumulated in `states`, in chunk order.
double SumChunkSeconds(const std::vector<ChunkState>& states) {
  double total = 0;
  for (const ChunkState& s : states) total += s.seconds;
  return total;
}

/// Serialized grouping key: values rendered with a type tag and separator so
/// distinct tuples never collide.
std::string GroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    if (v.is_null()) {
      key += "\x01N";
    } else if (v.is_string()) {
      key += "\x01S" + v.string_value();
    } else {
      key += "\x01V" + v.ToString();
    }
    key += '\x02';
  }
  return key;
}

/// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  Value min;
  Value max;
  bool has_value = false;

  void Update(const Value& v) {
    if (v.is_null()) return;
    ++count;
    sum += v.AsDouble();
    if (!has_value || v.Compare(min) < 0) min = v;
    if (!has_value || v.Compare(max) > 0) max = v;
    has_value = true;
  }

  /// Folds a chunk-partial state into this one (parallel aggregation);
  /// merge order is fixed by chunk index, so SUM/AVG stay deterministic.
  void Merge(const AggState& other) {
    count += other.count;
    sum += other.sum;
    if (!other.has_value) return;
    if (!has_value) {
      min = other.min;
      max = other.max;
      has_value = true;
      return;
    }
    // COUNT(*) states carry null min/max (Update never ran); guard them.
    if (!other.min.is_null() &&
        (min.is_null() || other.min.Compare(min) < 0)) {
      min = other.min;
    }
    if (!other.max.is_null() &&
        (max.is_null() || other.max.Compare(max) > 0)) {
      max = other.max;
    }
  }

  Value Finish(AggKind kind) const {
    switch (kind) {
      case AggKind::kCount:
        return Value::Int64(count);
      case AggKind::kSum:
        return has_value ? Value::Double(sum) : Value::Null();
      case AggKind::kAvg:
        return has_value ? Value::Double(sum / static_cast<double>(count))
                         : Value::Null();
      case AggKind::kMin:
        return has_value ? min : Value::Null();
      case AggKind::kMax:
        return has_value ? max : Value::Null();
    }
    return Value::Null();
  }
};

}  // namespace

Result<QueryResult> QueryEngine::ExecutePlan(const PhysicalPlan& plan,
                                             const ExecContext& exec_ctx) {
  QueryResult result;
  result.metrics.plan_seconds = exec_ctx.plan_seconds;
  QueryMetrics& metrics = result.metrics;
  // Plan-time cache accounting rides into the runtime metrics so EXPLAIN
  // ANALYZE and the registry see it alongside the execution counters.
  metrics.plan_cache_hits = plan.rewrite_cache_hits;
  metrics.plan_cache_misses = plan.rewrite_cache_misses;
  metrics.plan_cache_fallbacks = plan.rewrite_cache_fallbacks;
  obs::TraceSpan query_span(tracer_, "execute", "query");
  exec::ThreadPool* pool = exec_ctx.pool;

  // Context of the sequential sections (join build/probe, group
  // finalization); parallel sections give each chunk a private copy with
  // its own metrics/parser and fold the accumulators back in chunk order.
  // The parser is query-local so concurrent Execute calls (the serving
  // layer runs many sessions on one engine) never share mutable parser
  // state; its telemetry folds into mison_ once, at the end of the query,
  // under mison_mutex_.
  json::MisonParser query_mison;
  // The on-demand parser is likewise query-local; the builtin gates on the
  // enable_ondemand knob, so wiring it unconditionally costs nothing.
  json::OndemandParser query_ondemand;
  EvalContext ctx;
  ctx.lookup_function = &LookupEngineFunction;
  ctx.lookup_hook = this;
  ctx.metrics = &metrics;
  ctx.mison = &query_mison;
  ctx.ondemand = &query_ondemand;

  // ---- Scan (and join) ----
  std::optional<obs::TraceSpan> scan_span;
  scan_span.emplace(tracer_, "scan", "query");
  MAXSON_ASSIGN_OR_RETURN(RecordBatch left,
                          ExecuteScan(plan.scan, &metrics, exec_ctx));
  scan_span.reset();
  if (exec_ctx.cancelled()) return Status::Cancelled("query cancelled");

  RecordBatch input;
  if (plan.join_scan.has_value()) {
    scan_span.emplace(tracer_, "scan.join", "query");
    MAXSON_ASSIGN_OR_RETURN(RecordBatch right,
                            ExecuteScan(*plan.join_scan, &metrics, exec_ctx));
    scan_span.reset();
    if (exec_ctx.cancelled()) return Status::Cancelled("query cancelled");
    obs::TraceSpan join_span(tracer_, "join", "query");
    Stopwatch join_timer;
    Stopwatch compute_timer;
    // Hash join: build on the right side.
    std::multimap<std::string, size_t> build;
    for (size_t r = 0; r < right.num_rows(); ++r) {
      ctx.batch = &right;
      ctx.row = r;
      std::vector<Value> keys;
      bool any_null = false;
      for (const ExprPtr& e : plan.join_keys_right) {
        MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, ctx));
        if (v.is_null()) any_null = true;
        keys.push_back(std::move(v));
      }
      if (any_null) continue;  // NULL keys never join
      build.emplace(GroupKey(keys), r);
    }
    metrics.compute_seconds += compute_timer.ElapsedSeconds();

    Schema joined_schema = left.schema();
    for (const storage::Field& f : right.schema().fields()) {
      joined_schema.AddField(f.name, f.type);
    }
    RecordBatch joined(joined_schema);
    Stopwatch probe_timer;
    for (size_t l = 0; l < left.num_rows(); ++l) {
      ctx.batch = &left;
      ctx.row = l;
      std::vector<Value> keys;
      bool any_null = false;
      for (const ExprPtr& e : plan.join_keys_left) {
        MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, ctx));
        if (v.is_null()) any_null = true;
        keys.push_back(std::move(v));
      }
      if (any_null) continue;
      auto [lo, hi] = build.equal_range(GroupKey(keys));
      for (auto it = lo; it != hi; ++it) {
        std::vector<Value> row = left.GetRow(l);
        std::vector<Value> right_row = right.GetRow(it->second);
        row.insert(row.end(), right_row.begin(), right_row.end());
        joined.AppendRow(row);
      }
    }
    metrics.compute_seconds += probe_timer.ElapsedSeconds();
    OperatorStats join_op;
    join_op.name = "HashJoin";
    join_op.rows_in = left.num_rows() + right.num_rows();
    join_op.rows_out = joined.num_rows();
    join_op.wall_seconds = join_timer.ElapsedSeconds();
    join_op.cpu_seconds = join_op.wall_seconds;  // build/probe run inline
    metrics.operators.push_back(std::move(join_op));
    // Subtract parse time attributed during join evaluation from compute
    // (parse has its own bucket and must not be double counted).
    input = std::move(joined);
  } else {
    input = std::move(left);
  }

  // ---- Filter ----
  // Sparser-style prefilters: for top-level conjuncts of the form
  // get_json_object(col, path) = 'literal', a record lacking the literal's
  // bytes cannot match, so it is dropped before any parsing happens.
  struct RowPrefilter {
    int column_index;
    json::RawFilter filter;
  };
  std::vector<RowPrefilter> prefilters;
  if (config_.enable_raw_filter && plan.where != nullptr) {
    std::vector<const Expr*> stack = {plan.where.get()};
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
        stack.push_back(e->children[0].get());
        stack.push_back(e->children[1].get());
        continue;
      }
      if (e->kind != ExprKind::kBinary || e->bin_op != BinaryOp::kEq) {
        continue;
      }
      const Expr* call = e->children[0].get();
      const Expr* literal = e->children[1].get();
      if (call->kind == ExprKind::kLiteral) std::swap(call, literal);
      if (call->kind != ExprKind::kFunction ||
          call->func_name != "get_json_object" ||
          call->children.size() != 2 ||
          call->children[0]->kind != ExprKind::kColumnRef ||
          call->children[0]->column_index < 0 ||
          literal->kind != ExprKind::kLiteral ||
          !literal->literal.is_string() ||
          !json::IsRawFilterableLiteral(literal->literal.string_value())) {
        continue;
      }
      prefilters.push_back(RowPrefilter{
          call->children[0]->column_index,
          json::RawFilter(literal->literal.string_value())});
    }
  }

  Stopwatch compute_timer;
  RecordBatch filtered(input.schema());
  if (plan.where != nullptr) {
    obs::TraceSpan filter_span(tracer_, "filter", "query");
    Stopwatch filter_timer;
    const uint64_t filter_rows_in = input.num_rows();
    // Row chunks are filtered in parallel, each into a private list of
    // surviving row indexes; lists are concatenated in chunk order, so the
    // surviving-row order matches sequential execution.
    const std::vector<exec::ChunkRange> chunks =
        exec::MakeChunks(input.num_rows(), kRowsPerChunk);
    std::vector<ChunkState> states(chunks.size());
    std::vector<std::vector<size_t>> kept(chunks.size());
    MAXSON_RETURN_NOT_OK(exec::ParallelFor(
        pool, chunks.size(), [&](size_t c) -> Status {
          Stopwatch chunk_timer;
          EvalContext wctx = ctx;
          wctx.batch = &input;
          wctx.metrics = &states[c].metrics;
          wctx.mison = &states[c].mison;
          wctx.ondemand = &states[c].ondemand;
          for (size_t r = chunks[c].begin; r < chunks[c].end; ++r) {
            bool rejected = false;
            for (const RowPrefilter& pf : prefilters) {
              const storage::ColumnVector& col =
                  input.column(static_cast<size_t>(pf.column_index));
              if (col.IsNull(r) || !pf.filter.MightMatch(col.GetString(r))) {
                rejected = true;
                break;
              }
            }
            if (rejected) {
              ++states[c].metrics.raw_filtered_rows;
              continue;
            }
            wctx.row = r;
            MAXSON_ASSIGN_OR_RETURN(Value keep,
                                    EvaluateExpr(*plan.where, wctx));
            if (IsTruthy(keep)) kept[c].push_back(r);
          }
          states[c].seconds = chunk_timer.ElapsedSeconds();
          return Status::Ok();
        }));
    for (size_t c = 0; c < chunks.size(); ++c) {
      metrics.Accumulate(states[c].metrics);
      query_mison.AbsorbTelemetry(states[c].mison);
      for (size_t r : kept[c]) filtered.AppendRow(input.GetRow(r));
    }
    OperatorStats filter_op;
    filter_op.name = "Filter";
    filter_op.rows_in = filter_rows_in;
    filter_op.rows_out = filtered.num_rows();
    filter_op.units = chunks.size();
    filter_op.wall_seconds = filter_timer.ElapsedSeconds();
    filter_op.cpu_seconds = SumChunkSeconds(states);
    metrics.operators.push_back(std::move(filter_op));
  } else {
    filtered = std::move(input);
  }
  if (exec_ctx.cancelled()) return Status::Cancelled("query cancelled");

  // ---- Project / Aggregate ----
  Schema out_schema;
  for (size_t i = 0; i < plan.projections.size(); ++i) {
    out_schema.AddField(plan.projection_names[i], TypeKind::kString);
  }
  // Output columns are dynamically typed; using kString schema would coerce,
  // so instead build per-row Values and type columns as strings only at the
  // very end. To preserve types, re-derive the schema from the first row:
  // simpler: store all projections as their natural Value in a row list.
  std::vector<std::vector<Value>> out_rows;

  if (plan.has_aggregates || !plan.group_by.empty()) {
    obs::TraceSpan agg_span(tracer_, "aggregate", "query");
    Stopwatch agg_timer;
    const uint64_t agg_rows_in = filtered.num_rows();
    // Group rows.
    struct Group {
      std::vector<Value> key_values;
      std::vector<AggState> states;
      size_t first_row;
    };
    // Collect aggregate nodes per projection (top-level or nested); the
    // HAVING clause rides along as a pseudo-projection at the end.
    const size_t having_slot = plan.projections.size();
    std::vector<std::vector<const Expr*>> agg_nodes(having_slot + 1);
    std::vector<const Expr*> all_aggs;
    for (size_t p = 0; p < plan.projections.size(); ++p) {
      plan.projections[p]->Visit([&](const Expr* node) {
        if (node->kind == ExprKind::kAggregate) {
          agg_nodes[p].push_back(node);
          all_aggs.push_back(node);
        }
      });
    }
    if (plan.having != nullptr) {
      plan.having->Visit([&](const Expr* node) {
        if (node->kind == ExprKind::kAggregate) {
          agg_nodes[having_slot].push_back(node);
          all_aggs.push_back(node);
        }
      });
    }

    // Chunk-parallel partial aggregation: each chunk groups its rows into a
    // private ordered map; partials merge below in chunk order, so the
    // exemplar row of every group (its first occurrence) and the aggregate
    // accumulation order are the same at every thread count.
    const std::vector<exec::ChunkRange> chunks =
        exec::MakeChunks(filtered.num_rows(), kRowsPerChunk);
    std::vector<ChunkState> states(chunks.size());
    std::vector<std::map<std::string, Group>> partials(chunks.size());
    MAXSON_RETURN_NOT_OK(exec::ParallelFor(
        pool, chunks.size(), [&](size_t c) -> Status {
          EvalContext wctx = ctx;
          wctx.batch = &filtered;
          wctx.metrics = &states[c].metrics;
          wctx.mison = &states[c].mison;
          wctx.ondemand = &states[c].ondemand;
          Stopwatch chunk_timer;
          std::map<std::string, Group>& local = partials[c];
          for (size_t r = chunks[c].begin; r < chunks[c].end; ++r) {
            wctx.row = r;
            std::vector<Value> key_values;
            for (const ExprPtr& g : plan.group_by) {
              MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*g, wctx));
              key_values.push_back(std::move(v));
            }
            const std::string key = GroupKey(key_values);
            auto [it, inserted] = local.try_emplace(key);
            Group& group = it->second;
            if (inserted) {
              group.key_values = key_values;
              group.states.resize(all_aggs.size());
              group.first_row = r;
            }
            for (size_t a = 0; a < all_aggs.size(); ++a) {
              const Expr* agg = all_aggs[a];
              if (agg->children.empty()) {
                // COUNT(*): count the row unconditionally.
                ++group.states[a].count;
                group.states[a].has_value = true;
              } else {
                MAXSON_ASSIGN_OR_RETURN(
                    Value v, EvaluateExpr(*agg->children[0], wctx));
                group.states[a].Update(v);
              }
            }
          }
          states[c].seconds = chunk_timer.ElapsedSeconds();
          return Status::Ok();
        }));
    std::map<std::string, Group> groups;
    for (size_t c = 0; c < chunks.size(); ++c) {
      metrics.Accumulate(states[c].metrics);
      query_mison.AbsorbTelemetry(states[c].mison);
      for (auto& [key, group] : partials[c]) {
        auto it = groups.find(key);
        if (it == groups.end()) {
          groups.emplace(key, std::move(group));
        } else {
          for (size_t a = 0; a < it->second.states.size(); ++a) {
            it->second.states[a].Merge(group.states[a]);
          }
        }
      }
    }
    // A global aggregate (no GROUP BY) over zero rows still yields one
    // output row: COUNT(*)=0, other aggregates NULL.
    if (groups.empty() && plan.group_by.empty()) {
      Group& empty_group = groups[std::string()];
      empty_group.states.resize(all_aggs.size());
      empty_group.first_row = 0;
    }

    // Finalize each group: evaluate projections (and HAVING) with aggregate
    // nodes replaced by their finished values.
    for (auto& [key, group] : groups) {
      ctx.batch = &filtered;
      ctx.row = group.first_row;
      // Evaluates `source` (the p-th pseudo-projection) for this group.
      auto evaluate_for_group = [&](const Expr& source,
                                    size_t p) -> Result<Value> {
        if (agg_nodes[p].empty()) {
          // Pure grouping expression: evaluate on the group's exemplar row.
          // The synthetic empty-input group has no exemplar; non-aggregate
          // projections over zero rows are NULL.
          if (filtered.num_rows() == 0) return Value::Null();
          return EvaluateExpr(source, ctx);
        }
        // Substitute aggregate results into a clone, then evaluate. The
        // clone's aggregate nodes appear in the same visit order as
        // agg_nodes[p]; map each to its global state slot in all_aggs.
        ExprPtr clone = source.Clone();
        size_t next = 0;
        std::vector<size_t> indices;
        for (const Expr* node : agg_nodes[p]) {
          for (size_t a = 0; a < all_aggs.size(); ++a) {
            if (node == all_aggs[a]) {
              indices.push_back(a);
              break;
            }
          }
        }
        clone->Visit([&](Expr* node) {
          if (node->kind != ExprKind::kAggregate) return;
          const size_t state_index = indices[next++];
          node->kind = ExprKind::kLiteral;
          node->literal = group.states[state_index].Finish(node->agg);
          node->children.clear();
        });
        return EvaluateExpr(*clone, ctx);
      };

      if (plan.having != nullptr) {
        MAXSON_ASSIGN_OR_RETURN(Value keep,
                                evaluate_for_group(*plan.having, having_slot));
        if (!IsTruthy(keep)) continue;
      }
      std::vector<Value> row;
      for (size_t p = 0; p < plan.projections.size(); ++p) {
        MAXSON_ASSIGN_OR_RETURN(Value v,
                                evaluate_for_group(*plan.projections[p], p));
        row.push_back(std::move(v));
      }
      out_rows.push_back(std::move(row));
    }
    OperatorStats agg_op;
    agg_op.name = "Aggregate";
    agg_op.rows_in = agg_rows_in;
    agg_op.rows_out = out_rows.size();
    agg_op.units = chunks.size();
    agg_op.wall_seconds = agg_timer.ElapsedSeconds();
    agg_op.cpu_seconds = SumChunkSeconds(states);
    metrics.operators.push_back(std::move(agg_op));
    // ORDER BY over aggregated output operates on projection aliases.
    // (Sorting below handles the non-aggregate path; for aggregates we sort
    // by matching the order key against projection names.)
    if (!plan.order_by.empty()) {
      obs::TraceSpan sort_span(tracer_, "sort", "query");
      Stopwatch sort_timer;
      std::vector<size_t> order(out_rows.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      // Resolve each order key to a projection index by textual match.
      std::vector<std::pair<int, bool>> keys;
      for (const auto& [expr, desc] : plan.order_by) {
        int proj = -1;
        for (size_t p = 0; p < plan.projections.size(); ++p) {
          if (plan.projection_names[p] == expr->ToString() ||
              plan.projections[p]->ToString() == expr->ToString()) {
            proj = static_cast<int>(p);
            break;
          }
        }
        if (proj < 0 && expr->kind == ExprKind::kColumnRef) {
          for (size_t p = 0; p < plan.projection_names.size(); ++p) {
            if (plan.projection_names[p] == expr->column) {
              proj = static_cast<int>(p);
              break;
            }
          }
        }
        if (proj < 0) {
          return Status::Unimplemented(
              "ORDER BY over aggregates must reference a projection: " +
              expr->ToString());
        }
        keys.emplace_back(proj, desc);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         for (const auto& [p, desc] : keys) {
                           const int cmp = out_rows[a][p].Compare(
                               out_rows[b][p]);
                           if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                         }
                         return false;
                       });
      std::vector<std::vector<Value>> sorted;
      sorted.reserve(out_rows.size());
      for (size_t i : order) sorted.push_back(std::move(out_rows[i]));
      out_rows = std::move(sorted);
      OperatorStats sort_op;
      sort_op.name = "Sort";
      sort_op.rows_in = out_rows.size();
      sort_op.rows_out = out_rows.size();
      sort_op.wall_seconds = sort_timer.ElapsedSeconds();
      sort_op.cpu_seconds = sort_op.wall_seconds;  // runs inline
      metrics.operators.push_back(std::move(sort_op));
    }
  } else {
    // Plain projection; ORDER BY keys are evaluated against input rows.
    std::vector<size_t> order(filtered.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (!plan.order_by.empty()) {
      obs::TraceSpan sort_span(tracer_, "sort", "query");
      Stopwatch sort_timer;
      // Precompute sort keys, chunk-parallel: every row owns its slot in
      // `sort_keys`, and the stable sort below sees the same key array
      // regardless of which worker filled which slot.
      std::vector<std::vector<Value>> sort_keys(filtered.num_rows());
      const std::vector<exec::ChunkRange> chunks =
          exec::MakeChunks(filtered.num_rows(), kRowsPerChunk);
      std::vector<ChunkState> states(chunks.size());
      MAXSON_RETURN_NOT_OK(exec::ParallelFor(
          pool, chunks.size(), [&](size_t c) -> Status {
            Stopwatch chunk_timer;
            EvalContext wctx = ctx;
            wctx.batch = &filtered;
            wctx.metrics = &states[c].metrics;
            wctx.mison = &states[c].mison;
            wctx.ondemand = &states[c].ondemand;
          wctx.ondemand = &states[c].ondemand;
            for (size_t r = chunks[c].begin; r < chunks[c].end; ++r) {
              wctx.row = r;
              for (const auto& [expr, desc] : plan.order_by) {
                MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, wctx));
                sort_keys[r].push_back(std::move(v));
              }
            }
            states[c].seconds = chunk_timer.ElapsedSeconds();
            return Status::Ok();
          }));
      for (size_t c = 0; c < chunks.size(); ++c) {
        metrics.Accumulate(states[c].metrics);
        query_mison.AbsorbTelemetry(states[c].mison);
      }
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < plan.order_by.size(); ++k) {
          const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
          if (cmp != 0) return plan.order_by[k].second ? cmp > 0 : cmp < 0;
        }
        return false;
      });
      OperatorStats sort_op;
      sort_op.name = "Sort";
      sort_op.rows_in = filtered.num_rows();
      sort_op.rows_out = filtered.num_rows();
      sort_op.units = chunks.size();
      sort_op.wall_seconds = sort_timer.ElapsedSeconds();
      sort_op.cpu_seconds = SumChunkSeconds(states);
      metrics.operators.push_back(std::move(sort_op));
    }
    // DISTINCT must see every row before the limit truncates.
    const size_t take =
        (plan.limit >= 0 && !plan.distinct)
            ? std::min<size_t>(order.size(), static_cast<size_t>(plan.limit))
            : order.size();
    // Chunk-parallel projection into preassigned output slots.
    obs::TraceSpan project_span(tracer_, "project", "query");
    Stopwatch project_timer;
    out_rows.resize(take);
    const std::vector<exec::ChunkRange> chunks =
        exec::MakeChunks(take, kRowsPerChunk);
    std::vector<ChunkState> states(chunks.size());
    MAXSON_RETURN_NOT_OK(exec::ParallelFor(
        pool, chunks.size(), [&](size_t c) -> Status {
          Stopwatch chunk_timer;
          EvalContext wctx = ctx;
          wctx.batch = &filtered;
          wctx.metrics = &states[c].metrics;
          wctx.mison = &states[c].mison;
          wctx.ondemand = &states[c].ondemand;
          for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
            wctx.row = order[i];
            std::vector<Value> row;
            row.reserve(plan.projections.size());
            for (const ExprPtr& p : plan.projections) {
              MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*p, wctx));
              row.push_back(std::move(v));
            }
            out_rows[i] = std::move(row);
          }
          states[c].seconds = chunk_timer.ElapsedSeconds();
          return Status::Ok();
        }));
    for (size_t c = 0; c < chunks.size(); ++c) {
      metrics.Accumulate(states[c].metrics);
      query_mison.AbsorbTelemetry(states[c].mison);
    }
    OperatorStats project_op;
    project_op.name = "Project";
    project_op.rows_in = filtered.num_rows();
    project_op.rows_out = take;
    project_op.units = chunks.size();
    project_op.wall_seconds = project_timer.ElapsedSeconds();
    project_op.cpu_seconds = SumChunkSeconds(states);
    metrics.operators.push_back(std::move(project_op));
  }

  // DISTINCT: drop duplicate output rows, keeping first occurrences (order
  // is already established, so this preserves ORDER BY semantics).
  if (plan.distinct) {
    Stopwatch distinct_timer;
    const uint64_t distinct_rows_in = out_rows.size();
    std::set<std::string> seen;
    std::vector<std::vector<Value>> unique;
    unique.reserve(out_rows.size());
    for (std::vector<Value>& row : out_rows) {
      if (seen.insert(GroupKey(row)).second) {
        unique.push_back(std::move(row));
      }
    }
    out_rows = std::move(unique);
    OperatorStats distinct_op;
    distinct_op.name = "Distinct";
    distinct_op.rows_in = distinct_rows_in;
    distinct_op.rows_out = out_rows.size();
    distinct_op.wall_seconds = distinct_timer.ElapsedSeconds();
    distinct_op.cpu_seconds = distinct_op.wall_seconds;  // runs inline
    metrics.operators.push_back(std::move(distinct_op));
  }

  // LIMIT for the aggregate and DISTINCT paths (the plain projection path
  // applied it during evaluation).
  if (plan.limit >= 0) {
    OperatorStats limit_op;
    limit_op.name = "Limit";
    limit_op.rows_in = out_rows.size();
    if (out_rows.size() > static_cast<size_t>(plan.limit)) {
      out_rows.resize(static_cast<size_t>(plan.limit));
    }
    limit_op.rows_out = out_rows.size();
    metrics.operators.push_back(std::move(limit_op));
  }

  // Materialize the output batch. Column types are derived from the first
  // non-null value in each column (string when empty).
  Schema final_schema;
  for (size_t p = 0; p < plan.projections.size(); ++p) {
    TypeKind type = TypeKind::kString;
    for (const std::vector<Value>& row : out_rows) {
      const Value& v = row[p];
      if (v.is_null()) continue;
      if (v.is_bool()) type = TypeKind::kBool;
      if (v.is_int64()) type = TypeKind::kInt64;
      if (v.is_double()) type = TypeKind::kDouble;
      break;
    }
    final_schema.AddField(plan.projection_names[p], type);
  }
  RecordBatch out(final_schema);
  for (const std::vector<Value>& row : out_rows) out.AppendRow(row);
  result.batch = std::move(out);

  // Compute time is total minus the separately attributed parse time
  // accumulated during evaluation.
  metrics.compute_seconds +=
      std::max(0.0, compute_timer.ElapsedSeconds() - metrics.parse_seconds);
  {
    MutexLock lock(mison_mutex_);
    mison_.AbsorbTelemetry(query_mison);
  }
  PublishMetrics(metrics);
  return result;
}

}  // namespace maxson::engine
