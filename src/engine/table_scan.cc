#include "engine/table_scan.h"

#include <map>

#include "common/logging.h"
#include "common/time_util.h"
#include "engine/planner.h"
#include "json/json_path.h"
#include "storage/corc_reader.h"
#include "storage/file_system.h"
#include "xml/xml_path.h"

namespace maxson::engine {

using storage::CorcReader;
using storage::FileSystem;
using storage::RecordBatch;
using storage::Schema;
using storage::Split;

namespace {

using storage::SargLeaf;
using storage::SargOp;
using storage::SearchArgument;
using storage::TypeKind;

/// Reconciles a SARG with the column types of the file it will prune:
/// a numeric literal against a numeric column passes through; a string
/// literal against a numeric column is coerced to numeric; a numeric
/// literal against a string column is dropped (string-ordered min/max
/// statistics cannot soundly bound numeric comparisons). Dropping a leaf
/// only loses pruning — the residual filter re-checks every row.
SearchArgument ReconcileSargWithSchema(const SearchArgument& sarg,
                                       const Schema& schema) {
  SearchArgument out;
  for (const SargLeaf& leaf : sarg.leaves()) {
    if (leaf.op == SargOp::kIsNull || leaf.op == SargOp::kIsNotNull) {
      out.AddLeaf(leaf);
      continue;
    }
    const int idx = schema.FindField(leaf.column);
    if (idx < 0) continue;
    const TypeKind type = schema.field(static_cast<size_t>(idx)).type;
    const bool numeric_column = type != TypeKind::kString;
    const bool numeric_literal =
        leaf.literal.is_int64() || leaf.literal.is_double() ||
        leaf.literal.is_bool();
    if (numeric_column == numeric_literal) {
      out.AddLeaf(leaf);
    } else if (numeric_column) {
      SargLeaf coerced = leaf;
      coerced.literal = storage::Value::Double(leaf.literal.AsDouble());
      out.AddLeaf(std::move(coerced));
    }
    // numeric literal vs string column: dropped.
  }
  return out;
}

/// Reads one split, combining raw and cached columns row-by-row. The cache
/// half of the combiner; on cache corruption the caller retries the split
/// with ScanSplitRawFallback.
Status ScanSplitCached(const ScanNode& scan, const Split& split,
                       const Schema& out_schema, RecordBatch* out,
                       QueryMetrics* metrics) {
  CorcReader primary(split.path);
  MAXSON_RETURN_NOT_OK(primary.Open());

  // Resolve raw column indexes in the file schema.
  std::vector<int> raw_indexes;
  raw_indexes.reserve(scan.columns.size());
  for (const std::string& name : scan.columns) {
    const int idx = primary.schema().FindField(name);
    if (idx < 0) {
      return Status::NotFound("column " + name + " missing in " + split.path);
    }
    raw_indexes.push_back(idx);
  }

  // Open the synchronized cache reader when cache columns are requested.
  std::unique_ptr<CorcReader> cache;
  std::vector<int> cache_indexes;
  if (!scan.cache_columns.empty()) {
    const std::string cache_path = scan.cache_columns[0].cache_table_dir +
                                   "/" + FileSystem::PartFileName(split.index);
    cache = std::make_unique<CorcReader>(cache_path);
    MAXSON_RETURN_NOT_OK(cache->Open());
    if (cache->num_rows() != primary.num_rows()) {
      return Status::Internal("cache/raw row count mismatch on split " +
                              std::to_string(split.index));
    }
    for (const CacheColumnRequest& req : scan.cache_columns) {
      const int idx = cache->schema().FindField(req.cache_field);
      if (idx < 0) {
        return Status::NotFound("cache field " + req.cache_field +
                                " missing in " + cache_path);
      }
      cache_indexes.push_back(idx);
    }
  }

  // The paper's single-stripe condition for sharing row-group skips: both
  // files must have the same stripe structure and group size.
  const bool aligned =
      cache != nullptr && cache->num_stripes() == primary.num_stripes() &&
      cache->footer().rows_per_group == primary.footer().rows_per_group;

  const SearchArgument raw_sarg =
      ReconcileSargWithSchema(scan.raw_sarg, primary.schema());
  const SearchArgument cache_sarg =
      cache != nullptr ? ReconcileSargWithSchema(scan.cache_sarg,
                                                 cache->schema())
                       : SearchArgument();

  // When the two files' stripe structures diverge (the paper's alignment
  // optimization only covers single-stripe files), fall back to positional
  // combining: read the whole cache file once, disable row-group pruning on
  // the primary (a skipped group would shift positions), and slice cache
  // rows by absolute offset.
  RecordBatch cache_full;
  size_t cache_row_offset = 0;
  if (cache != nullptr && !aligned) {
    for (size_t cs = 0; cs < cache->num_stripes(); ++cs) {
      MAXSON_ASSIGN_OR_RETURN(
          RecordBatch part,
          cache->ReadStripe(cs, cache_indexes, std::nullopt,
                            metrics != nullptr ? &metrics->read : nullptr));
      if (cs == 0) {
        cache_full = std::move(part);
      } else {
        for (size_t r = 0; r < part.num_rows(); ++r) {
          cache_full.AppendRow(part.GetRow(r));
        }
      }
    }
  }

  for (size_t s = 0; s < primary.num_stripes(); ++s) {
    // Row-group inclusion: start from the raw SARG's exclusions, then AND in
    // the cache SARG's exclusions when alignment permits (Algorithm 3).
    MAXSON_ASSIGN_OR_RETURN(
        std::vector<bool> include,
        primary.ComputeRowGroupInclusion(
            s, (cache != nullptr && !aligned) ? SearchArgument() : raw_sarg));
    if (aligned && !cache_sarg.empty()) {
      MAXSON_ASSIGN_OR_RETURN(
          std::vector<bool> cache_include,
          cache->ComputeRowGroupInclusion(s, cache_sarg));
      if (cache_include.size() == include.size()) {
        for (size_t g = 0; g < include.size(); ++g) {
          if (!cache_include[g] && include[g]) {
            include[g] = false;
            if (metrics != nullptr) ++metrics->shared_skips;
          }
        }
      }
    }

    MAXSON_ASSIGN_OR_RETURN(
        RecordBatch raw_batch,
        primary.ReadStripe(s, raw_indexes, include,
                           metrics != nullptr ? &metrics->read : nullptr));
    RecordBatch cache_batch;
    if (cache != nullptr) {
      if (aligned) {
        // The CacheReader honors the same inclusion vector, so the two
        // readers stay on identical rows (Algorithm 2's alignment
        // guarantee).
        MAXSON_ASSIGN_OR_RETURN(
            cache_batch,
            cache->ReadStripe(s, cache_indexes, include,
                              metrics != nullptr ? &metrics->read : nullptr));
      } else {
        // Positional fallback: slice the pre-read cache rows matching this
        // stripe's absolute row range.
        storage::Schema cache_schema;
        for (size_t c = 0; c < cache_indexes.size(); ++c) {
          cache_schema.AddField(cache_full.schema().field(c).name,
                                cache_full.schema().field(c).type);
        }
        cache_batch = RecordBatch(cache_schema);
        // Cache-only scans read no raw columns; the stripe's row count
        // comes from the primary footer in that case.
        const size_t stripe_rows =
            raw_indexes.empty()
                ? static_cast<size_t>(primary.footer().stripes[s].num_rows)
                : raw_batch.num_rows();
        for (size_t r = 0; r < stripe_rows; ++r) {
          cache_batch.AppendRow(cache_full.GetRow(cache_row_offset + r));
        }
        cache_row_offset += stripe_rows;
      }
      // Cache-only reading (every requested value is cached, Section
      // IV-B's relevance rationale) leaves the raw batch empty; row counts
      // must agree whenever both readers produced columns.
      if (!raw_indexes.empty() &&
          cache_batch.num_rows() != raw_batch.num_rows()) {
        return Status::Internal("value combiner row misalignment");
      }
      if (metrics != nullptr) {
        metrics->cache_columns_read += cache_indexes.size();
      }
    }

    // Value combiner: place each value at its position in the output schema
    // (Algorithm 2's index-by-name step happened once, at schema build).
    const size_t rows =
        raw_indexes.empty() ? cache_batch.num_rows() : raw_batch.num_rows();
    for (size_t r = 0; r < rows; ++r) {
      std::vector<storage::Value> row;
      row.reserve(out_schema.num_fields());
      for (size_t c = 0; c < raw_indexes.size(); ++c) {
        row.push_back(raw_batch.column(c).GetValue(r));
      }
      for (size_t c = 0; c < cache_indexes.size(); ++c) {
        row.push_back(cache_batch.column(c).GetValue(r));
      }
      out->AppendRow(row);
    }
  }
  return Status::Ok();
}

/// Degraded-mode scan of one split: the cache file is unusable, so every
/// requested cache column is re-derived by parsing the raw string column it
/// was originally extracted from — exactly what the query would have done
/// with caching disabled, so the rows are byte-identical either way. Only
/// possible when the plan carries the source column/path of every cache
/// column (MaxsonParser always fills them).
Status ScanSplitRawFallback(const ScanNode& scan, const Split& split,
                            const Schema& out_schema, RecordBatch* out,
                            QueryMetrics* metrics) {
  CorcReader primary(split.path);
  MAXSON_RETURN_NOT_OK(primary.Open());

  std::vector<int> raw_indexes;
  raw_indexes.reserve(scan.columns.size());
  for (const std::string& name : scan.columns) {
    const int idx = primary.schema().FindField(name);
    if (idx < 0) {
      return Status::NotFound("column " + name + " missing in " + split.path);
    }
    raw_indexes.push_back(idx);
  }

  // Resolve each cache column's source column and parse its path.
  struct SourceWork {
    int column = -1;  // index in the primary file schema
    bool is_xml = false;
    json::JsonPath json_path;
    xml::XmlPath xml_path;
  };
  std::vector<SourceWork> sources;
  sources.reserve(scan.cache_columns.size());
  for (const CacheColumnRequest& req : scan.cache_columns) {
    SourceWork src;
    src.column = primary.schema().FindField(req.source_column);
    if (src.column < 0) {
      return Status::NotFound("fallback source column " + req.source_column +
                              " missing in " + split.path);
    }
    src.is_xml = xml::IsXmlPathText(req.source_path);
    if (src.is_xml) {
      MAXSON_ASSIGN_OR_RETURN(src.xml_path,
                              xml::XmlPath::Parse(req.source_path));
    } else {
      MAXSON_ASSIGN_OR_RETURN(src.json_path,
                              json::JsonPath::Parse(req.source_path));
    }
    sources.push_back(std::move(src));
  }

  // Read raw + source columns together (deduplicated). Pruning uses the raw
  // SARG only: the cache SARG names cache fields, and the residual filter
  // re-checks every surviving row anyway.
  std::vector<int> read_columns = raw_indexes;
  std::map<int, size_t> slot_of;  // file column index -> batch slot
  for (size_t c = 0; c < read_columns.size(); ++c) {
    slot_of.emplace(read_columns[c], c);
  }
  for (const SourceWork& src : sources) {
    if (slot_of.emplace(src.column, read_columns.size()).second) {
      read_columns.push_back(src.column);
    }
  }
  const SearchArgument raw_sarg =
      ReconcileSargWithSchema(scan.raw_sarg, primary.schema());

  for (size_t s = 0; s < primary.num_stripes(); ++s) {
    MAXSON_ASSIGN_OR_RETURN(std::vector<bool> include,
                            primary.ComputeRowGroupInclusion(s, raw_sarg));
    MAXSON_ASSIGN_OR_RETURN(
        RecordBatch batch,
        primary.ReadStripe(s, read_columns, include,
                           metrics != nullptr ? &metrics->read : nullptr));
    Stopwatch parse_timer;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<storage::Value> row;
      row.reserve(out_schema.num_fields());
      for (size_t c = 0; c < raw_indexes.size(); ++c) {
        row.push_back(batch.column(c).GetValue(r));
      }
      for (const SourceWork& src : sources) {
        const size_t slot = slot_of.at(src.column);
        if (batch.column(slot).IsNull(r)) {
          row.push_back(storage::Value::Null());
          continue;
        }
        const std::string& text = batch.column(slot).GetString(r);
        Result<std::string> value =
            src.is_xml ? xml::GetXmlObject(text, src.xml_path)
                       : json::GetJsonObject(text, src.json_path);
        if (metrics != nullptr) {
          ++metrics->parse.records_parsed;
          metrics->parse.bytes_parsed += text.size();
        }
        // Absent path -> NULL, matching get_json_object and the cacher.
        row.push_back(value.ok() ? storage::Value::String(std::move(*value))
                                 : storage::Value::Null());
      }
      out->AppendRow(row);
    }
    if (metrics != nullptr) {
      metrics->parse_seconds += parse_timer.ElapsedSeconds();
    }
  }
  return Status::Ok();
}

/// One split of the scan: the cached path first; on cache-side corruption,
/// quarantine the cache file and degrade to raw parsing so the query still
/// returns correct rows. Corruption of the *raw* file is not recoverable —
/// the fallback reads the same file and surfaces the same error.
Status ScanSplit(const ScanNode& scan, const Split& split,
                 const Schema& out_schema, RecordBatch* out,
                 QueryMetrics* metrics) {
  Status status = ScanSplitCached(scan, split, out_schema, out, metrics);
  if (!status.IsCorruption() || scan.cache_columns.empty()) return status;
  for (const CacheColumnRequest& req : scan.cache_columns) {
    if (req.source_column.empty() || req.source_path.empty()) return status;
  }
  MAXSON_LOG(Warning) << "cache corruption on split " << split.index << " ("
                      << status.message() << "); re-deriving from raw";
  // Restart the split from scratch: drop partially combined rows and the
  // failed attempt's accounting so totals stay deterministic.
  *out = RecordBatch(out_schema);
  if (metrics != nullptr) {
    *metrics = QueryMetrics();
    ++metrics->cache_corruption_fallbacks;
  }
  return ScanSplitRawFallback(scan, split, out_schema, out, metrics);
}

}  // namespace

Result<RecordBatch> ExecuteScan(const ScanNode& scan, QueryMetrics* metrics,
                                exec::ThreadPool* pool) {
  Stopwatch timer;
  const Schema out_schema = ScanOutputSchema(scan);
  RecordBatch out(out_schema);

  MAXSON_ASSIGN_OR_RETURN(std::vector<Split> splits,
                          FileSystem::ListSplits(scan.table_dir));
  if (splits.empty()) {
    return Status::NotFound("no part files under " + scan.table_dir);
  }
  // One task per split, each running the full value-combiner pipeline into
  // a private buffer with a private metrics accumulator; the merge below
  // happens in split order, so row order and counter totals match
  // sequential execution exactly.
  std::vector<RecordBatch> buffers(splits.size());
  std::vector<QueryMetrics> split_metrics(splits.size());
  std::vector<double> split_seconds(splits.size(), 0.0);
  MAXSON_RETURN_NOT_OK(exec::ParallelFor(
      pool, splits.size(), [&](size_t i) -> Status {
        Stopwatch split_timer;
        buffers[i] = RecordBatch(out_schema);
        Status status =
            ScanSplit(scan, splits[i], out_schema, &buffers[i],
                      metrics != nullptr ? &split_metrics[i] : nullptr);
        split_seconds[i] = split_timer.ElapsedSeconds();
        return status;
      }));
  for (size_t i = 0; i < buffers.size(); ++i) {
    if (metrics != nullptr) metrics->Accumulate(split_metrics[i]);
    out.AppendBatch(std::move(buffers[i]));
  }
  if (metrics != nullptr) {
    metrics->read_seconds += timer.ElapsedSeconds();
    OperatorStats op;
    op.name = "Scan";
    op.detail = scan.table_dir;
    op.rows_out = out.num_rows();
    op.units = splits.size();
    op.cache_columns = scan.cache_columns.size();
    op.wall_seconds = timer.ElapsedSeconds();
    for (double s : split_seconds) op.cpu_seconds += s;
    metrics->operators.push_back(std::move(op));
  }
  return out;
}

}  // namespace maxson::engine
