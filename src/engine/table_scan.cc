#include "engine/table_scan.h"

#include <map>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/time_util.h"
#include "engine/planner.h"
#include "exec/shared_scan.h"
#include "exec/thread_pool.h"
#include "json/json_path.h"
#include "json/ondemand_parser.h"
#include "storage/corc_reader.h"
#include "storage/file_system.h"
#include "xml/xml_path.h"

namespace maxson::engine {

using storage::CorcReader;
using storage::FileSystem;
using storage::RecordBatch;
using storage::Schema;
using storage::Split;

namespace {

using storage::SargLeaf;
using storage::SargOp;
using storage::SearchArgument;
using storage::TypeKind;

/// Reconciles a SARG with the column types of the file it will prune:
/// a numeric literal against a numeric column passes through; a string
/// literal against a numeric column is coerced to numeric; a numeric
/// literal against a string column is dropped (string-ordered min/max
/// statistics cannot soundly bound numeric comparisons). Dropping a leaf
/// only loses pruning — the residual filter re-checks every row.
SearchArgument ReconcileSargWithSchema(const SearchArgument& sarg,
                                       const Schema& schema) {
  SearchArgument out;
  for (const SargLeaf& leaf : sarg.leaves()) {
    if (leaf.op == SargOp::kIsNull || leaf.op == SargOp::kIsNotNull) {
      out.AddLeaf(leaf);
      continue;
    }
    const int idx = schema.FindField(leaf.column);
    if (idx < 0) continue;
    const TypeKind type = schema.field(static_cast<size_t>(idx)).type;
    const bool numeric_column = type != TypeKind::kString;
    const bool numeric_literal =
        leaf.literal.is_int64() || leaf.literal.is_double() ||
        leaf.literal.is_bool();
    if (numeric_column == numeric_literal) {
      out.AddLeaf(leaf);
    } else if (numeric_column) {
      SargLeaf coerced = leaf;
      coerced.literal = storage::Value::Double(leaf.literal.AsDouble());
      out.AddLeaf(std::move(coerced));
    }
    // numeric literal vs string column: dropped.
  }
  return out;
}

/// The physical columns one pass decodes: raw columns by name, cache
/// columns by binding. A private scan's spec comes straight from its
/// ScanNode; a shared pass's spec is the decoded *union* of every
/// subscriber's columns.
struct ScanSpec {
  std::vector<std::string> raw_columns;
  std::vector<CacheColumnRequest> cache_columns;
  /// Route selective JSON re-derivation (kOndemandMaxPaths or fewer paths
  /// per source column) through the on-demand parsing tier; copied from
  /// ExecContext::enable_ondemand.
  bool enable_ondemand = false;
};

/// A path set counts as selective — worth tape-cursoring instead of one
/// full DOM parse — up to this many JSONPaths per source column. Beyond it
/// the DOM parse amortizes better across paths (the Fig. 15 crossover;
/// measured in bench/fig15_parsers.cc).
constexpr size_t kOndemandMaxPaths = 4;

ScanSpec SpecFromScan(const ScanNode& scan) {
  ScanSpec spec;
  spec.raw_columns = scan.columns;
  spec.cache_columns = scan.cache_columns;
  return spec;
}

/// One subscriber's (raw SARG, cache SARG) pair. A pass prunes row groups
/// with the *disjunction* of its predicates: a group is read when any
/// subscriber's pair keeps it. Sound because pruning is advisory — every
/// subscriber's residual WHERE filter re-checks the surviving rows — and a
/// non-empty SARG implies the plan carries that residual filter.
using SargPair = std::pair<SearchArgument, SearchArgument>;

/// Stripes [begin, end) of a split; nullopt = every stripe.
struct StripeRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Reads one stripe range of one split, combining raw and cached columns
/// row-by-row. The cache half of the combiner; on cache corruption the
/// caller retries with ScanSplitRawFallback. `out`'s columns are
/// spec.raw_columns followed by spec.cache_columns, in order.
Status ScanSplitCached(const ScanSpec& spec,
                       const std::vector<SargPair>& predicates,
                       const std::string& path, size_t split_index,
                       std::optional<StripeRange> range, RecordBatch* out,
                       QueryMetrics* metrics) {
  CorcReader primary(path);
  MAXSON_RETURN_NOT_OK(primary.Open());

  // Resolve raw column indexes in the file schema.
  std::vector<int> raw_indexes;
  raw_indexes.reserve(spec.raw_columns.size());
  for (const std::string& name : spec.raw_columns) {
    const int idx = primary.schema().FindField(name);
    if (idx < 0) {
      return Status::NotFound("column " + name + " missing in " + path);
    }
    raw_indexes.push_back(idx);
  }

  // Open the synchronized cache reader when cache columns are requested.
  std::unique_ptr<CorcReader> cache;
  std::vector<int> cache_indexes;
  if (!spec.cache_columns.empty()) {
    const std::string cache_path = spec.cache_columns[0].cache_table_dir +
                                   "/" + FileSystem::PartFileName(split_index);
    cache = std::make_unique<CorcReader>(cache_path);
    MAXSON_RETURN_NOT_OK(cache->Open());
    if (cache->num_rows() != primary.num_rows()) {
      return Status::Internal("cache/raw row count mismatch on split " +
                              std::to_string(split_index));
    }
    for (const CacheColumnRequest& req : spec.cache_columns) {
      const int idx = cache->schema().FindField(req.cache_field);
      if (idx < 0) {
        return Status::NotFound("cache field " + req.cache_field +
                                " missing in " + cache_path);
      }
      cache_indexes.push_back(idx);
    }
  }

  // The paper's single-stripe condition for sharing row-group skips: both
  // files must have the same stripe structure and group size.
  const bool aligned =
      cache != nullptr && cache->num_stripes() == primary.num_stripes() &&
      cache->footer().rows_per_group == primary.footer().rows_per_group;

  // Reconcile every subscriber's SARG pair against the file schemas. When
  // the stripe structures diverge, primary pruning is disabled entirely
  // (a skipped group would shift the positional combiner below).
  struct ReconciledPair {
    SearchArgument raw;
    SearchArgument cache;
  };
  std::vector<ReconciledPair> preds;
  preds.reserve(predicates.size());
  for (const SargPair& p : predicates) {
    ReconciledPair rp;
    rp.raw = (cache != nullptr && !aligned)
                 ? SearchArgument()
                 : ReconcileSargWithSchema(p.first, primary.schema());
    rp.cache = cache != nullptr
                   ? ReconcileSargWithSchema(p.second, cache->schema())
                   : SearchArgument();
    preds.push_back(std::move(rp));
  }

  const StripeRange stripes =
      range.value_or(StripeRange{0, primary.num_stripes()});

  // When the two files' stripe structures diverge (the paper's alignment
  // optimization only covers single-stripe files), fall back to positional
  // combining: read the whole cache file once and slice cache rows by
  // absolute offset (the primary row offset of the range's first stripe).
  RecordBatch cache_full;
  size_t cache_row_offset = 0;
  if (cache != nullptr && !aligned) {
    for (size_t cs = 0; cs < cache->num_stripes(); ++cs) {
      MAXSON_ASSIGN_OR_RETURN(
          RecordBatch part,
          cache->ReadStripe(cs, cache_indexes, std::nullopt,
                            metrics != nullptr ? &metrics->read : nullptr));
      if (cs == 0) {
        cache_full = std::move(part);
      } else {
        for (size_t r = 0; r < part.num_rows(); ++r) {
          cache_full.AppendRow(part.GetRow(r));
        }
      }
    }
    for (size_t s = 0; s < stripes.begin; ++s) {
      cache_row_offset +=
          static_cast<size_t>(primary.footer().stripes[s].num_rows);
    }
  }

  for (size_t s = stripes.begin; s < stripes.end; ++s) {
    // Row-group inclusion, per subscriber: the raw SARG's exclusions ANDed
    // with the cache SARG's exclusions when alignment permits (Algorithm
    // 3); the pass then reads the union — a group survives when any
    // subscriber keeps it. raw_union tracks what raw pruning alone would
    // have read, so shared_skips still counts exactly the groups the cache
    // SARGs additionally excluded.
    std::vector<bool> include;
    std::vector<bool> raw_union;
    for (const ReconciledPair& rp : preds) {
      MAXSON_ASSIGN_OR_RETURN(std::vector<bool> inc,
                              primary.ComputeRowGroupInclusion(s, rp.raw));
      if (raw_union.empty()) raw_union.assign(inc.size(), false);
      for (size_t g = 0; g < inc.size(); ++g) {
        if (inc[g]) raw_union[g] = true;
      }
      if (aligned && !rp.cache.empty()) {
        MAXSON_ASSIGN_OR_RETURN(
            std::vector<bool> cache_include,
            cache->ComputeRowGroupInclusion(s, rp.cache));
        if (cache_include.size() == inc.size()) {
          for (size_t g = 0; g < inc.size(); ++g) {
            if (!cache_include[g]) inc[g] = false;
          }
        }
      }
      if (include.empty()) include.assign(inc.size(), false);
      for (size_t g = 0; g < inc.size(); ++g) {
        if (inc[g]) include[g] = true;
      }
    }
    if (metrics != nullptr) {
      for (size_t g = 0; g < include.size(); ++g) {
        if (raw_union[g] && !include[g]) ++metrics->shared_skips;
      }
    }

    MAXSON_ASSIGN_OR_RETURN(
        RecordBatch raw_batch,
        primary.ReadStripe(s, raw_indexes, include,
                           metrics != nullptr ? &metrics->read : nullptr));
    RecordBatch cache_batch;
    if (cache != nullptr) {
      if (aligned) {
        // The CacheReader honors the same inclusion vector, so the two
        // readers stay on identical rows (Algorithm 2's alignment
        // guarantee).
        MAXSON_ASSIGN_OR_RETURN(
            cache_batch,
            cache->ReadStripe(s, cache_indexes, include,
                              metrics != nullptr ? &metrics->read : nullptr));
      } else {
        // Positional fallback: slice the pre-read cache rows matching this
        // stripe's absolute row range.
        storage::Schema cache_schema;
        for (size_t c = 0; c < cache_indexes.size(); ++c) {
          cache_schema.AddField(cache_full.schema().field(c).name,
                                cache_full.schema().field(c).type);
        }
        cache_batch = RecordBatch(cache_schema);
        // Cache-only scans read no raw columns; the stripe's row count
        // comes from the primary footer in that case.
        const size_t stripe_rows =
            raw_indexes.empty()
                ? static_cast<size_t>(primary.footer().stripes[s].num_rows)
                : raw_batch.num_rows();
        for (size_t r = 0; r < stripe_rows; ++r) {
          cache_batch.AppendRow(cache_full.GetRow(cache_row_offset + r));
        }
        cache_row_offset += stripe_rows;
      }
      // Cache-only reading (every requested value is cached, Section
      // IV-B's relevance rationale) leaves the raw batch empty; row counts
      // must agree whenever both readers produced columns.
      if (!raw_indexes.empty() &&
          cache_batch.num_rows() != raw_batch.num_rows()) {
        return Status::Internal("value combiner row misalignment");
      }
      if (metrics != nullptr) {
        metrics->cache_columns_read += cache_indexes.size();
      }
    }

    // Value combiner: place each value at its position in the output schema
    // (Algorithm 2's index-by-name step happened once, at schema build).
    const size_t rows =
        raw_indexes.empty() ? cache_batch.num_rows() : raw_batch.num_rows();
    for (size_t r = 0; r < rows; ++r) {
      std::vector<storage::Value> row;
      row.reserve(raw_indexes.size() + cache_indexes.size());
      for (size_t c = 0; c < raw_indexes.size(); ++c) {
        row.push_back(raw_batch.column(c).GetValue(r));
      }
      for (size_t c = 0; c < cache_indexes.size(); ++c) {
        row.push_back(cache_batch.column(c).GetValue(r));
      }
      out->AppendRow(row);
    }
  }
  return Status::Ok();
}

/// Degraded-mode scan of one stripe range: the cache file is unusable, so
/// every requested cache column is re-derived by parsing the raw string
/// column it was originally extracted from — exactly what the query would
/// have done with caching disabled, so the rows are byte-identical either
/// way. Only possible when the spec carries the source column/path of every
/// cache column (MaxsonParser always fills them).
Status ScanSplitRawFallback(const ScanSpec& spec,
                            const std::vector<SargPair>& predicates,
                            const std::string& path,
                            std::optional<StripeRange> range,
                            RecordBatch* out, QueryMetrics* metrics) {
  CorcReader primary(path);
  MAXSON_RETURN_NOT_OK(primary.Open());

  std::vector<int> raw_indexes;
  raw_indexes.reserve(spec.raw_columns.size());
  for (const std::string& name : spec.raw_columns) {
    const int idx = primary.schema().FindField(name);
    if (idx < 0) {
      return Status::NotFound("column " + name + " missing in " + path);
    }
    raw_indexes.push_back(idx);
  }

  // Resolve each cache column's source column and parse its path.
  struct SourceWork {
    int column = -1;  // index in the primary file schema
    bool is_xml = false;
    json::JsonPath json_path;
    xml::XmlPath xml_path;
  };
  std::vector<SourceWork> sources;
  sources.reserve(spec.cache_columns.size());
  for (const CacheColumnRequest& req : spec.cache_columns) {
    SourceWork src;
    src.column = primary.schema().FindField(req.source_column);
    if (src.column < 0) {
      return Status::NotFound("fallback source column " + req.source_column +
                              " missing in " + path);
    }
    src.is_xml = xml::IsXmlPathText(req.source_path);
    if (src.is_xml) {
      MAXSON_ASSIGN_OR_RETURN(src.xml_path,
                              xml::XmlPath::Parse(req.source_path));
    } else {
      MAXSON_ASSIGN_OR_RETURN(src.json_path,
                              json::JsonPath::Parse(req.source_path));
    }
    sources.push_back(std::move(src));
  }

  // Read raw + source columns together (deduplicated). Pruning uses the
  // raw SARGs only (their disjunction across subscribers): the cache SARGs
  // name cache fields, and the residual filters re-check every surviving
  // row anyway.
  std::vector<int> read_columns = raw_indexes;
  std::map<int, size_t> slot_of;  // file column index -> batch slot
  for (size_t c = 0; c < read_columns.size(); ++c) {
    slot_of.emplace(read_columns[c], c);
  }
  for (const SourceWork& src : sources) {
    if (slot_of.emplace(src.column, read_columns.size()).second) {
      read_columns.push_back(src.column);
    }
  }
  std::vector<SearchArgument> raw_sargs;
  raw_sargs.reserve(predicates.size());
  for (const SargPair& p : predicates) {
    raw_sargs.push_back(ReconcileSargWithSchema(p.first, primary.schema()));
  }

  // Group the JSON-path sources by source column: a selective group
  // (1..kOndemandMaxPaths paths) re-derives through the on-demand tier
  // with one tape pass per record instead of one DOM parse per path.
  // Oversized groups, and XML sources, stay on the DOM tier.
  struct OndemandGroup {
    size_t slot = 0;                 // batch slot of the source column
    std::vector<size_t> source_idx;  // indexes into `sources`
    std::vector<json::JsonPath> paths;
  };
  std::vector<OndemandGroup> ondemand_groups;
  if (spec.enable_ondemand) {
    std::map<int, size_t> group_of;  // file column index -> group index
    for (size_t i = 0; i < sources.size(); ++i) {
      if (sources[i].is_xml) continue;
      auto [it, inserted] =
          group_of.emplace(sources[i].column, ondemand_groups.size());
      if (inserted) {
        OndemandGroup g;
        g.slot = slot_of.at(sources[i].column);
        ondemand_groups.push_back(std::move(g));
      }
      ondemand_groups[it->second].source_idx.push_back(i);
      ondemand_groups[it->second].paths.push_back(sources[i].json_path);
    }
    std::erase_if(ondemand_groups, [](const OndemandGroup& g) {
      return g.paths.size() > kOndemandMaxPaths;
    });
  }
  json::OndemandParser ondemand;

  const StripeRange stripes =
      range.value_or(StripeRange{0, primary.num_stripes()});
  for (size_t s = stripes.begin; s < stripes.end; ++s) {
    std::vector<bool> include;
    for (const SearchArgument& raw_sarg : raw_sargs) {
      MAXSON_ASSIGN_OR_RETURN(std::vector<bool> inc,
                              primary.ComputeRowGroupInclusion(s, raw_sarg));
      if (include.empty()) include.assign(inc.size(), false);
      for (size_t g = 0; g < inc.size(); ++g) {
        if (inc[g]) include[g] = true;
      }
    }
    MAXSON_ASSIGN_OR_RETURN(
        RecordBatch batch,
        primary.ReadStripe(s, read_columns, include,
                           metrics != nullptr ? &metrics->read : nullptr));
    Stopwatch parse_timer;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<storage::Value> row;
      row.reserve(raw_indexes.size() + sources.size());
      for (size_t c = 0; c < raw_indexes.size(); ++c) {
        row.push_back(batch.column(c).GetValue(r));
      }
      // On-demand precomputation: one tape pass per record per selective
      // group. Any record-level error falls back to the DOM tier below
      // (slots stay unset); per-slot errors likewise fall back per slot,
      // so the combined rows are byte-identical with the tier off.
      std::vector<std::optional<storage::Value>> precomputed(sources.size());
      for (const OndemandGroup& g : ondemand_groups) {
        if (batch.column(g.slot).IsNull(r)) continue;
        const std::string& text = batch.column(g.slot).GetString(r);
        std::vector<Result<std::string>> values;
        const uint64_t skipped_before = ondemand.skipped_bytes();
        const Status extract_status = ondemand.ExtractAll(text, g.paths,
                                                          &values);
        if (!extract_status.ok()) {
          if (metrics != nullptr) ++metrics->ondemand_fallbacks;
          continue;
        }
        if (metrics != nullptr) {
          ++metrics->ondemand_records;
          metrics->ondemand_skipped_bytes +=
              ondemand.skipped_bytes() - skipped_before;
          ++metrics->parse.records_parsed;
          metrics->parse.bytes_parsed += text.size();
        }
        for (size_t k = 0; k < g.source_idx.size(); ++k) {
          const Result<std::string>& v = values[k];
          if (v.ok()) {
            precomputed[g.source_idx[k]] = storage::Value::String(*v);
          } else if (v.status().code() == StatusCode::kNotFound) {
            // Absent path -> NULL, matching get_json_object below.
            precomputed[g.source_idx[k]] = storage::Value::Null();
          } else if (metrics != nullptr) {
            ++metrics->ondemand_fallbacks;
          }
        }
      }
      for (size_t i = 0; i < sources.size(); ++i) {
        const SourceWork& src = sources[i];
        if (precomputed[i].has_value()) {
          row.push_back(std::move(*precomputed[i]));
          continue;
        }
        const size_t slot = slot_of.at(src.column);
        if (batch.column(slot).IsNull(r)) {
          row.push_back(storage::Value::Null());
          continue;
        }
        const std::string& text = batch.column(slot).GetString(r);
        Result<std::string> value =
            src.is_xml ? xml::GetXmlObject(text, src.xml_path)
                       : json::GetJsonObject(text, src.json_path);
        if (metrics != nullptr) {
          ++metrics->parse.records_parsed;
          metrics->parse.bytes_parsed += text.size();
        }
        // Absent path -> NULL, matching get_json_object and the cacher.
        row.push_back(value.ok() ? storage::Value::String(std::move(*value))
                                 : storage::Value::Null());
      }
      out->AppendRow(row);
    }
    if (metrics != nullptr) {
      metrics->parse_seconds += parse_timer.ElapsedSeconds();
    }
  }
  return Status::Ok();
}

/// One pass over one stripe range: the cached path first; on cache-side
/// corruption, quarantine the cache file and degrade to raw parsing so the
/// query still returns correct rows. Corruption of the *raw* file is not
/// recoverable — the fallback reads the same file and surfaces the same
/// error.
Status ScanSplit(const ScanSpec& spec,
                 const std::vector<SargPair>& predicates,
                 const std::string& path, size_t split_index,
                 std::optional<StripeRange> range, RecordBatch* out,
                 QueryMetrics* metrics) {
  Status status =
      ScanSplitCached(spec, predicates, path, split_index, range, out,
                      metrics);
  if (!status.IsCorruption() || spec.cache_columns.empty()) return status;
  for (const CacheColumnRequest& req : spec.cache_columns) {
    if (req.source_column.empty() || req.source_path.empty()) return status;
  }
  MAXSON_LOG(Warning) << "cache corruption on split " << split_index << " ("
                      << status.message() << "); re-deriving from raw";
  // Restart the pass from scratch: drop partially combined rows and the
  // failed attempt's accounting so totals stay deterministic.
  *out = RecordBatch(out->schema());
  if (metrics != nullptr) {
    *metrics = QueryMetrics();
    ++metrics->cache_corruption_fallbacks;
  }
  return ScanSplitRawFallback(spec, predicates, path, range, out, metrics);
}

// ---------------------------------------------------------------------------
// Shared-scan path: column keys, morsel construction, subscription.
// ---------------------------------------------------------------------------

/// Opaque column keys the scheduler unions and compares. Raw columns key by
/// physical name (so two plans spelling "o.price" and "price" share one
/// decode); cache columns key by their full binding including the fallback
/// source, so a pass can re-derive any subscriber's cache column on
/// corruption. Output names are per-subscriber and deliberately excluded.
constexpr char kKeySep = '\x1f';

std::string RawColumnKey(const std::string& name) {
  std::string key = "r";
  key.push_back(kKeySep);
  key.append(name);
  return key;
}

std::string CacheColumnKey(const CacheColumnRequest& req) {
  std::string key = "c";
  key.push_back(kKeySep);
  key.append(req.cache_table_dir);
  key.push_back(kKeySep);
  key.append(req.cache_field);
  key.push_back(kKeySep);
  key.append(req.source_column);
  key.push_back(kKeySep);
  key.append(req.source_path);
  return key;
}

Result<ScanSpec> SpecFromUnionKeys(const std::vector<std::string>& keys) {
  ScanSpec spec;
  for (const std::string& key : keys) {
    std::vector<std::string> parts;
    size_t start = 0;
    for (size_t i = 0; i <= key.size(); ++i) {
      if (i == key.size() || key[i] == kKeySep) {
        parts.push_back(key.substr(start, i - start));
        start = i + 1;
      }
    }
    if (parts.size() == 2 && parts[0] == "r") {
      spec.raw_columns.push_back(parts[1]);
    } else if (parts.size() == 5 && parts[0] == "c") {
      CacheColumnRequest req;
      req.cache_table_dir = parts[1];
      req.cache_field = parts[2];
      req.output_name = parts[2];  // internal to the pass; renamed on fanout
      req.source_column = parts[3];
      req.source_path = parts[4];
      spec.cache_columns.push_back(std::move(req));
    } else {
      return Status::Internal("malformed shared-scan column key");
    }
  }
  return spec;
}

/// Schema of a shared pass's union batch: one column per union key, *named
/// by the key* (keys are unique; subscribers map their columns by name), in
/// the pass's layout order — raw columns then cache columns, matching what
/// ScanSplitCached/RawFallback append. Types mirror ScanOutputSchema (raw
/// columns by the table schema, cache columns as strings) so per-subscriber
/// projection moves values without conversion.
Schema UnionSchema(const ScanSpec& spec, const Schema& table_schema) {
  Schema out;
  for (const std::string& name : spec.raw_columns) {
    const int idx = table_schema.FindField(name);
    out.AddField(RawColumnKey(name),
                 idx >= 0 ? table_schema.field(static_cast<size_t>(idx)).type
                          : TypeKind::kString);
  }
  for (const CacheColumnRequest& req : spec.cache_columns) {
    out.AddField(CacheColumnKey(req), TypeKind::kString);
  }
  return out;
}

/// Chops the table's splits into morsels: stripe ranges of at least
/// `morsel_rows` rows (0 = one morsel per split). Only the primary files'
/// footers are consulted — cache-side problems must surface inside the
/// pass, where the corruption fallback can handle them.
Result<std::vector<exec::Morsel>> BuildMorsels(
    const std::vector<Split>& splits, size_t morsel_rows) {
  std::vector<exec::Morsel> morsels;
  for (const Split& split : splits) {
    CorcReader reader(split.path);
    MAXSON_RETURN_NOT_OK(reader.Open());
    const size_t num_stripes = reader.num_stripes();
    uint64_t row_offset = 0;
    size_t begin = 0;
    uint64_t rows_in_morsel = 0;
    uint64_t begin_row = 0;
    for (size_t s = 0; s < num_stripes; ++s) {
      rows_in_morsel +=
          static_cast<uint64_t>(reader.footer().stripes[s].num_rows);
      row_offset += static_cast<uint64_t>(reader.footer().stripes[s].num_rows);
      const bool last = s + 1 == num_stripes;
      if (!last && (morsel_rows == 0 || rows_in_morsel < morsel_rows)) {
        continue;
      }
      exec::Morsel m;
      m.split_index = split.index;
      m.split_path = split.path;
      m.begin_stripe = begin;
      m.end_stripe = s + 1;
      m.begin_row = begin_row;
      m.end_row = row_offset;
      morsels.push_back(std::move(m));
      begin = s + 1;
      begin_row = row_offset;
      rows_in_morsel = 0;
    }
    if (num_stripes == 0) {
      // Keep one (empty) morsel so every split is represented and morsel
      // counts stay stable across sharing modes.
      exec::Morsel m;
      m.split_index = split.index;
      m.split_path = split.path;
      morsels.push_back(std::move(m));
    }
  }
  return morsels;
}

/// Scan through the SharedScanManager: subscribe interest, run/ride the
/// coalesced passes, then project each union batch down to this scan's
/// columns in morsel order — byte-identical rows to the private path.
Result<RecordBatch> ExecuteSharedScan(const ScanNode& scan,
                                      QueryMetrics* metrics,
                                      exec::SharedScanManager& manager,
                                      const ExecContext& ctx) {
  Stopwatch timer;
  const Schema out_schema = ScanOutputSchema(scan);

  MAXSON_ASSIGN_OR_RETURN(std::vector<Split> splits,
                          FileSystem::ListSplits(scan.table_dir));
  if (splits.empty()) {
    return Status::NotFound("no part files under " + scan.table_dir);
  }

  exec::ScanInterest interest;
  interest.table_key = scan.table_dir;
  interest.validity = ctx.scan_validity;
  for (const std::string& name : scan.columns) {
    interest.columns.push_back(RawColumnKey(name));
  }
  for (const CacheColumnRequest& req : scan.cache_columns) {
    interest.columns.push_back(CacheColumnKey(req));
  }
  interest.predicate.raw_sarg = scan.raw_sarg;
  interest.predicate.cache_sarg = scan.cache_sarg;
  interest.predicate.key =
      exec::ScanPredicate::KeyFor(scan.raw_sarg, scan.cache_sarg);
  MAXSON_ASSIGN_OR_RETURN(interest.morsels,
                          BuildMorsels(splits, ctx.morsel_rows));

  // Per-morsel accumulators for passes this query executes itself; merged
  // below in morsel order. Passes another query executed land in *its*
  // accumulators — per-query metrics under sharing reflect who did the
  // work, while the deterministic result rows are identical regardless.
  std::vector<QueryMetrics> morsel_metrics(interest.morsels.size());
  std::vector<double> morsel_seconds(interest.morsels.size(), 0.0);
  const auto pass_fn =
      [&](const exec::Morsel& morsel, size_t ordinal,
          const std::vector<std::string>& union_columns,
          const std::vector<exec::ScanPredicate>& predicates)
      -> Result<exec::SharedPassOutput> {
    Stopwatch pass_timer;
    MAXSON_ASSIGN_OR_RETURN(ScanSpec spec, SpecFromUnionKeys(union_columns));
    spec.enable_ondemand = ctx.enable_ondemand;
    std::vector<SargPair> pairs;
    pairs.reserve(predicates.size());
    for (const exec::ScanPredicate& p : predicates) {
      pairs.emplace_back(p.raw_sarg, p.cache_sarg);
    }
    RecordBatch batch(UnionSchema(spec, scan.table_schema));
    QueryMetrics* slot = &morsel_metrics[ordinal];
    MAXSON_RETURN_NOT_OK(ScanSplit(
        spec, pairs, morsel.split_path, morsel.split_index,
        StripeRange{morsel.begin_stripe, morsel.end_stripe}, &batch, slot));
    morsel_seconds[ordinal] = pass_timer.ElapsedSeconds();
    exec::SharedPassOutput output;
    output.batch = std::move(batch);
    output.input_bytes =
        slot->read.bytes_read + slot->parse.bytes_parsed;
    return output;
  };

  std::unique_ptr<exec::ScanSubscription> sub =
      manager.Subscribe(interest, pass_fn);
  MAXSON_RETURN_NOT_OK(sub->Collect(ctx.pool, ctx.cancel));

  RecordBatch out(out_schema);
  for (size_t i = 0; i < sub->num_morsels(); ++i) {
    const RecordBatch& batch = sub->batch(i);
    const std::vector<size_t> mapping = sub->ColumnMapping(i);
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<storage::Value> row;
      row.reserve(mapping.size());
      for (const size_t c : mapping) {
        row.push_back(batch.column(c).GetValue(r));
      }
      out.AppendRow(row);
    }
    if (metrics != nullptr && sub->executed_by_self(i)) {
      metrics->Accumulate(morsel_metrics[i]);
    }
    sub->Release(i);
  }

  if (metrics != nullptr) {
    metrics->read_seconds += timer.ElapsedSeconds();
    OperatorStats op;
    op.name = "Scan";
    op.detail = scan.table_dir + " (shared)";
    op.rows_out = out.num_rows();
    op.units = interest.morsels.size();
    op.cache_columns = scan.cache_columns.size();
    op.wall_seconds = timer.ElapsedSeconds();
    for (double s : morsel_seconds) op.cpu_seconds += s;
    metrics->operators.push_back(std::move(op));
  }
  return out;
}

}  // namespace

Result<RecordBatch> ExecuteScan(const ScanNode& scan, QueryMetrics* metrics,
                                const ExecContext& ctx) {
  if (ctx.shared_scan != nullptr) {
    return ExecuteSharedScan(scan, metrics, *ctx.shared_scan, ctx);
  }

  Stopwatch timer;
  const Schema out_schema = ScanOutputSchema(scan);
  RecordBatch out(out_schema);

  MAXSON_ASSIGN_OR_RETURN(std::vector<Split> splits,
                          FileSystem::ListSplits(scan.table_dir));
  if (splits.empty()) {
    return Status::NotFound("no part files under " + scan.table_dir);
  }
  ScanSpec spec = SpecFromScan(scan);
  spec.enable_ondemand = ctx.enable_ondemand;
  const std::vector<SargPair> predicates = {
      SargPair{scan.raw_sarg, scan.cache_sarg}};
  // One task per split, each running the full value-combiner pipeline into
  // a private buffer with a private metrics accumulator; the merge below
  // happens in split order, so row order and counter totals match
  // sequential execution exactly.
  std::vector<RecordBatch> buffers(splits.size());
  std::vector<QueryMetrics> split_metrics(splits.size());
  std::vector<double> split_seconds(splits.size(), 0.0);
  MAXSON_RETURN_NOT_OK(exec::ParallelFor(
      ctx.pool, splits.size(), [&](size_t i) -> Status {
        if (ctx.cancelled()) return Status::Cancelled("query cancelled");
        Stopwatch split_timer;
        buffers[i] = RecordBatch(out_schema);
        Status status =
            ScanSplit(spec, predicates, splits[i].path, splits[i].index,
                      std::nullopt, &buffers[i],
                      metrics != nullptr ? &split_metrics[i] : nullptr);
        split_seconds[i] = split_timer.ElapsedSeconds();
        return status;
      }));
  for (size_t i = 0; i < buffers.size(); ++i) {
    if (metrics != nullptr) metrics->Accumulate(split_metrics[i]);
    out.AppendBatch(std::move(buffers[i]));
  }
  if (metrics != nullptr) {
    metrics->read_seconds += timer.ElapsedSeconds();
    OperatorStats op;
    op.name = "Scan";
    op.detail = scan.table_dir;
    op.rows_out = out.num_rows();
    op.units = splits.size();
    op.cache_columns = scan.cache_columns.size();
    op.wall_seconds = timer.ElapsedSeconds();
    for (double s : split_seconds) op.cpu_seconds += s;
    metrics->operators.push_back(std::move(op));
  }
  return out;
}

}  // namespace maxson::engine
