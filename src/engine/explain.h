#ifndef MAXSON_ENGINE_EXPLAIN_H_
#define MAXSON_ENGINE_EXPLAIN_H_

#include <string>
#include <vector>

#include "engine/plan.h"

namespace maxson::engine {

/// Renders a physical plan as an indented operator tree (the output of the
/// EXPLAIN statement), top operator first:
///
///   Limit (3)
///   +- Sort (f1 DESC)
///      +- Project (f1)
///         +- Filter (f1 > 'cat8')
///            +- Scan sales (columns: payload; cache: payload___f1)
///
/// When `metrics` is non-null (EXPLAIN ANALYZE), each node is annotated
/// with the matching OperatorStats — rows in/out, split/chunk counts, wall
/// and summed-CPU time — and footer lines report the query's cache, parse,
/// and read counters. Static structure and row counts are deterministic at
/// every thread count; the time annotations are measured.
std::vector<std::string> RenderPlanTree(const PhysicalPlan& plan,
                                        const QueryMetrics* metrics);

/// Last path component of a table directory — the stable display name of a
/// scan target ("/tmp/x/warehouse/mydb/sales" -> "sales").
std::string TableDisplayName(const std::string& table_dir);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_EXPLAIN_H_
