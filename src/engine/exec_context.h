#ifndef MAXSON_ENGINE_EXEC_CONTEXT_H_
#define MAXSON_ENGINE_EXEC_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace maxson::exec {
class SharedScanManager;
class ThreadPool;
}  // namespace maxson::exec

namespace maxson::engine {

/// Everything one plan execution needs besides the plan itself, gathered
/// into a single struct threaded from ExecutePlan through the scan into the
/// operators. Replaces the parameter list that grew one entry per PR
/// (plan_seconds, then the pool, then validity snapshots): new per-query
/// execution state lands here once instead of rippling through every
/// signature on the path.
///
/// Plain pointers are non-owning and may be null; a default-constructed
/// context executes sequentially, unshared, and uncancellable — the
/// simplest correct configuration.
struct ExecContext {
  /// Planning time carried into the result's metrics.
  double plan_seconds = 0;
  /// Pool fanning splits/morsels and row chunks; null runs inline.
  exec::ThreadPool* pool = nullptr;
  /// When set, scans subscribe to shared parse passes instead of parsing
  /// privately (the engine passes its manager only when the sharedscan
  /// knob is on, so a null here means the per-query path).
  exec::SharedScanManager* shared_scan = nullptr;
  /// Cache-state stamp (CacheRegistry version) keying shared-scan groups:
  /// queries planned across an invalidation never share passes.
  uint64_t scan_validity = 0;
  /// Target rows per morsel for shared scans; 0 = one morsel per split
  /// (the paper's one-file-one-split granularity).
  size_t morsel_rows = 0;
  /// Route uncached JSON extraction (selective path sets only) through the
  /// on-demand parsing tier; set from EngineConfig::enable_ondemand.
  bool enable_ondemand = false;
  /// Cooperative cancellation: checked between splits/morsels and between
  /// operators, never mid-pass. Null = uncancellable.
  const std::atomic<bool>* cancel = nullptr;

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_EXEC_CONTEXT_H_
