#ifndef MAXSON_ENGINE_PLAN_H_
#define MAXSON_ENGINE_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/expr.h"
#include "json/dom_parser.h"
#include "storage/corc_reader.h"
#include "storage/record_batch.h"
#include "storage/sarg.h"
#include "storage/schema.h"

namespace maxson::engine {

/// Request for one cached JSONPath column to be stitched into a scan's
/// output by the value combiner: read `cache_field` from the cache table at
/// `cache_table_dir` (file-per-split aligned with the raw table) and expose
/// it as `output_name` (kString, get_json_object rendering; NULL when the
/// path was absent).
struct CacheColumnRequest {
  std::string cache_table_dir;
  std::string cache_field;
  std::string output_name;
  /// Where the cached value originally came from: the raw table's string
  /// column and the JSONPath/XPath that was pre-parsed out of it. Filled by
  /// MaxsonParser from the cache registry entry; when non-empty they let a
  /// scan that finds the cache file corrupt re-derive this column from the
  /// raw split instead of failing the query. Hand-built plans may leave
  /// them empty — then corruption is surfaced as an error.
  std::string source_column;
  std::string source_path;
};

/// Leaf of a physical plan: one table scan, optionally combined with cache
/// columns, with SARGs pushed down to the raw table and — after Maxson's
/// rewrite — to the cache table (Algorithm 3).
struct ScanNode {
  std::string table_dir;
  storage::Schema table_schema;
  /// Qualifier used to prefix output columns in a join ("a" in "T a"); empty
  /// for single-table queries.
  std::string qualifier;
  /// Names of raw table columns to read (unqualified).
  std::vector<std::string> columns;
  /// Cached JSONPath columns to stitch in (populated by MaxsonParser).
  std::vector<CacheColumnRequest> cache_columns;
  /// Pushdown on raw columns.
  storage::SearchArgument raw_sarg;
  /// Pushdown on cache fields; SargLeaf::column names a cache_field.
  storage::SearchArgument cache_sarg;

  /// Output column name for raw column `name` ("a.mall_id" when qualified).
  std::string OutputName(const std::string& name) const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Fully bound physical plan of one SELECT.
struct PhysicalPlan {
  ScanNode scan;
  /// Plan-rewrite cache accounting, filled by the PlanRewriter (MaxsonParser)
  /// during planning: get_json_object sites replaced by cache columns (hits),
  /// sites with no cache entry (misses), and sites whose entry was stale so
  /// the query fell back to raw parsing (fallbacks). Deterministic — rewrite
  /// runs single-threaded at plan time.
  uint64_t rewrite_cache_hits = 0;
  uint64_t rewrite_cache_misses = 0;
  uint64_t rewrite_cache_fallbacks = 0;
  std::optional<ScanNode> join_scan;
  /// Equi-join key expressions, pairwise (left[i] == right[i]); bound
  /// against the respective scan outputs.
  std::vector<ExprPtr> join_keys_left;
  std::vector<ExprPtr> join_keys_right;

  /// Residual filter over the (joined) scan output. SARGs are advisory row
  /// group exclusions; this filter re-checks every surviving row.
  ExprPtr where;

  bool distinct = false;
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;
  std::vector<ExprPtr> group_by;
  /// Post-aggregation filter; may contain aggregate nodes.
  ExprPtr having;
  bool has_aggregates = false;
  std::vector<std::pair<ExprPtr, bool>> order_by;  // expr, descending
  int64_t limit = -1;
};

/// Runtime accounting of one physical operator, in pipeline execution
/// order (scan(s) first, limit last); EXPLAIN ANALYZE renders these onto
/// the plan tree. Counts (rows, units) are deterministic at every thread
/// count; the time fields are measured and therefore are not.
struct OperatorStats {
  std::string name;    // "Scan", "HashJoin", "Filter", "Aggregate", ...
  std::string detail;  // table name, predicate text, sort keys, ...
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Work units fanned across the pool: splits for scans, row chunks for
  /// the row-oriented operators.
  uint64_t units = 0;
  /// Cache columns stitched into a scan's output (nonzero = Maxson hit).
  uint64_t cache_columns = 0;
  /// Operator wall time on the coordinating thread.
  double wall_seconds = 0;
  /// Summed per-worker task time; exceeds wall_seconds under parallelism.
  double cpu_seconds = 0;
};

/// Time and volume accounting of one query execution, split the way the
/// paper's Fig. 3 / Fig. 12 break down runtime: Read (I/O + decode), Parse
/// (JSON work inside get_json_object), Compute (everything else).
struct QueryMetrics {
  double plan_seconds = 0;
  double read_seconds = 0;
  double parse_seconds = 0;
  double compute_seconds = 0;
  storage::ReadStats read;
  json::ParseStats parse;
  /// Row groups whose skipping was shared from the cache reader to the
  /// primary reader (Algorithm 3 at work).
  uint64_t shared_skips = 0;
  uint64_t cache_columns_read = 0;
  /// Rows rejected by the Sparser-style raw-byte prefilter before parsing.
  uint64_t raw_filtered_rows = 0;
  /// Splits whose cache file failed validation (checksum, magic, structure)
  /// and were re-derived from the raw file instead. Deterministic: which
  /// splits are corrupt is a property of the files, not of scheduling.
  uint64_t cache_corruption_fallbacks = 0;
  /// On-demand parsing tier (json/ondemand_parser.h): records resolved by
  /// tape cursoring, bytes the cursor skipped without token-parsing, and
  /// records that fell back to the DOM parser on an on-demand error.
  /// Deterministic: which records take which tier is a property of the
  /// bytes and the requested paths, not of scheduling.
  uint64_t ondemand_records = 0;
  uint64_t ondemand_skipped_bytes = 0;
  uint64_t ondemand_fallbacks = 0;
  /// Plan-rewrite cache accounting, copied from the PhysicalPlan when the
  /// plan executes (see PhysicalPlan::rewrite_cache_*).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_fallbacks = 0;
  /// Per-operator runtime breakdown in pipeline order (filled by the
  /// executing engine; empty for the per-chunk partial accumulators).
  std::vector<OperatorStats> operators;

  double TotalSeconds() const {
    return read_seconds + parse_seconds + compute_seconds;
  }

  /// Folds another accumulator into this one; parallel operators give every
  /// split/chunk its own QueryMetrics and merge them in split order after
  /// the barrier, so counter totals are deterministic. Note that under
  /// parallel execution the *_seconds fields are summed CPU time across
  /// workers and can exceed the query's wall time.
  void Accumulate(const QueryMetrics& other) {
    plan_seconds += other.plan_seconds;
    read_seconds += other.read_seconds;
    parse_seconds += other.parse_seconds;
    compute_seconds += other.compute_seconds;
    read.Add(other.read);
    parse.Add(other.parse);
    shared_skips += other.shared_skips;
    cache_columns_read += other.cache_columns_read;
    raw_filtered_rows += other.raw_filtered_rows;
    cache_corruption_fallbacks += other.cache_corruption_fallbacks;
    ondemand_records += other.ondemand_records;
    ondemand_skipped_bytes += other.ondemand_skipped_bytes;
    ondemand_fallbacks += other.ondemand_fallbacks;
    plan_cache_hits += other.plan_cache_hits;
    plan_cache_misses += other.plan_cache_misses;
    plan_cache_fallbacks += other.plan_cache_fallbacks;
    for (const OperatorStats& op : other.operators) operators.push_back(op);
  }
};

/// Result rows plus execution metrics.
struct QueryResult {
  storage::RecordBatch batch;
  QueryMetrics metrics;
};

/// Hook invoked between logical planning and binding; Maxson's plan
/// modifier (Algorithm 1) implements this to replace get_json_object calls
/// with placeholders resolved from cache tables.
class PlanRewriter {
 public:
  virtual ~PlanRewriter() = default;

  /// Rewrites `plan` in place. Returns the number of placeholder
  /// substitutions performed (0 = plan unchanged).
  virtual Result<int> Rewrite(PhysicalPlan* plan) = 0;
};

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_PLAN_H_
