#ifndef MAXSON_ENGINE_PLANNER_H_
#define MAXSON_ENGINE_PLANNER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/plan.h"
#include "engine/sql_ast.h"

namespace maxson::engine {

/// Lowers a parsed SELECT into a physical plan:
///   1. resolves tables against the catalog and collects required columns,
///   2. invokes the optional PlanRewriter (Maxson's Algorithm 1),
///   3. extracts SARGs from conjunctive WHERE comparisons,
///   4. binds every column reference to an index in the executor's input
///      schema (scan output, or joined schema when a join is present).
class Planner {
 public:
  Planner(const catalog::Catalog* catalog, std::string default_database)
      : catalog_(catalog), default_database_(std::move(default_database)) {}

  /// `rewriter` may be null (plain Spark-like planning).
  Result<PhysicalPlan> Plan(const SelectStatement& stmt,
                            PlanRewriter* rewriter) const;

 private:
  Result<ScanNode> BuildScan(const TableRef& ref, bool qualify) const;

  const catalog::Catalog* catalog_;
  std::string default_database_;
};

/// Schema of a scan node's output batch: requested raw columns (with their
/// table types, qualified when the scan has a qualifier) followed by cache
/// columns (kString). Shared by the planner's binder and the executor.
storage::Schema ScanOutputSchema(const ScanNode& scan);

/// Resolves column reference `name` against `schema`: exact match first,
/// then unique suffix match on ".name" (so "mall_id" finds "a.mall_id").
/// Returns -1 when unresolved or ambiguous.
int ResolveColumn(const storage::Schema& schema, const std::string& name);

/// Binds all column refs in `expr` to `schema` indexes. Fails on unknown or
/// ambiguous names.
Status BindExpr(Expr* expr, const storage::Schema& schema);

/// Extracts SARG-able conjuncts (`column cmp literal` over plain column
/// refs) from `where` into the scan's raw or cache SARG. Non-extractable
/// conjuncts are simply left to the residual filter; extraction never
/// removes anything from `where`.
void ExtractSargs(const Expr* where, ScanNode* scan);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_PLANNER_H_
