#ifndef MAXSON_ENGINE_SQL_LEXER_H_
#define MAXSON_ENGINE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace maxson::engine {

enum class TokenKind {
  kIdentifier,  // names and keywords (keywords recognized case-insensitively)
  kInteger,
  kFloat,
  kString,     // '...' literal, quotes stripped, '' unescaped
  kOperator,   // punctuation: = != < <= > >= ( ) , . * + - / %
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier name / literal text / operator spelling
  size_t offset = 0;

  bool Is(TokenKind k) const { return kind == k; }
  /// Case-insensitive keyword test; only meaningful for identifiers.
  bool IsKeyword(std::string_view keyword) const;
};

/// Tokenizes a SQL string. Comments ("-- ...") are skipped.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace maxson::engine

#endif  // MAXSON_ENGINE_SQL_LEXER_H_
