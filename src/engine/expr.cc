#include "engine/expr.h"

#include <cmath>

namespace maxson::engine {

using storage::Value;

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Aggregate(AggKind agg, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg = agg;
  if (arg != nullptr) e->children.push_back(std::move(arg));
  return e;
}

ExprPtr Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->column_index = column_index;
  e->bin_op = bin_op;
  e->un_op = un_op;
  e->func_name = func_name;
  e->agg = agg;
  e->children.reserve(children.size());
  for (const ExprPtr& child : children) e->children.push_back(child->Clone());
  return e;
}

namespace {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggName(AggKind agg) {
  switch (agg) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.is_string() ? "'" + literal.ToString() + "'"
                                 : literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(bin_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      switch (un_op) {
        case UnaryOp::kNot:
          return "(NOT " + children[0]->ToString() + ")";
        case UnaryOp::kNeg:
          return "(-" + children[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + children[0]->ToString() + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + children[0]->ToString() + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kFunction: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kAggregate:
      return std::string(AggName(agg)) + "(" +
             (children.empty() ? "*" : children[0]->ToString()) + ")";
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const ExprPtr& child : children) {
    if (child->ContainsAggregate()) return true;
  }
  return false;
}

bool IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_bool()) return v.bool_value();
  if (v.is_int64()) return v.int64_value() != 0;
  if (v.is_double()) return v.double_value() != 0.0;
  return !v.string_value().empty();
}

namespace {

Result<Value> EvaluateBinary(const Expr& expr, const EvalContext& ctx) {
  // AND/OR: short-circuit with NULL-as-false semantics at this boundary.
  if (expr.bin_op == BinaryOp::kAnd) {
    MAXSON_ASSIGN_OR_RETURN(Value lhs, EvaluateExpr(*expr.children[0], ctx));
    if (!IsTruthy(lhs)) return Value::Bool(false);
    MAXSON_ASSIGN_OR_RETURN(Value rhs, EvaluateExpr(*expr.children[1], ctx));
    return Value::Bool(IsTruthy(rhs));
  }
  if (expr.bin_op == BinaryOp::kOr) {
    MAXSON_ASSIGN_OR_RETURN(Value lhs, EvaluateExpr(*expr.children[0], ctx));
    if (IsTruthy(lhs)) return Value::Bool(true);
    MAXSON_ASSIGN_OR_RETURN(Value rhs, EvaluateExpr(*expr.children[1], ctx));
    return Value::Bool(IsTruthy(rhs));
  }

  MAXSON_ASSIGN_OR_RETURN(Value lhs, EvaluateExpr(*expr.children[0], ctx));
  MAXSON_ASSIGN_OR_RETURN(Value rhs, EvaluateExpr(*expr.children[1], ctx));

  switch (expr.bin_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      const int cmp = lhs.Compare(rhs);
      switch (expr.bin_op) {
        case BinaryOp::kEq:
          return Value::Bool(cmp == 0);
        case BinaryOp::kNe:
          return Value::Bool(cmp != 0);
        case BinaryOp::kLt:
          return Value::Bool(cmp < 0);
        case BinaryOp::kLe:
          return Value::Bool(cmp <= 0);
        case BinaryOp::kGt:
          return Value::Bool(cmp > 0);
        default:
          return Value::Bool(cmp >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      // Integer arithmetic stays integral except division.
      if (lhs.is_int64() && rhs.is_int64() && expr.bin_op != BinaryOp::kDiv) {
        const int64_t a = lhs.int64_value();
        const int64_t b = rhs.int64_value();
        switch (expr.bin_op) {
          case BinaryOp::kAdd:
            return Value::Int64(a + b);
          case BinaryOp::kSub:
            return Value::Int64(a - b);
          case BinaryOp::kMul:
            return Value::Int64(a * b);
          case BinaryOp::kMod:
            if (b == 0) return Value::Null();
            return Value::Int64(a % b);
          default:
            break;
        }
      }
      const double a = lhs.AsDouble();
      const double b = rhs.AsDouble();
      switch (expr.bin_op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        case BinaryOp::kMul:
          return Value::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) return Value::Null();
          return Value::Double(a / b);
        case BinaryOp::kMod:
          if (b == 0.0) return Value::Null();
          return Value::Double(std::fmod(a, b));
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

Result<Value> EvaluateExpr(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.column_index < 0) {
        return Status::Internal("unbound column reference: " + expr.column);
      }
      return ctx.batch->column(static_cast<size_t>(expr.column_index))
          .GetValue(ctx.row);
    }
    case ExprKind::kBinary:
      return EvaluateBinary(expr, ctx);
    case ExprKind::kUnary: {
      MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr.children[0], ctx));
      switch (expr.un_op) {
        case UnaryOp::kNot:
          return Value::Bool(!IsTruthy(v));
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.is_int64()) return Value::Int64(-v.int64_value());
          return Value::Double(-v.AsDouble());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("unhandled unary operator");
    }
    case ExprKind::kFunction: {
      if (ctx.lookup_function == nullptr) {
        return Status::Internal("no function registry in EvalContext");
      }
      const ScalarFunction* fn =
          ctx.lookup_function(expr.func_name, ctx.lookup_hook);
      if (fn == nullptr) {
        return Status::InvalidArgument("unknown function: " + expr.func_name);
      }
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const ExprPtr& child : expr.children) {
        MAXSON_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*child, ctx));
        args.push_back(std::move(v));
      }
      return (*fn)(args, ctx);
    }
    case ExprKind::kAggregate:
      return Status::Internal(
          "aggregate expression evaluated outside aggregation");
    case ExprKind::kStar:
      return Status::Internal("'*' evaluated as a scalar");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace maxson::engine
