#include "core/cacher.h"

#include <map>

#include "common/time_util.h"
#include "json/json_path.h"
#include "json/mison_parser.h"
#include "xml/xml_path.h"
#include "storage/corc_reader.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::core {

using storage::CorcReader;
using storage::CorcWriter;
using storage::CorcWriterOptions;
using storage::FileSystem;
using storage::Split;
using storage::TypeKind;
using storage::Value;

Result<SampledPathStats> SampleTableStats(const catalog::TableInfo& table,
                                          const std::string& column,
                                          const std::string& path,
                                          size_t sample_rows,
                                          engine::JsonBackend backend) {
  MAXSON_ASSIGN_OR_RETURN(std::vector<Split> splits,
                          FileSystem::ListSplits(table.location));
  if (splits.empty()) {
    return Status::NotFound("no splits under " + table.location);
  }
  const bool is_xml = xml::IsXmlPathText(path);
  json::JsonPath parsed_path;
  xml::XmlPath parsed_xpath;
  if (is_xml) {
    MAXSON_ASSIGN_OR_RETURN(parsed_xpath, xml::XmlPath::Parse(path));
  } else {
    MAXSON_ASSIGN_OR_RETURN(parsed_path, json::JsonPath::Parse(path));
  }

  SampledPathStats stats;
  // Total row count across splits (for cache-footprint estimation).
  for (const Split& split : splits) {
    CorcReader reader(split.path);
    MAXSON_RETURN_NOT_OK(reader.Open());
    stats.table_rows += reader.num_rows();
  }

  CorcReader reader(splits[0].path);
  MAXSON_RETURN_NOT_OK(reader.Open());
  const int column_index = reader.schema().FindField(column);
  if (column_index < 0) {
    return Status::NotFound("column " + column + " missing in sample split");
  }
  MAXSON_ASSIGN_OR_RETURN(
      storage::RecordBatch batch,
      reader.ReadStripe(0, {column_index}, std::nullopt, nullptr));

  json::MisonParser mison;
  uint64_t total_bytes = 0;
  size_t measured = 0;
  Stopwatch timer;
  const size_t limit = std::min(sample_rows, batch.num_rows());
  for (size_t r = 0; r < limit; ++r) {
    if (batch.column(0).IsNull(r)) continue;
    const std::string& text = batch.column(0).GetString(r);
    Result<std::string> value =
        is_xml ? xml::GetXmlObject(text, parsed_xpath)
               : (backend == engine::JsonBackend::kMison
                      ? mison.Extract(text, parsed_path)
                      : json::GetJsonObject(text, parsed_path));
    if (value.ok()) total_bytes += value->size();
    ++measured;
  }
  const double elapsed = timer.ElapsedSeconds();
  if (measured > 0) {
    stats.avg_value_bytes = std::max(
        1.0, static_cast<double>(total_bytes) / static_cast<double>(measured));
    stats.avg_parse_seconds = elapsed / static_cast<double>(measured);
  }
  return stats;
}

Status JsonPathCacher::CacheTablePaths(
    const std::string& database, const std::string& table,
    const std::vector<workload::JsonPathLocation>& paths, int64_t cache_time,
    CacheRegistry* registry, CachingStats* stats) {
  MAXSON_ASSIGN_OR_RETURN(const catalog::TableInfo* info,
                          catalog_->GetTable(database, table));
  MAXSON_ASSIGN_OR_RETURN(std::vector<Split> splits,
                          FileSystem::ListSplits(info->location));
  if (splits.empty()) {
    return Status::NotFound("no splits under " + info->location);
  }

  // All JSONPaths of one raw table go into one cache table; fields remember
  // the column and path they were parsed from. Entries still pointing at
  // the directory drop out of the registry first — queries planned from now
  // on parse raw — and the whole rebuild happens in a staging directory
  // that replaces the live one only when every split succeeded.
  const std::string cache_dir = CacheTableDir(cache_root_, database, table);
  const std::string staging_dir = cache_dir + ".staging";
  registry->InvalidateByDir(cache_dir);
  MAXSON_RETURN_NOT_OK(FileSystem::RemoveAll(staging_dir));
  MAXSON_RETURN_NOT_OK(FileSystem::MakeDirs(staging_dir));

  // Immutable once built: split tasks read the work list concurrently, so
  // nothing split-specific (like resolved column indexes) may live here.
  struct PathWork {
    workload::JsonPathLocation location;
    bool is_xml = false;   // XPath ('/..') vs JSONPath ('$..')
    json::JsonPath parsed;
    xml::XmlPath xpath;
    std::string field;
    TypeKind type = TypeKind::kString;
  };
  std::vector<PathWork> work;
  for (const workload::JsonPathLocation& loc : paths) {
    PathWork w;
    w.location = loc;
    w.is_xml = xml::IsXmlPathText(loc.path);
    if (w.is_xml) {
      MAXSON_ASSIGN_OR_RETURN(w.xpath, xml::XmlPath::Parse(loc.path));
    } else {
      MAXSON_ASSIGN_OR_RETURN(w.parsed, json::JsonPath::Parse(loc.path));
    }
    w.field = CacheFieldName(loc.column, loc.path);
    work.push_back(std::move(w));
  }

  // Type inference pass: sample the first split and store numeric JSONPath
  // values in typed columns, so the cache table's row-group min/max indexes
  // order numerically and SARGs like `id > 10000` (Fig. 10) can skip row
  // groups correctly. Values that are not uniformly numeric stay strings.
  {
    CorcReader sample_reader(splits[0].path);
    MAXSON_RETURN_NOT_OK(sample_reader.Open());
    for (PathWork& w : work) {
      if (w.is_xml) continue;  // XML values stay strings (text content)
      const int idx = sample_reader.schema().FindField(w.location.column);
      if (idx < 0) continue;
      MAXSON_ASSIGN_OR_RETURN(
          storage::RecordBatch batch,
          sample_reader.ReadStripe(0, {idx}, std::nullopt, nullptr));
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      const size_t limit = std::min<size_t>(batch.num_rows(), 256);
      for (size_t r = 0; r < limit; ++r) {
        if (batch.column(0).IsNull(r)) continue;
        auto dom = json::ParseJson(batch.column(0).GetString(r));
        if (!dom.ok()) continue;
        const json::JsonValue* node = w.parsed.Evaluate(*dom);
        if (node == nullptr) continue;
        any_value = true;
        if (!node->is_int()) all_int = false;
        if (!node->is_number()) all_double = false;
        if (!all_double) break;
      }
      if (any_value && all_int) {
        w.type = TypeKind::kInt64;
      } else if (any_value && all_double) {
        w.type = TypeKind::kDouble;
      }
    }
  }
  storage::Schema cache_schema;
  for (const PathWork& w : work) {
    cache_schema.AddField(w.field, w.type);
  }

  // One task per split: each owns its reader, writer, column resolution,
  // speculative parser, and stats partial, so split pre-parsing fans out
  // on the shared pool with no shared mutable state. Partials merge in
  // split order below, keeping the stats totals deterministic.
  std::vector<CachingStats> split_stats(splits.size());
  Status build_status = exec::ParallelFor(
      pool_.get(), splits.size(), [&](size_t split_i) -> Status {
        const Split& split = splits[split_i];
        CachingStats* split_out =
            stats != nullptr ? &split_stats[split_i] : nullptr;
        CorcReader reader(split.path);
        MAXSON_RETURN_NOT_OK(reader.Open());
        // Resolve source column indexes within this file (per split: part
        // files may order their fields differently).
        std::vector<int> source_columns;
        source_columns.reserve(work.size());
        for (const PathWork& w : work) {
          const int idx = reader.schema().FindField(w.location.column);
          if (idx < 0) {
            return Status::NotFound("column " + w.location.column +
                                    " missing in " + split.path);
          }
          source_columns.push_back(idx);
        }
        // Deduplicate source columns for the read.
        std::vector<int> unique_columns;
        std::map<int, int> column_slot;  // file column index -> batch slot
        for (int c : source_columns) {
          if (column_slot.emplace(c, static_cast<int>(unique_columns.size()))
                  .second) {
            unique_columns.push_back(c);
          }
        }

        // The cache file mirrors the raw file: same index in the sorted
        // listing, same row count, same row-group size (alignment
        // guarantee).
        CorcWriterOptions options;
        options.rows_per_group = reader.footer().rows_per_group;
        options.format_version = format_version_;
        CorcWriter writer(
            staging_dir + "/" + FileSystem::PartFileName(split.index),
            cache_schema, options);
        MAXSON_RETURN_NOT_OK(writer.Open());

        json::MisonParser mison;
        for (size_t s = 0; s < reader.num_stripes(); ++s) {
          MAXSON_ASSIGN_OR_RETURN(
              storage::RecordBatch batch,
              reader.ReadStripe(s, unique_columns, std::nullopt, nullptr));
          Stopwatch parse_timer;
          for (size_t r = 0; r < batch.num_rows(); ++r) {
            // Parse each source JSON column once per row and evaluate every
            // requested path against it (the whole point of pre-parsing is
            // to pay the deserialization once).
            std::map<int, Result<json::JsonValue>> doms;
            std::vector<Value> row;
            row.reserve(work.size());
            for (size_t wi = 0; wi < work.size(); ++wi) {
              const PathWork& w = work[wi];
              const int slot = column_slot.at(source_columns[wi]);
              if (batch.column(static_cast<size_t>(slot)).IsNull(r)) {
                row.push_back(Value::Null());
                continue;
              }
              const std::string& text =
                  batch.column(static_cast<size_t>(slot)).GetString(r);
              Result<std::string> value = Status::NotFound("");
              if (w.is_xml) {
                value = xml::GetXmlObject(text, w.xpath);
              } else if (backend_ == engine::JsonBackend::kMison) {
                value = mison.Extract(text, w.parsed);
              } else {
                auto dom_it = doms.find(slot);
                if (dom_it == doms.end()) {
                  dom_it = doms.emplace(slot, json::ParseJson(text)).first;
                }
                if (dom_it->second.ok()) {
                  const json::JsonValue* node =
                      w.parsed.Evaluate(*dom_it->second);
                  if (node != nullptr) {
                    value = json::RenderGetJsonObjectResult(*node);
                  }
                }
              }
              if (value.ok()) {
                if (split_out != nullptr) {
                  split_out->bytes_written += value->size();
                }
                row.push_back(Value::String(std::move(*value)));
              } else {
                // Absent path: cached as NULL, matching get_json_object's
                // NULL-on-missing semantics.
                row.push_back(Value::Null());
              }
            }
            MAXSON_RETURN_NOT_OK(writer.AppendRow(row));
            if (split_out != nullptr) ++split_out->rows_parsed;
          }
          if (split_out != nullptr) {
            split_out->parse_seconds += parse_timer.ElapsedSeconds();
          }
        }
        MAXSON_RETURN_NOT_OK(writer.Close());
        if (split_out != nullptr) {
          const storage::CorcWriteStats& ws = writer.write_stats();
          split_out->corc_raw_bytes += ws.raw_bytes;
          split_out->corc_encoded_bytes += ws.encoded_bytes;
          for (int e = 0; e < storage::kNumChunkEncodings; ++e) {
            split_out->corc_chunks[e] += ws.chunks[e];
          }
        }
        return Status::Ok();
      });
  if (!build_status.ok()) {
    // Failed builds leave nothing behind; the live cache dir (if any) was
    // already unregistered above, so it simply ages out next cycle.
    Status cleanup = FileSystem::RemoveAll(staging_dir);
    if (!cleanup.ok()) {
      MAXSON_LOG(Warning) << "staging cleanup failed: " << cleanup;
    }
    return build_status;
  }
  if (stats != nullptr) {
    for (const CachingStats& s : split_stats) stats->Add(s);
  }

  // Durable publish: sync the finished staging directory, swap it into
  // place, and sync the parent so the swap survives a crash. Only after the
  // files are live do registry entries appear — a process killed anywhere
  // above leaves the registry without entries for this table and at worst a
  // staging directory that the next cycle deletes.
  MAXSON_RETURN_NOT_OK(FileSystem::SyncDir(staging_dir));
  MAXSON_RETURN_NOT_OK(FileSystem::RemoveAll(cache_dir));
  MAXSON_RETURN_NOT_OK(FileSystem::RenameFile(staging_dir, cache_dir));
  MAXSON_RETURN_NOT_OK(FileSystem::SyncDir(cache_root_));

  for (const PathWork& w : work) {
    CacheEntry entry;
    entry.location = w.location;
    entry.cache_table_dir = cache_dir;
    entry.cache_field = w.field;
    entry.cache_time = cache_time;
    entry.valid = true;
    registry->Put(std::move(entry));
    if (stats != nullptr) ++stats->paths_cached;
  }
  return Status::Ok();
}

Result<CachingStats> JsonPathCacher::RepopulateCache(
    const std::vector<ScoredMpjp>& selected, int64_t cache_time,
    CacheRegistry* registry) {
  Stopwatch total_timer;
  CachingStats stats;
  // Nightly reset: drop previous entries and delete their files (this also
  // removes tables marked invalid since the last cycle).
  for (const std::string& dir : registry->Clear()) {
    MAXSON_RETURN_NOT_OK(FileSystem::RemoveAll(dir));
  }

  // Group selections by raw table.
  std::map<std::string, std::vector<workload::JsonPathLocation>> by_table;
  for (const ScoredMpjp& s : selected) {
    by_table[s.candidate.location.database + "." + s.candidate.location.table]
        .push_back(s.candidate.location);
  }
  for (const auto& [qualified, paths] : by_table) {
    const size_t dot = qualified.find('.');
    MAXSON_RETURN_NOT_OK(CacheTablePaths(qualified.substr(0, dot),
                                         qualified.substr(dot + 1), paths,
                                         cache_time, registry, &stats));
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  return stats;
}

}  // namespace maxson::core
