#ifndef MAXSON_CORE_SCORING_H_
#define MAXSON_CORE_SCORING_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/trace.h"

namespace maxson::core {

/// One MPJP candidate with its measured statistics: B_j (average parsed
/// value size, sampled from table splits) and P_j (average parsing time,
/// measured with the engine's parsing algorithm).
struct MpjpCandidate {
  workload::JsonPathLocation location;
  double avg_value_bytes = 1.0;    // B_j
  double avg_parse_seconds = 0.0;  // P_j
  /// Estimated total cache footprint when this path is cached (B_j times
  /// table row count), used by budgeted selection.
  uint64_t estimated_cache_bytes = 0;
};

/// A scored MPJP, per Section IV-B:
///   A_j = P_j / B_j                       (acceleration per byte, Eq. 1)
///   R_j = sum_i M_i / sum_i N_i           (relevance, Eq. 2)
///   O_j = number of queries accessing j   (occurrences)
///   Score_j = A_j * R_j * O_j             (Eq. 3)
struct ScoredMpjp {
  MpjpCandidate candidate;
  double acceleration_per_byte = 0.0;  // A_j
  double relevance = 0.0;              // R_j
  uint64_t occurrences = 0;            // O_j
  double score = 0.0;
};

/// Computes scores for every candidate. `queries` are the path-key sets of
/// the queries the predictor was built from (one entry per executed query);
/// `mpjp_keys` is the full predicted MPJP set (M_i counts membership in it).
/// Returns candidates sorted by descending score.
std::vector<ScoredMpjp> ScoreMpjps(
    const std::vector<MpjpCandidate>& candidates,
    const std::vector<std::vector<std::string>>& queries,
    const std::set<std::string>& mpjp_keys);

/// Greedy budgeted selection: walks the scored list in descending order and
/// keeps every candidate that still fits in `budget_bytes` (Section IV-C:
/// "caches the MPJPs in the sorted order until it runs out of space").
std::vector<ScoredMpjp> SelectWithinBudget(std::vector<ScoredMpjp> scored,
                                           uint64_t budget_bytes);

/// Baseline for Fig. 11: random order instead of score order, same budget.
std::vector<ScoredMpjp> SelectRandomWithinBudget(
    std::vector<ScoredMpjp> scored, uint64_t budget_bytes, uint64_t seed);

}  // namespace maxson::core

#endif  // MAXSON_CORE_SCORING_H_
