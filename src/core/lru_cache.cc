#include "core/lru_cache.h"

namespace maxson::core {

bool LruValueCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  // Promote to most-recently-used.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

void LruValueCache::Put(const std::string& key, uint64_t bytes) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= it->second->bytes;
    it->second->bytes = bytes;
    used_bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictUntilFits();
    return;
  }
  if (bytes > capacity_bytes_) return;  // oversized: not admitted
  lru_.push_front(Entry{key, bytes});
  entries_[key] = lru_.begin();
  used_bytes_ += bytes;
  EvictUntilFits();
}

void LruValueCache::Clear() {
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

void LruValueCache::EvictUntilFits() {
  while (used_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace maxson::core
