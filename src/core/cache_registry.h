#ifndef MAXSON_CORE_CACHE_REGISTRY_H_
#define MAXSON_CORE_CACHE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/trace.h"

namespace maxson::core {

/// One cached JSONPath: where its values live and when they were cached.
struct CacheEntry {
  workload::JsonPathLocation location;
  std::string cache_table_dir;  // directory of the cache table's part files
  std::string cache_field;      // field name inside the cache files
  int64_t cache_time = 0;       // logical time the values were parsed
  bool valid = true;            // flipped by the validity check (Alg. 1)
};

/// In-memory index of active cache entries, keyed by the JSONPath's
/// canonical key. The MaxsonParser consults it on every plan rewrite; the
/// JsonPathCacher repopulates it at each midnight cycle (invalid entries
/// are dropped then, matching "invalid cache tables would be deleted when
/// we perform caching operations next time").
class CacheRegistry {
 public:
  void Put(CacheEntry entry) {
    entries_[entry.location.Key()] = std::move(entry);
  }

  /// Returns nullptr when the path has no (possibly invalid) entry.
  const CacheEntry* Find(const workload::JsonPathLocation& location) const {
    auto it = entries_.find(location.Key());
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Marks an entry invalid (raw table modified after caching).
  void Invalidate(const workload::JsonPathLocation& location) {
    auto it = entries_.find(location.Key());
    if (it != entries_.end()) it->second.valid = false;
  }

  /// Drops every entry (the nightly "empty and re-populate" step) and
  /// returns the directories that backed them so the cacher can delete the
  /// stale files.
  std::vector<std::string> Clear();

  size_t size() const { return entries_.size(); }

  const std::map<std::string, CacheEntry>& entries() const { return entries_; }

  /// Serializes the registry to JSON / restores it, so a deployment's
  /// cache state survives process restarts (cache tables live on disk; the
  /// registry is the only volatile piece).
  std::string ToJson() const;
  static Result<CacheRegistry> FromJson(const std::string& text);
  Status Save(const std::string& path) const;
  static Result<CacheRegistry> Load(const std::string& path);

 private:
  std::map<std::string, CacheEntry> entries_;
};

/// Canonical field name of a cached JSONPath inside a cache table file:
/// column name and path joined with non-alphanumerics flattened, so cache
/// fields remember "the corresponding column name and JSONPath".
std::string CacheFieldName(const std::string& column, const std::string& path);

/// Canonical directory of a table's cache table under `cache_root`
/// ("<root>/<db>.<table>"), remembering the raw table it mirrors.
std::string CacheTableDir(const std::string& cache_root,
                          const std::string& database,
                          const std::string& table);

}  // namespace maxson::core

#endif  // MAXSON_CORE_CACHE_REGISTRY_H_
