#ifndef MAXSON_CORE_CACHE_REGISTRY_H_
#define MAXSON_CORE_CACHE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "workload/trace.h"

namespace maxson::core {

/// One cached JSONPath: where its values live and when they were cached.
struct CacheEntry {
  workload::JsonPathLocation location;
  std::string cache_table_dir;  // directory of the cache table's part files
  std::string cache_field;      // field name inside the cache files
  int64_t cache_time = 0;       // logical time the values were parsed
  bool valid = true;            // flipped by the validity check (Alg. 1)
};

/// In-memory index of active cache entries, keyed by the JSONPath's
/// canonical key. The MaxsonParser consults it on every plan rewrite; the
/// JsonPathCacher repopulates it at each midnight cycle (invalid entries
/// are dropped then, matching "invalid cache tables would be deleted when
/// we perform caching operations next time").
///
/// Locking contract: every member function takes the registry's internal
/// shared_mutex (readers shared, writers exclusive), so plan rewrites may
/// race freely with a concurrent midnight cycle's Clear/Put sequence.
/// Lookup() returns the entry *by value* — a pointer into the map would
/// dangle the moment Clear() runs on another thread. The window between a
/// successful Lookup() and the scan reading the cache files is inherently
/// unsynchronized: a midnight cycle may delete the files in between, and
/// the query then fails with IoError and must be retried (it re-plans
/// against the new registry state). Entries are never mutated in place
/// except Invalidate's valid flag, which is only ever set false, so a
/// stale read of it is benign (one extra raw parse).
class CacheRegistry {
 public:
  CacheRegistry() = default;

  // shared_mutex is immovable; moving a registry moves only its entries.
  // Used by Load/FromJson returning by value and by session restore; the
  // moved-from registry must be otherwise idle. Outside the analysis:
  // locking two registries at once has no expressible annotation, and the
  // idle-moved-from contract is what actually makes it safe.
  CacheRegistry(CacheRegistry&& other) noexcept
      MAXSON_NO_THREAD_SAFETY_ANALYSIS {
    WriterMutexLock lock(other.mutex_);
    entries_ = std::move(other.entries_);
    other.entries_.clear();
    version_.fetch_add(1, std::memory_order_release);
    other.version_.fetch_add(1, std::memory_order_release);
  }
  CacheRegistry& operator=(CacheRegistry&& other) noexcept
      MAXSON_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      std::scoped_lock lock(mutex_.native(), other.mutex_.native());
      entries_ = std::move(other.entries_);
      other.entries_.clear();
      version_.fetch_add(1, std::memory_order_release);
      other.version_.fetch_add(1, std::memory_order_release);
    }
    return *this;
  }

  void Put(CacheEntry entry) MAXSON_EXCLUDES(mutex_) {
    WriterMutexLock lock(mutex_);
    entries_[entry.location.Key()] = std::move(entry);
    version_.fetch_add(1, std::memory_order_release);
  }

  /// Returns a copy of the entry, or nullopt when the path has none. A copy
  /// (not a pointer) so a concurrent Clear() cannot invalidate the result.
  std::optional<CacheEntry> Lookup(
      const workload::JsonPathLocation& location) const
      MAXSON_EXCLUDES(mutex_) {
    SharedMutexLock lock(mutex_);
    lookups_.fetch_add(1, std::memory_order_relaxed);
    auto it = entries_.find(location.Key());
    if (it == entries_.end()) return std::nullopt;
    if (it->second.valid) {
      lookup_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
  }

  /// Lifetime Lookup() traffic: total probes and probes that found a valid
  /// entry. Observability only — the registry itself never acts on these.
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  uint64_t lookup_hits() const {
    return lookup_hits_.load(std::memory_order_relaxed);
  }

  /// Drops every entry backed by cache-table directory `dir`. The cacher
  /// calls this *before* deleting or replacing that directory, so no plan
  /// rewrite can bind to files that are about to disappear — the ordering
  /// (invalidate, then remove) is what keeps the Lookup-to-scan window
  /// merely retryable instead of silently wrong.
  void InvalidateByDir(const std::string& dir) MAXSON_EXCLUDES(mutex_) {
    WriterMutexLock lock(mutex_);
    bool changed = false;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.cache_table_dir == dir) {
        it = entries_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    if (changed) version_.fetch_add(1, std::memory_order_release);
  }

  /// Marks an entry invalid (raw table modified after caching).
  void Invalidate(const workload::JsonPathLocation& location)
      MAXSON_EXCLUDES(mutex_) {
    WriterMutexLock lock(mutex_);
    auto it = entries_.find(location.Key());
    if (it != entries_.end()) {
      it->second.valid = false;
      version_.fetch_add(1, std::memory_order_release);
    }
  }

  /// Monotonic change counter: bumped by every mutation (Put, Invalidate,
  /// Clear, move). Lets callers cache derived views of the registry — the
  /// plan validator's binding snapshot rebuilds only when this changes —
  /// without holding the lock across queries.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Drops every entry (the nightly "empty and re-populate" step) and
  /// returns the directories that backed them so the cacher can delete the
  /// stale files.
  std::vector<std::string> Clear() MAXSON_EXCLUDES(mutex_);

  size_t size() const MAXSON_EXCLUDES(mutex_) {
    SharedMutexLock lock(mutex_);
    return entries_.size();
  }

  /// Copies the current entries in key order (for display and iteration;
  /// a live reference would race with concurrent mutation).
  std::vector<CacheEntry> Snapshot() const MAXSON_EXCLUDES(mutex_) {
    SharedMutexLock lock(mutex_);
    std::vector<CacheEntry> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.push_back(entry);
    return out;
  }

  /// Serializes the registry to JSON / restores it, so a deployment's
  /// cache state survives process restarts (cache tables live on disk; the
  /// registry is the only volatile piece).
  std::string ToJson() const MAXSON_EXCLUDES(mutex_);
  static Result<CacheRegistry> FromJson(const std::string& text);
  Status Save(const std::string& path) const;
  static Result<CacheRegistry> Load(const std::string& path);

 private:
  mutable SharedMutex mutex_;
  std::map<std::string, CacheEntry> entries_ MAXSON_GUARDED_BY(mutex_);
  std::atomic<uint64_t> version_{0};
  /// Mutable: Lookup is logically const; counting probes does not mutate
  /// the registry's observable cache state.
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> lookup_hits_{0};
};

/// Canonical field name of a cached JSONPath inside a cache table file:
/// column name and path joined with non-alphanumerics flattened, so cache
/// fields remember "the corresponding column name and JSONPath".
std::string CacheFieldName(const std::string& column, const std::string& path);

/// Canonical directory of a table's cache table under `cache_root`
/// ("<root>/<db>.<table>"), remembering the raw table it mirrors.
std::string CacheTableDir(const std::string& cache_root,
                          const std::string& database,
                          const std::string& table);

}  // namespace maxson::core

#endif  // MAXSON_CORE_CACHE_REGISTRY_H_
