#ifndef MAXSON_CORE_PREDICTOR_H_
#define MAXSON_CORE_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/collector.h"
#include "ml/dataset.h"
#include "ml/linear_models.h"
#include "ml/lstm.h"
#include "ml/lstm_crf.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace maxson::core {

/// Model families the JSONPath Predictor can be built on — the four
/// baselines plus the paper's hybrid (Tables III / IV).
enum class PredictorModel {
  kLogisticRegression,
  kLinearSvm,
  kMlp,
  kLstm,
  kLstmCrf,
};

const char* PredictorModelName(PredictorModel model);

struct PredictorConfig {
  PredictorModel model = PredictorModel::kLstmCrf;
  /// Date window the count/datediff sequences span (paper: one week gives
  /// the best F1; Table IV also tries two weeks and one month).
  int window_days = 7;
  int lstm_hidden = 24;
  int epochs = 20;
  uint64_t seed = 21;
};

/// The JSONPath Predictor of Fig. 6: turns the collector's statistics into
/// per-path training samples — location features, a Datediff sequence, and
/// a Count sequence — and predicts which paths will be Multiple-Parsed
/// JSONPaths (accessed at least twice) on the next day.
class JsonPathPredictor {
 public:
  explicit JsonPathPredictor(PredictorConfig config)
      : config_(std::move(config)) {}

  /// Builds one sample for `key` whose window ends the day before
  /// `target_date`; each step is labeled with the *next* day's MPJP status,
  /// so the final label answers "is this path an MPJP on target_date?".
  ml::Sample BuildSample(const JsonPathCollector& collector,
                         const std::string& key, DateId target_date) const;

  /// Builds a dataset over every collected path for every target day in
  /// [first_target, last_target].
  std::vector<ml::Sample> BuildDataset(const JsonPathCollector& collector,
                                       DateId first_target,
                                       DateId last_target) const;

  /// Trains the configured model.
  Status Train(const std::vector<ml::Sample>& samples);

  /// Predicts the MPJP label of one sample.
  int Predict(const ml::Sample& sample) const;

  /// Evaluates precision/recall/F1 on a labeled set.
  ml::BinaryMetrics Evaluate(const std::vector<ml::Sample>& samples) const;

  /// End-to-end nightly use: predict tomorrow's MPJP keys from history.
  std::vector<std::string> PredictMpjps(const JsonPathCollector& collector,
                                        DateId target_date) const;

  /// Persists / restores the trained model's parameters (LSTM, LSTM+CRF;
  /// other model families return kUnimplemented). LoadModel marks the
  /// predictor trained; the file's model kind must match the configured
  /// one.
  Status SaveModel(const std::string& path) const;
  Status LoadModel(const std::string& path);

  const PredictorConfig& config() const { return config_; }

 private:
  PredictorConfig config_;
  bool trained_ = false;
  ml::LogisticRegression lr_;
  ml::LinearSvm svm_;
  ml::MlpClassifier mlp_;
  ml::LstmTagger lstm_;
  ml::LstmCrf lstm_crf_;
};

}  // namespace maxson::core

#endif  // MAXSON_CORE_PREDICTOR_H_
