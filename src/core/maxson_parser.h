#ifndef MAXSON_CORE_MAXSON_PARSER_H_
#define MAXSON_CORE_MAXSON_PARSER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "core/cache_registry.h"
#include "engine/plan.h"

namespace maxson::obs {
class MetricsRegistry;
}  // namespace maxson::obs

namespace maxson::core {

/// The plan modifier of Section IV-D (Algorithm 1), installed into the
/// engine as its PlanRewriter.
///
/// For every `get_json_object(column, 'path')` expression in the plan
/// (projections, WHERE, GROUP BY, ORDER BY, join keys) it checks whether
/// (database, table, column, path) has a cache entry. If the raw table was
/// modified after the cache was populated, the entry is marked invalid and
/// the expression is left untouched (it will be re-parsed from raw data);
/// otherwise the call is replaced by a placeholder — here, a column
/// reference to a synthetic scan output column backed by the cache table —
/// and a CacheColumnRequest is added to the owning scan so the value
/// combiner stitches the cached values in.
class MaxsonParser : public engine::PlanRewriter {
 public:
  MaxsonParser(const catalog::Catalog* catalog, CacheRegistry* registry)
      : catalog_(catalog), registry_(registry) {}

  Result<int> Rewrite(engine::PhysicalPlan* plan) override;

  /// Registry receiving per-JSONPath rewrite outcomes
  /// (maxson_rewrite_{hits,misses,fallbacks}_total{table=...,path=...}).
  /// Rewrites run single-threaded at plan time, so publication order — and
  /// with it every counter total — is deterministic. Pass nullptr to
  /// disable. Not owned.
  void set_metrics_registry(obs::MetricsRegistry* registry) {
    metrics_ = registry;
  }

  /// Cumulative telemetry across rewrites. Atomic: rewrites may run while
  /// another thread (a midnight cycle, a stats probe) reads the counters.
  uint64_t cache_hits() const { return cache_hits_.load(); }
  uint64_t cache_misses() const { return cache_misses_.load(); }
  uint64_t invalidations() const { return invalidations_.load(); }

 private:
  /// Rewrites all expressions owned by one scan. Returns substitutions.
  Result<int> RewriteForScan(engine::PhysicalPlan* plan,
                             engine::ScanNode* scan);

  const catalog::Catalog* catalog_;
  CacheRegistry* registry_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace maxson::core

#endif  // MAXSON_CORE_MAXSON_PARSER_H_
