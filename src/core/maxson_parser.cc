#include "core/maxson_parser.h"

#include "common/string_util.h"
#include "engine/expr.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace maxson::core {

using engine::Expr;
using engine::ExprKind;
using engine::PhysicalPlan;
using engine::ScanNode;

namespace {

/// Derives the raw table name (without warehouse path) from a scan by
/// stripping the directory prefix: locations are "<root>/<db>/<table>".
struct TableIdentity {
  std::string database;
  std::string table;
};

TableIdentity IdentifyScan(const catalog::Catalog* catalog,
                           const ScanNode& scan) {
  // Resolve by matching the scan's table_dir against catalog locations.
  for (const std::string& db : catalog->ListDatabases()) {
    for (const catalog::TableInfo* info : catalog->ListTables(db)) {
      if (info->location == scan.table_dir) {
        return TableIdentity{info->database, info->name};
      }
    }
  }
  return TableIdentity{};
}

/// True when a column reference (possibly "alias.column") addresses
/// `column` of the given scan.
bool RefersToScanColumn(const ScanNode& scan, const std::string& ref,
                        const std::string& column) {
  if (ref == column) return true;
  if (!scan.qualifier.empty() && ref == scan.qualifier + "." + column) {
    return true;
  }
  return false;
}

}  // namespace

Result<int> MaxsonParser::RewriteForScan(PhysicalPlan* plan, ScanNode* scan) {
  const TableIdentity identity = IdentifyScan(catalog_, *scan);
  if (identity.table.empty()) return 0;  // unknown table: nothing to do

  MAXSON_ASSIGN_OR_RETURN(
      const catalog::TableInfo* info,
      catalog_->GetTable(identity.database, identity.table));

  int substitutions = 0;

  // MatchExpr of Algorithm 1, applied to one node. get_xml_object joins
  // get_json_object per the paper's future-work note: caching is format-
  // agnostic once the extraction is keyed by (db, table, column, path).
  auto match_expr = [&](Expr* node) {
    if (node->kind != ExprKind::kFunction ||
        (node->func_name != "get_json_object" &&
         node->func_name != "get_xml_object") ||
        node->children.size() != 2) {
      return;
    }
    Expr* column_arg = node->children[0].get();
    Expr* path_arg = node->children[1].get();
    if (column_arg->kind != ExprKind::kColumnRef ||
        path_arg->kind != ExprKind::kLiteral ||
        !path_arg->literal.is_string()) {
      return;
    }
    // Find the raw column of this scan the call reads.
    std::string column;
    for (const storage::Field& field : scan->table_schema.fields()) {
      if (RefersToScanColumn(*scan, column_arg->column, field.name)) {
        column = field.name;
        break;
      }
    }
    if (column.empty()) return;  // belongs to the other scan of a join

    workload::JsonPathLocation location;
    location.database = identity.database;
    location.table = identity.table;
    location.column = column;
    location.path = path_arg->literal.string_value();

    // Per-path outcome series: rewrites run single-threaded at plan time,
    // so these labeled counters are as deterministic as the plan itself.
    const obs::LabelSet labels = {{"path", location.path},
                                  {"table", identity.table}};
    auto bump = [&](const char* name) {
      if (metrics_ != nullptr) metrics_->GetCounter(name, labels)->Increment();
    };

    // Lookup copies the entry out under the registry's lock: a concurrent
    // midnight cycle may Clear() the registry at any point after this line,
    // and a pointer into it would dangle.
    const std::optional<CacheEntry> entry = registry_->Lookup(location);
    if (!entry.has_value() || !entry->valid) {
      ++cache_misses_;
      ++plan->rewrite_cache_misses;
      bump(obs::kRewriteMisses);
      return;  // cache miss: normal parsing path
    }
    // Validity check: a table modified after the cache was populated makes
    // the cached values stale (Algorithm 1 lines 16-20). The query falls
    // back to raw parsing: a fallback, counted apart from plain misses.
    if (info->last_modified > entry->cache_time) {
      registry_->Invalidate(location);
      ++invalidations_;
      ++cache_misses_;
      ++plan->rewrite_cache_fallbacks;
      bump(obs::kRewriteFallbacks);
      return;
    }

    // Cache hit: replace the call with a placeholder column reference and
    // request the cache column from the scan.
    ++cache_hits_;
    ++plan->rewrite_cache_hits;
    bump(obs::kRewriteHits);
    const std::string output_name =
        scan->qualifier.empty() ? entry->cache_field
                                : scan->qualifier + "." + entry->cache_field;
    bool already_requested = false;
    for (const engine::CacheColumnRequest& req : scan->cache_columns) {
      if (req.output_name == output_name) {
        already_requested = true;
        break;
      }
    }
    if (!already_requested) {
      engine::CacheColumnRequest req;
      req.cache_table_dir = entry->cache_table_dir;
      req.cache_field = entry->cache_field;
      req.output_name = output_name;
      // The registry remembers the raw column and path the value was parsed
      // from; the scan uses them to re-derive the column if the cache file
      // turns out to be corrupt.
      req.source_column = entry->location.column;
      req.source_path = entry->location.path;
      scan->cache_columns.push_back(std::move(req));
    }
    node->kind = ExprKind::kColumnRef;
    node->column = output_name;
    node->column_index = -1;
    node->func_name.clear();
    node->children.clear();
    ++substitutions;
  };

  // Walk every expression tree of the plan (Replace() of Algorithm 1 over
  // ProjectList and Predicate, extended to the other clause positions).
  for (engine::ExprPtr& e : plan->projections) e->Visit(match_expr);
  if (plan->where != nullptr) plan->where->Visit(match_expr);
  if (plan->having != nullptr) plan->having->Visit(match_expr);
  for (engine::ExprPtr& e : plan->group_by) e->Visit(match_expr);
  for (auto& [e, desc] : plan->order_by) e->Visit(match_expr);
  for (engine::ExprPtr& e : plan->join_keys_left) e->Visit(match_expr);
  for (engine::ExprPtr& e : plan->join_keys_right) e->Visit(match_expr);
  return substitutions;
}

Result<int> MaxsonParser::Rewrite(PhysicalPlan* plan) {
  MAXSON_ASSIGN_OR_RETURN(int left, RewriteForScan(plan, &plan->scan));
  int right = 0;
  if (plan->join_scan.has_value()) {
    MAXSON_ASSIGN_OR_RETURN(right, RewriteForScan(plan, &*plan->join_scan));
  }
  return left + right;
}

}  // namespace maxson::core
