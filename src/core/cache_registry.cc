#include "core/cache_registry.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "json/dom_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"

namespace maxson::core {

std::vector<std::string> CacheRegistry::Clear() {
  WriterMutexLock lock(mutex_);
  std::set<std::string> dirs;
  for (const auto& [key, entry] : entries_) {
    dirs.insert(entry.cache_table_dir);
  }
  entries_.clear();
  version_.fetch_add(1, std::memory_order_release);
  return std::vector<std::string>(dirs.begin(), dirs.end());
}

std::string CacheRegistry::ToJson() const {
  SharedMutexLock lock(mutex_);
  using json::JsonValue;
  JsonValue root = JsonValue::Object();
  JsonValue entries = JsonValue::Array();
  for (const auto& [key, entry] : entries_) {
    JsonValue e = JsonValue::Object();
    e.Set("database", JsonValue::String(entry.location.database));
    e.Set("table", JsonValue::String(entry.location.table));
    e.Set("column", JsonValue::String(entry.location.column));
    e.Set("path", JsonValue::String(entry.location.path));
    e.Set("cache_table_dir", JsonValue::String(entry.cache_table_dir));
    e.Set("cache_field", JsonValue::String(entry.cache_field));
    e.Set("cache_time", JsonValue::Int(entry.cache_time));
    e.Set("valid", JsonValue::Bool(entry.valid));
    entries.Append(std::move(e));
  }
  root.Set("entries", std::move(entries));
  return json::WriteJson(root);
}

Result<CacheRegistry> CacheRegistry::FromJson(const std::string& text) {
  MAXSON_ASSIGN_OR_RETURN(json::JsonValue root, json::ParseJson(text));
  const json::JsonValue* entries =
      root.is_object() ? root.Find("entries") : nullptr;
  if (entries == nullptr || !entries->is_array()) {
    return Status::ParseError("registry JSON missing entries array");
  }
  CacheRegistry registry;
  for (const json::JsonValue& e : entries->elements()) {
    CacheEntry entry;
    const json::JsonValue* database = e.Find("database");
    const json::JsonValue* table = e.Find("table");
    const json::JsonValue* column = e.Find("column");
    const json::JsonValue* path = e.Find("path");
    const json::JsonValue* dir = e.Find("cache_table_dir");
    const json::JsonValue* field = e.Find("cache_field");
    const json::JsonValue* time = e.Find("cache_time");
    const json::JsonValue* valid = e.Find("valid");
    if (database == nullptr || table == nullptr || column == nullptr ||
        path == nullptr || dir == nullptr || field == nullptr ||
        time == nullptr || valid == nullptr) {
      return Status::ParseError("bad registry entry");
    }
    entry.location.database = database->string_value();
    entry.location.table = table->string_value();
    entry.location.column = column->string_value();
    entry.location.path = path->string_value();
    entry.cache_table_dir = dir->string_value();
    entry.cache_field = field->string_value();
    entry.cache_time = time->int_value();
    entry.valid = valid->bool_value();
    registry.Put(std::move(entry));
  }
  return registry;
}

Status CacheRegistry::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  out << ToJson();
  out.close();
  if (out.fail()) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

Result<CacheRegistry> CacheRegistry::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

std::string CacheFieldName(const std::string& column,
                           const std::string& path) {
  std::string out = column + "__";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

std::string CacheTableDir(const std::string& cache_root,
                          const std::string& database,
                          const std::string& table) {
  return cache_root + "/" + database + "." + table;
}

}  // namespace maxson::core
