#ifndef MAXSON_CORE_MAXSON_H_
#define MAXSON_CORE_MAXSON_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/cache_registry.h"
#include "core/cacher.h"
#include "core/collector.h"
#include "core/maxson_parser.h"
#include "core/predictor.h"
#include "core/scoring.h"
#include "engine/engine.h"

namespace maxson::core {

/// Top-level configuration of one Maxson deployment.
struct MaxsonConfig {
  std::string cache_root;  // directory holding cache tables
  /// When non-empty, the cache registry is loaded from this file at
  /// construction (if present) and saved after every midnight cycle, so
  /// cache state survives process restarts.
  std::string registry_path;
  uint64_t cache_budget_bytes = 64ull << 20;
  PredictorConfig predictor;
  engine::EngineConfig engine;
  /// Rows sampled per path when measuring B_j / P_j for the scoring
  /// function.
  size_t sample_rows = 200;
  /// When true, MPJPs are chosen randomly within the budget instead of by
  /// score (the Fig. 11 "random" baseline).
  bool random_selection = false;
  uint64_t random_seed = 5;
};

/// Outcome of one midnight cache-population cycle.
struct MidnightReport {
  std::vector<std::string> predicted_mpjps;
  std::vector<ScoredMpjp> selected;
  CachingStats caching;
};

/// The public facade tying Maxson's components together: a query engine
/// with the MaxsonParser installed, the collector feeding the predictor,
/// and the nightly predict -> score -> cache cycle of Fig. 5.
///
/// Typical use:
///   MaxsonSession session(&catalog, config);
///   session.collector()->RecordTrace(history);
///   session.TrainPredictor(first_day, last_day);
///   session.RunMidnightCycle(tomorrow);
///   auto result = session.Execute(sql);   // plans hit the cache
class MaxsonSession {
 public:
  MaxsonSession(const catalog::Catalog* catalog, MaxsonConfig config);

  /// Trains the predictor on samples whose target days span
  /// [first_target_day, last_target_day].
  Status TrainPredictor(DateId first_target_day, DateId last_target_day);

  /// The nightly cycle for `target_day`: predict the MPJPs the coming day
  /// will access, score them (Eq. 1-3) with sampled B_j/P_j, select within
  /// the budget, and pre-parse the winners into cache tables. `cache_time`
  /// defaults to the target day (logical clock).
  Result<MidnightReport> RunMidnightCycle(DateId target_day);

  /// Executes SQL through the Maxson-rewriting engine.
  Result<engine::QueryResult> Execute(const std::string& sql) {
    return engine_->Execute(sql);
  }

  /// Executes SQL with plan rewriting disabled (the plain-Spark baseline on
  /// the same engine), regardless of cache state.
  Result<engine::QueryResult> ExecuteWithoutCache(const std::string& sql);

  /// Replaces the execution pool with one of `num_threads` workers (0 =
  /// hardware concurrency, 1 = inline) and re-points the cacher at it.
  /// Not thread-safe against in-flight queries or midnight cycles.
  void set_num_threads(size_t num_threads) {
    engine_->set_num_threads(num_threads);
    cacher_->set_pool(engine_->pool());
  }

  /// The shared execution pool (query scans, operators, and midnight
  /// pre-parsing all fan out on it).
  const std::shared_ptr<exec::ThreadPool>& pool() const {
    return engine_->pool();
  }

  JsonPathCollector* collector() { return &collector_; }
  CacheRegistry* registry() { return &registry_; }
  engine::QueryEngine* engine() { return engine_.get(); }
  MaxsonParser* parser() { return parser_.get(); }
  const MaxsonConfig& config() const { return config_; }
  JsonPathPredictor* predictor() { return predictor_.get(); }

  /// Builds the scored candidate list for `target_day` from a given MPJP
  /// key set without caching (exposed for benchmarks and ablations).
  Result<std::vector<ScoredMpjp>> ScoreCandidates(
      const std::vector<std::string>& mpjp_keys, DateId target_day);

 private:
  const catalog::Catalog* catalog_;
  MaxsonConfig config_;
  JsonPathCollector collector_;
  CacheRegistry registry_;
  std::unique_ptr<JsonPathPredictor> predictor_;
  std::unique_ptr<MaxsonParser> parser_;
  std::unique_ptr<engine::QueryEngine> engine_;
  std::unique_ptr<JsonPathCacher> cacher_;
};

}  // namespace maxson::core

#endif  // MAXSON_CORE_MAXSON_H_
