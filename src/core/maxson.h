#ifndef MAXSON_CORE_MAXSON_H_
#define MAXSON_CORE_MAXSON_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/options.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/cache_registry.h"
#include "core/cacher.h"
#include "core/collector.h"
#include "core/maxson_parser.h"
#include "core/predictor.h"
#include "core/scoring.h"
#include "engine/engine.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace maxson::core {

/// Top-level configuration of one Maxson deployment.
struct MaxsonConfig {
  std::string cache_root;  // directory holding cache tables
  /// When non-empty, the cache registry is loaded from this file at
  /// construction (if present) and saved after every midnight cycle, so
  /// cache state survives process restarts.
  std::string registry_path;
  uint64_t cache_budget_bytes = 64ull << 20;
  PredictorConfig predictor;
  engine::EngineConfig engine;
  /// Rows sampled per path when measuring B_j / P_j for the scoring
  /// function.
  size_t sample_rows = 200;
  /// When true, MPJPs are chosen randomly within the budget instead of by
  /// score (the Fig. 11 "random" baseline).
  bool random_selection = false;
  uint64_t random_seed = 5;
  /// Start recording trace spans (query stages, midnight cycle) right away;
  /// can also be toggled later through UpdateConfig.
  bool enable_tracing = false;
  /// Write cache files as CORC v3 with adaptive chunk encodings
  /// (dictionary / RLE / block compression, smallest wins per chunk).
  /// Off writes v2 plain chunks — byte-identical to pre-encoding builds.
  /// Query results are byte-identical either way; the knob trades cache
  /// bytes only.
  bool corc_encoding = true;
  /// Registry the session publishes its observability series into. Null
  /// uses the process-wide obs::MetricsRegistry::Global(); tests hand each
  /// session a private registry so runs can be compared in isolation. Not
  /// owned; must outlive the session.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Outcome of one midnight cache-population cycle.
struct MidnightReport {
  std::vector<std::string> predicted_mpjps;
  std::vector<ScoredMpjp> selected;
  CachingStats caching;
};

/// One validated configuration change applied through
/// MaxsonSession::UpdateConfig. Unset fields keep their current value; the
/// whole update is validated before any field is applied, so a rejected
/// update leaves the session untouched.
struct SessionUpdate {
  /// Parallelism degree of queries and midnight pre-parsing (0 = hardware
  /// concurrency, 1 = inline). Replaces the execution pool.
  std::optional<size_t> num_threads;
  /// Toggles trace-span recording.
  std::optional<bool> tracing;
  /// Toggles the Sparser-style raw-byte prefilter.
  std::optional<bool> raw_filter;
  /// Toggles the on-demand JSON parsing tier: selective path sets resolve
  /// by cursoring the SIMD structural tape instead of a full DOM parse
  /// (see json/ondemand_parser.h). Results are byte-identical either way.
  std::optional<bool> ondemand;
  /// Cache budget (bytes) of the next midnight cycle (0 = cache nothing,
  /// the Fig. 11 zero-budget baseline).
  std::optional<uint64_t> cache_budget_bytes;
  /// SIMD kernel level of the byte-scanning hot paths: "scalar", "sse2",
  /// "avx2", or "auto" (startup policy: MAXSON_FORCE_ISA env override, else
  /// the best supported level). Levels the host CPU cannot run are rejected.
  /// Results are byte-identical at every level — this knob trades speed
  /// only, for debugging and A/B measurement.
  std::optional<std::string> isa;
  /// Arms the process-wide storage fault injector for crash-consistency
  /// testing: "fail:N", "torn:N", "short:N", or "off" (see
  /// storage::FaultInjector). Malformed specs are rejected.
  std::optional<std::string> fault_injection;
  /// Toggles shared-scan coalescing: concurrent queries over one table
  /// merge into one parse pass per morsel (see exec/shared_scan.h).
  std::optional<bool> shared_scan;
  /// Target rows per shared-scan morsel (0 = one morsel per split).
  std::optional<uint64_t> morsel_rows;
  /// Toggles CORC v3 adaptive chunk encodings for cache files written from
  /// now on (off = v2 plain chunks; already-written files stay readable).
  std::optional<bool> corc_encoding;
};

/// Read-only snapshot of the session's internal counters, for display
/// (the shell's `.stats`) and assertions.
struct SessionStats {
  uint64_t rewrite_cache_hits = 0;
  uint64_t rewrite_cache_misses = 0;
  uint64_t rewrite_invalidations = 0;
  uint64_t registry_entries = 0;
  uint64_t registry_lookups = 0;
  uint64_t registry_lookup_hits = 0;
  size_t num_threads = 0;
  uint64_t pool_tasks_submitted = 0;
  uint64_t midnight_cycles = 0;
  uint64_t trace_events = 0;
  bool tracing_enabled = false;
  /// Name of the SIMD kernel level currently dispatched ("scalar", "sse2",
  /// "avx2").
  std::string simd_isa;
  /// Canonical armed fault-injection spec, or "off".
  std::string fault_injection;
  /// On-demand parsing tier knob (see json/ondemand_parser.h).
  bool ondemand_enabled = false;
  /// Shared-scan knobs and lifetime totals (see exec/shared_scan.h; the
  /// totals are scheduling counters, not deterministic query outcomes).
  bool shared_scan_enabled = false;
  uint64_t morsel_rows = 0;
  /// CORC v3 adaptive chunk encoding knob (see storage/encoding.h).
  bool corc_encoding_enabled = false;
  uint64_t sharedscan_subscribers = 0;
  uint64_t sharedscan_parse_passes = 0;
  uint64_t sharedscan_coalesced_parses = 0;
  uint64_t sharedscan_saved_bytes = 0;
};

/// The public facade tying Maxson's components together: a query engine
/// with the MaxsonParser installed, the collector feeding the predictor,
/// and the nightly predict -> score -> cache cycle of Fig. 5.
///
/// The surface is intent-named: callers record workload history
/// (RecordQuery/RecordTrace), run the nightly cycle, execute SQL, and
/// reconfigure through one validated UpdateConfig entry point. Component
/// access (collector(), registry(), parser(), predictor(), engine()) is
/// strictly read-only — every mutation of session state goes through a
/// session method, so invariants (shared pool, installed rewriter,
/// metrics publication) cannot be bypassed.
///
/// Typical use:
///   MaxsonSession session(&catalog, config);
///   session.RecordTrace(history);
///   session.TrainPredictor(first_day, last_day);
///   session.RunMidnightCycle(tomorrow);
///   auto result = session.Execute(sql);   // plans hit the cache
class MaxsonSession {
 public:
  MaxsonSession(const catalog::Catalog* catalog, MaxsonConfig config);

  // ---- Workload history (feeds the predictor and scoring) ----

  /// Records one executed query in the collector's statistics table.
  void RecordQuery(const workload::QueryRecord& query) {
    collector_.Record(query);
  }

  /// Records a whole trace of queries.
  void RecordTrace(const workload::Trace& trace) {
    collector_.RecordTrace(trace);
  }

  /// Trains the predictor on samples whose target days span
  /// [first_target_day, last_target_day].
  Status TrainPredictor(DateId first_target_day, DateId last_target_day);

  /// Predicts the MPJP keys of `target_day` from the recorded history.
  std::vector<std::string> PredictMpjps(DateId target_day) const {
    return predictor_->PredictMpjps(collector_, target_day);
  }

  /// Builds the scored candidate list for `target_day` from a given MPJP
  /// key set without caching (exposed for benchmarks and ablations).
  Result<std::vector<ScoredMpjp>> ScoreCandidates(
      const std::vector<std::string>& mpjp_keys, DateId target_day);

  // ---- Cache lifecycle ----

  /// The nightly cycle for `target_day`: predict the MPJPs the coming day
  /// will access, score them (Eq. 1-3) with sampled B_j/P_j, select within
  /// the budget, and pre-parse the winners into cache tables. Publishes
  /// maxson_midnight_* metrics to the session's registry.
  Result<MidnightReport> RunMidnightCycle(DateId target_day);

  /// Pre-parses an externally chosen selection into cache tables (the
  /// Fig. 11 sweep drives this directly, bypassing prediction), emptying
  /// the registry first like a midnight cycle does.
  Result<CachingStats> CacheSelected(const std::vector<ScoredMpjp>& selected,
                                     DateId cache_time);

  /// Installs externally built cache entries (tables already on disk) into
  /// the registry — the Fig. 15 bench shares one pre-parsed cache table
  /// across per-backend sessions this way.
  void ImportCacheEntries(const std::vector<CacheEntry>& entries) {
    for (const CacheEntry& entry : entries) registry_.Put(entry);
  }

  /// Marks one cached path invalid (raw table changed); the next rewrite
  /// seeing it falls back to raw parsing.
  void InvalidateCache(const workload::JsonPathLocation& location) {
    registry_.Invalidate(location);
  }

  // ---- Execution ----

  /// Executes SQL through the Maxson-rewriting engine. Accepts SELECT and
  /// EXPLAIN [ANALYZE] SELECT.
  Result<engine::QueryResult> Execute(const std::string& sql) {
    return engine_->Execute(sql);
  }

  /// Executes SQL with plan rewriting disabled (the plain-Spark baseline on
  /// the same engine), regardless of cache state.
  Result<engine::QueryResult> ExecuteWithoutCache(const std::string& sql);

  /// Plans without executing, with the Maxson rewrite applied.
  Result<engine::PhysicalPlan> Plan(const std::string& sql) {
    return engine_->Plan(sql);
  }

  /// Plans without executing and without the Maxson rewrite (the Fig. 13
  /// plan-time comparison baseline).
  Result<engine::PhysicalPlan> PlanWithoutCache(const std::string& sql);

  // ---- Configuration ----

  /// Applies a validated configuration change. The whole update is checked
  /// first (invalid values reject the entire update with no effect), then
  /// applied atomically from the caller's perspective. Not thread-safe
  /// against in-flight queries or midnight cycles.
  Status UpdateConfig(const SessionUpdate& update);

  const MaxsonConfig& config() const { return config_; }

  // ---- Read-only component views ----

  const JsonPathCollector& collector() const { return collector_; }
  const CacheRegistry& registry() const { return registry_; }
  const engine::QueryEngine& engine() const { return *engine_; }
  const MaxsonParser& parser() const { return *parser_; }
  const JsonPathPredictor& predictor() const { return *predictor_; }

  /// The shared execution pool (query scans, operators, and midnight
  /// pre-parsing all fan out on it).
  const exec::ThreadPool& pool() const { return *engine_->pool(); }

  /// The metrics registry this session publishes into (config.metrics, or
  /// the process-wide Global()). Mutable on purpose: the registry is an
  /// external sink, not session state.
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// The session's trace recorder; dump with ToChromeTraceJson(). Enable
  /// recording through UpdateConfig{.tracing = true}.
  const obs::TraceRecorder& tracer() const { return trace_recorder_; }

  /// Drops all recorded trace events (recording stays on/off as is).
  void ClearTrace() { trace_recorder_.Clear(); }

  /// Snapshot of the session's internal counters.
  SessionStats stats() const;

 private:
  /// Flattened registry view for the plan validator, served from
  /// binding_cache_ and rebuilt only when the registry's version moved.
  /// Acquires CacheRegistry::mutex_ (via registry_.Snapshot) while holding
  /// binding_cache_mutex_ — the declared core-layer lock order.
  std::shared_ptr<const std::vector<engine::CacheBinding>>
  CacheBindingSnapshot() const MAXSON_EXCLUDES(binding_cache_mutex_);

  /// Publishes the dispatched SIMD level to the metrics registry: the
  /// maxson_simd_isa_level gauge (numeric level) and one
  /// maxson_simd_isa_info{isa=...} gauge per level (1 = active, 0 = not).
  void PublishIsaMetrics();

  const catalog::Catalog* catalog_;
  MaxsonConfig config_;
  obs::MetricsRegistry* metrics_;  // never null after construction
  obs::TraceRecorder trace_recorder_;
  JsonPathCollector collector_;
  CacheRegistry registry_;
  std::unique_ptr<JsonPathPredictor> predictor_;
  std::unique_ptr<MaxsonParser> parser_;
  std::unique_ptr<engine::QueryEngine> engine_;
  std::unique_ptr<JsonPathCacher> cacher_;
  uint64_t midnight_cycles_ = 0;
  /// Cached flattening of registry_ for the plan validator's binding
  /// checks, rebuilt only when registry_.version() moves past
  /// binding_cache_version_. Shared const so in-flight validations keep a
  /// consistent snapshot while a midnight cycle swaps in a fresh one.
  mutable Mutex binding_cache_mutex_;
  mutable std::shared_ptr<const std::vector<engine::CacheBinding>>
      binding_cache_ MAXSON_GUARDED_BY(binding_cache_mutex_);
  mutable uint64_t binding_cache_version_
      MAXSON_GUARDED_BY(binding_cache_mutex_) = ~0ull;
};

/// Registers the session's runtime knobs ("set KNOB VALUE") on `registry`:
/// threads, trace, rawfilter, ondemand, budget, isa, faultinject,
/// sharedscan, morselsize, corcencoding. Every setter routes through the
/// one validated
/// UpdateConfig
/// entry point, so registry-driven frontends (the shell) and programmatic
/// callers share identical validation. `session` must outlive the registry.
void RegisterSessionOptions(OptionRegistry* registry, MaxsonSession* session);

}  // namespace maxson::core

#endif  // MAXSON_CORE_MAXSON_H_
