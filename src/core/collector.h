#ifndef MAXSON_CORE_COLLECTOR_H_
#define MAXSON_CORE_COLLECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "workload/trace.h"

namespace maxson::core {

/// The JSONPath Collector of Fig. 5: ingests executed queries and maintains
/// the date-partitioned statistics table — for each JSONPath, its location
/// (database, table, column) and per-day access counts — that feeds the
/// predictor and the scoring function.
class JsonPathCollector {
 public:
  /// Records one executed query: every JSONPath it references counts one
  /// access on the query's date.
  void Record(const workload::QueryRecord& query);

  /// Records a whole trace.
  void RecordTrace(const workload::Trace& trace);

  /// Number of accesses of `key` on `date` (0 when unseen).
  int CountOn(const std::string& key, DateId date) const;

  /// Count sequence of `key` over [from, to) (missing days are zeros).
  std::vector<int> CountsBetween(const std::string& key, DateId from,
                                 DateId to) const;

  /// Location of a collected path.
  const workload::JsonPathLocation* Location(const std::string& key) const;

  /// Every path key ever observed.
  std::vector<std::string> Keys() const;

  /// The path keys accessed at least `min_count` times on `date` — with
  /// min_count = 2 this is the ground-truth MPJP set of that day.
  std::vector<std::string> PathsWithCountAtLeast(DateId date,
                                                 int min_count) const;

  /// Queries recorded on `date`, as path-key sets (used by the scoring
  /// function's relevance term and occurrence counts).
  const std::vector<std::vector<std::string>>& QueriesOn(DateId date) const;

  DateId max_date() const { return max_date_; }

  /// Serializes the statistics table (locations, per-day counts, per-day
  /// query path-sets) to JSON and back, so a long-running deployment can
  /// persist its history across restarts.
  std::string ToJson() const;
  static Result<JsonPathCollector> FromJson(const std::string& text);
  Status Save(const std::string& path) const;
  static Result<JsonPathCollector> Load(const std::string& path);

 private:
  struct PathStats {
    workload::JsonPathLocation location;
    std::map<DateId, int> counts;
  };
  std::map<std::string, PathStats> paths_;
  std::map<DateId, std::vector<std::vector<std::string>>> queries_by_date_;
  DateId max_date_ = -1;
  std::vector<std::vector<std::string>> empty_;
};

}  // namespace maxson::core

#endif  // MAXSON_CORE_COLLECTOR_H_
