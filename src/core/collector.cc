#include "core/collector.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "json/dom_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"

namespace maxson::core {

void JsonPathCollector::Record(const workload::QueryRecord& query) {
  std::vector<std::string> keys;
  keys.reserve(query.paths.size());
  for (const workload::JsonPathLocation& path : query.paths) {
    const std::string key = path.Key();
    PathStats& stats = paths_[key];
    if (stats.location.table.empty()) stats.location = path;
    ++stats.counts[query.date];
    keys.push_back(key);
  }
  queries_by_date_[query.date].push_back(std::move(keys));
  max_date_ = std::max(max_date_, query.date);
}

void JsonPathCollector::RecordTrace(const workload::Trace& trace) {
  for (const workload::QueryRecord& query : trace.queries) Record(query);
}

int JsonPathCollector::CountOn(const std::string& key, DateId date) const {
  auto it = paths_.find(key);
  if (it == paths_.end()) return 0;
  auto day = it->second.counts.find(date);
  return day == it->second.counts.end() ? 0 : day->second;
}

std::vector<int> JsonPathCollector::CountsBetween(const std::string& key,
                                                  DateId from,
                                                  DateId to) const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(std::max(0, to - from)));
  for (DateId d = from; d < to; ++d) out.push_back(CountOn(key, d));
  return out;
}

const workload::JsonPathLocation* JsonPathCollector::Location(
    const std::string& key) const {
  auto it = paths_.find(key);
  return it == paths_.end() ? nullptr : &it->second.location;
}

std::vector<std::string> JsonPathCollector::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(paths_.size());
  for (const auto& [key, stats] : paths_) keys.push_back(key);
  return keys;
}

std::vector<std::string> JsonPathCollector::PathsWithCountAtLeast(
    DateId date, int min_count) const {
  std::vector<std::string> out;
  for (const auto& [key, stats] : paths_) {
    auto day = stats.counts.find(date);
    if (day != stats.counts.end() && day->second >= min_count) {
      out.push_back(key);
    }
  }
  return out;
}

std::string JsonPathCollector::ToJson() const {
  using json::JsonValue;
  JsonValue root = JsonValue::Object();
  JsonValue paths = JsonValue::Array();
  for (const auto& [key, stats] : paths_) {
    JsonValue p = JsonValue::Object();
    p.Set("database", JsonValue::String(stats.location.database));
    p.Set("table", JsonValue::String(stats.location.table));
    p.Set("column", JsonValue::String(stats.location.column));
    p.Set("path", JsonValue::String(stats.location.path));
    JsonValue counts = JsonValue::Array();
    for (const auto& [date, count] : stats.counts) {
      JsonValue pair = JsonValue::Array();
      pair.Append(JsonValue::Int(date));
      pair.Append(JsonValue::Int(count));
      counts.Append(std::move(pair));
    }
    p.Set("counts", std::move(counts));
    paths.Append(std::move(p));
  }
  root.Set("paths", std::move(paths));

  JsonValue days = JsonValue::Array();
  for (const auto& [date, queries] : queries_by_date_) {
    JsonValue d = JsonValue::Object();
    d.Set("date", JsonValue::Int(date));
    JsonValue qs = JsonValue::Array();
    for (const std::vector<std::string>& query : queries) {
      JsonValue keys = JsonValue::Array();
      for (const std::string& key : query) {
        keys.Append(JsonValue::String(key));
      }
      qs.Append(std::move(keys));
    }
    d.Set("queries", std::move(qs));
    days.Append(std::move(d));
  }
  root.Set("days", std::move(days));
  return json::WriteJson(root);
}

Result<JsonPathCollector> JsonPathCollector::FromJson(
    const std::string& text) {
  MAXSON_ASSIGN_OR_RETURN(json::JsonValue root, json::ParseJson(text));
  if (!root.is_object()) return Status::ParseError("collector not an object");
  const json::JsonValue* paths = root.Find("paths");
  const json::JsonValue* days = root.Find("days");
  if (paths == nullptr || !paths->is_array() || days == nullptr ||
      !days->is_array()) {
    return Status::ParseError("collector JSON missing paths/days");
  }
  JsonPathCollector collector;
  for (const json::JsonValue& p : paths->elements()) {
    const json::JsonValue* database = p.Find("database");
    const json::JsonValue* table = p.Find("table");
    const json::JsonValue* column = p.Find("column");
    const json::JsonValue* path = p.Find("path");
    const json::JsonValue* counts = p.Find("counts");
    if (database == nullptr || table == nullptr || column == nullptr ||
        path == nullptr || counts == nullptr || !counts->is_array()) {
      return Status::ParseError("bad collector path entry");
    }
    PathStats stats;
    stats.location.database = database->string_value();
    stats.location.table = table->string_value();
    stats.location.column = column->string_value();
    stats.location.path = path->string_value();
    for (const json::JsonValue& pair : counts->elements()) {
      if (!pair.is_array() || pair.elements().size() != 2) {
        return Status::ParseError("bad count pair");
      }
      const DateId date = static_cast<DateId>(pair.At(0).int_value());
      stats.counts[date] = static_cast<int>(pair.At(1).int_value());
      collector.max_date_ = std::max(collector.max_date_, date);
    }
    collector.paths_[stats.location.Key()] = std::move(stats);
  }
  for (const json::JsonValue& d : days->elements()) {
    const json::JsonValue* date = d.Find("date");
    const json::JsonValue* queries = d.Find("queries");
    if (date == nullptr || queries == nullptr || !queries->is_array()) {
      return Status::ParseError("bad collector day entry");
    }
    auto& bucket =
        collector.queries_by_date_[static_cast<DateId>(date->int_value())];
    for (const json::JsonValue& q : queries->elements()) {
      std::vector<std::string> keys;
      for (const json::JsonValue& key : q.elements()) {
        keys.push_back(key.string_value());
      }
      bucket.push_back(std::move(keys));
    }
  }
  return collector;
}

Status JsonPathCollector::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  out << ToJson();
  out.close();
  if (out.fail()) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

Result<JsonPathCollector> JsonPathCollector::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

const std::vector<std::vector<std::string>>& JsonPathCollector::QueriesOn(
    DateId date) const {
  auto it = queries_by_date_.find(date);
  return it == queries_by_date_.end() ? empty_ : it->second;
}

}  // namespace maxson::core
