#include "core/maxson.h"

#include <algorithm>

#include "common/logging.h"
#include "common/time_util.h"
#include "exec/shared_scan.h"
#include "obs/metric_names.h"
#include "simd/isa.h"
#include "storage/file_system.h"

namespace maxson::core {

namespace {

/// Publishes one caching run's CORC encoding accounting. The raw/encoded
/// byte totals always move together; per-encoding chunk counters only
/// publish for encodings that actually won a chunk, so the label space
/// stays limited to encodings in use.
void PublishCorcEncodingMetrics(obs::MetricsRegistry* metrics,
                                const CachingStats& stats) {
  metrics->GetCounter(obs::kCorcRawBytes)->Increment(stats.corc_raw_bytes);
  metrics->GetCounter(obs::kCorcEncodedBytes)
      ->Increment(stats.corc_encoded_bytes);
  for (int e = 0; e < storage::kNumChunkEncodings; ++e) {
    if (stats.corc_chunks[e] == 0) continue;
    metrics
        ->GetCounter(obs::kCorcChunks,
                     {{"encoding", storage::ChunkEncodingName(
                                       static_cast<storage::ChunkEncoding>(e))}})
        ->Increment(stats.corc_chunks[e]);
  }
}

}  // namespace

MaxsonSession::MaxsonSession(const catalog::Catalog* catalog,
                             MaxsonConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  metrics_ = config_.metrics != nullptr ? config_.metrics
                                        : &obs::MetricsRegistry::Global();
  trace_recorder_.set_enabled(config_.enable_tracing);
  predictor_ = std::make_unique<JsonPathPredictor>(config_.predictor);
  parser_ = std::make_unique<MaxsonParser>(catalog_, &registry_);
  parser_->set_metrics_registry(metrics_);
  engine_ = std::make_unique<engine::QueryEngine>(catalog_, config_.engine);
  engine_->set_plan_rewriter(parser_.get());
  engine_->set_metrics_registry(metrics_);
  engine_->set_tracer(&trace_recorder_);
  // The PlanValidator checks every rewritten plan's cache placeholders
  // against the live registry; invalid entries stay listed (their files
  // remain on disk until the next midnight cycle deletes them), so only a
  // request for an entry the registry dropped entirely is dangling.
  engine_->set_cache_binding_source(
      [this] { return CacheBindingSnapshot(); });
  // Shared-scan groups are keyed by the registry version, so queries
  // planned across a cache invalidation (midnight cycle, InvalidateCache)
  // never coalesce onto passes executed against the old cache state.
  engine_->set_scan_validity_source([this] { return registry_.version(); });
  cacher_ = std::make_unique<JsonPathCacher>(catalog_, config_.cache_root,
                                             config_.engine.json_backend);
  // Queries and midnight pre-parsing share one pool, so a deployment's
  // worker count is a single knob and the two workloads interleave instead
  // of oversubscribing.
  cacher_->set_pool(engine_->pool());
  cacher_->set_format_version(config_.corc_encoding ? storage::kCorcVersionV3
                                                    : storage::kCorcVersion);
  if (!config_.registry_path.empty()) {
    auto loaded = CacheRegistry::Load(config_.registry_path);
    if (loaded.ok()) {
      registry_ = std::move(*loaded);
      MAXSON_LOG(Info) << "restored " << registry_.size()
                       << " cache entries from " << config_.registry_path;
    }
  }
  // The engine constructor applied config_.engine.force_isa; reflect the
  // level that actually dispatched (it may have been clamped to the host's
  // best) in this session's metrics.
  PublishIsaMetrics();
}

void MaxsonSession::PublishIsaMetrics() {
  const simd::Isa active = simd::ActiveIsa();
  metrics_->GetGauge(obs::kSimdIsaLevel)
      ->Set(static_cast<double>(static_cast<int>(active)));
  for (simd::Isa level : {simd::Isa::kScalar, simd::Isa::kSse2,
                          simd::Isa::kAvx2}) {
    metrics_->GetGauge(obs::kSimdIsaInfo, {{"isa", simd::IsaName(level)}})
        ->Set(level == active ? 1.0 : 0.0);
  }
}

std::shared_ptr<const std::vector<engine::CacheBinding>>
MaxsonSession::CacheBindingSnapshot() const {
  MutexLock lock(binding_cache_mutex_);
  // Read the version before Snapshot(): a mutation landing between the two
  // reads makes the cached copy stale-stamped, so the next call rebuilds.
  const uint64_t version = registry_.version();
  if (binding_cache_ == nullptr || version != binding_cache_version_) {
    auto bindings = std::make_shared<std::vector<engine::CacheBinding>>();
    const std::vector<CacheEntry> entries = registry_.Snapshot();
    bindings->reserve(entries.size());
    for (const CacheEntry& entry : entries) {
      bindings->push_back(
          engine::CacheBinding{entry.cache_table_dir, entry.cache_field});
    }
    binding_cache_ = std::move(bindings);
    binding_cache_version_ = version;
  }
  return binding_cache_;
}

Status MaxsonSession::TrainPredictor(DateId first_target_day,
                                     DateId last_target_day) {
  const std::vector<ml::Sample> samples =
      predictor_->BuildDataset(collector_, first_target_day, last_target_day);
  return predictor_->Train(samples);
}

Result<std::vector<ScoredMpjp>> MaxsonSession::ScoreCandidates(
    const std::vector<std::string>& mpjp_keys, DateId target_day) {
  // The scoring function uses the same queries as the predictor: the most
  // recent observed day's query set.
  const DateId reference_day = std::min(collector_.max_date(), target_day - 1);
  const std::vector<std::vector<std::string>>& queries =
      collector_.QueriesOn(reference_day);
  const std::set<std::string> mpjp_set(mpjp_keys.begin(), mpjp_keys.end());

  std::vector<MpjpCandidate> candidates;
  for (const std::string& key : mpjp_keys) {
    const workload::JsonPathLocation* location = collector_.Location(key);
    if (location == nullptr) continue;
    auto table = catalog_->GetTable(location->database, location->table);
    if (!table.ok()) continue;  // path over a table this deployment lacks
    auto sampled =
        SampleTableStats(**table, location->column, location->path,
                         config_.sample_rows, config_.engine.json_backend);
    if (!sampled.ok()) continue;
    MpjpCandidate candidate;
    candidate.location = *location;
    candidate.avg_value_bytes = sampled->avg_value_bytes;
    candidate.avg_parse_seconds = sampled->avg_parse_seconds;
    candidate.estimated_cache_bytes = static_cast<uint64_t>(
        sampled->avg_value_bytes * static_cast<double>(sampled->table_rows));
    candidates.push_back(std::move(candidate));
  }
  return ScoreMpjps(candidates, queries, mpjp_set);
}

Result<MidnightReport> MaxsonSession::RunMidnightCycle(DateId target_day) {
  obs::TraceSpan cycle_span(&trace_recorder_, "midnight", "midnight");
  Stopwatch cycle_timer;
  MidnightReport report;
  {
    obs::TraceSpan span(&trace_recorder_, "midnight.predict", "midnight");
    report.predicted_mpjps = predictor_->PredictMpjps(collector_, target_day);
  }
  std::vector<ScoredMpjp> scored;
  {
    obs::TraceSpan span(&trace_recorder_, "midnight.score", "midnight");
    MAXSON_ASSIGN_OR_RETURN(
        scored, ScoreCandidates(report.predicted_mpjps, target_day));
  }
  report.selected =
      config_.random_selection
          ? SelectRandomWithinBudget(std::move(scored),
                                     config_.cache_budget_bytes,
                                     config_.random_seed)
          : SelectWithinBudget(std::move(scored), config_.cache_budget_bytes);
  {
    obs::TraceSpan span(&trace_recorder_, "midnight.cache", "midnight");
    MAXSON_ASSIGN_OR_RETURN(
        report.caching,
        cacher_->RepopulateCache(report.selected,
                                 static_cast<int64_t>(target_day),
                                 &registry_));
  }
  if (!config_.registry_path.empty()) {
    MAXSON_RETURN_NOT_OK(registry_.Save(config_.registry_path));
  }

  // Midnight outcome metrics. Counters carry only deterministic outcomes
  // (path and row counts, bytes written — merged in split order by the
  // cacher); the measured times go to gauges.
  ++midnight_cycles_;
  metrics_->GetCounter(obs::kMidnightCycles)->Increment();
  metrics_->GetCounter(obs::kMidnightPathsPredicted)
      ->Increment(report.predicted_mpjps.size());
  metrics_->GetCounter(obs::kMidnightPathsSelected)
      ->Increment(report.selected.size());
  metrics_->GetCounter(obs::kMidnightPathsCached)
      ->Increment(report.caching.paths_cached);
  metrics_->GetCounter(obs::kMidnightRowsParsed)
      ->Increment(report.caching.rows_parsed);
  metrics_->GetCounter(obs::kMidnightBytesWritten)
      ->Increment(report.caching.bytes_written);
  PublishCorcEncodingMetrics(metrics_, report.caching);
  metrics_->GetGauge(obs::kMidnightLastParseSeconds)
      ->Set(report.caching.parse_seconds);
  metrics_->GetGauge(obs::kMidnightLastTotalSeconds)
      ->Set(cycle_timer.ElapsedSeconds());
  metrics_->GetGauge(obs::kCacheEntries)
      ->Set(static_cast<double>(registry_.size()));
  return report;
}

Result<CachingStats> MaxsonSession::CacheSelected(
    const std::vector<ScoredMpjp>& selected, DateId cache_time) {
  obs::TraceSpan span(&trace_recorder_, "midnight.cache", "midnight");
  MAXSON_ASSIGN_OR_RETURN(
      CachingStats stats,
      cacher_->RepopulateCache(selected, static_cast<int64_t>(cache_time),
                               &registry_));
  metrics_->GetCounter(obs::kMidnightPathsCached)
      ->Increment(stats.paths_cached);
  metrics_->GetCounter(obs::kMidnightRowsParsed)
      ->Increment(stats.rows_parsed);
  metrics_->GetCounter(obs::kMidnightBytesWritten)
      ->Increment(stats.bytes_written);
  PublishCorcEncodingMetrics(metrics_, stats);
  metrics_->GetGauge(obs::kCacheEntries)
      ->Set(static_cast<double>(registry_.size()));
  return stats;
}

Result<engine::QueryResult> MaxsonSession::ExecuteWithoutCache(
    const std::string& sql) {
  engine_->set_plan_rewriter(nullptr);
  Result<engine::QueryResult> result = engine_->Execute(sql);
  engine_->set_plan_rewriter(parser_.get());
  return result;
}

Result<engine::PhysicalPlan> MaxsonSession::PlanWithoutCache(
    const std::string& sql) {
  engine_->set_plan_rewriter(nullptr);
  Result<engine::PhysicalPlan> plan = engine_->Plan(sql);
  engine_->set_plan_rewriter(parser_.get());
  return plan;
}

Status MaxsonSession::UpdateConfig(const SessionUpdate& update) {
  // Validate the whole update first so a rejection leaves no partial state.
  if (update.num_threads.has_value() && *update.num_threads > 1024) {
    return Status::InvalidArgument(
        "num_threads must be <= 1024 (0 = hardware concurrency), got " +
        std::to_string(*update.num_threads));
  }
  simd::Isa wanted_isa = simd::Isa::kScalar;
  if (update.isa.has_value() && *update.isa != "auto") {
    if (!simd::ParseIsa(*update.isa, &wanted_isa)) {
      return Status::InvalidArgument(
          "isa must be scalar|sse2|avx2|auto, got '" + *update.isa + "'");
    }
    if (wanted_isa > simd::BestSupportedIsa()) {
      return Status::InvalidArgument(
          "isa '" + *update.isa + "' not supported on this host (best: " +
          simd::IsaName(simd::BestSupportedIsa()) + ")");
    }
  }
  if (update.fault_injection.has_value()) {
    MAXSON_RETURN_NOT_OK(
        storage::FaultInjector::ValidateSpec(*update.fault_injection));
  }
  if (update.num_threads.has_value()) {
    engine_->set_num_threads(*update.num_threads);
    cacher_->set_pool(engine_->pool());
    config_.engine.num_threads = *update.num_threads;
  }
  if (update.tracing.has_value()) {
    trace_recorder_.set_enabled(*update.tracing);
    config_.enable_tracing = *update.tracing;
  }
  if (update.raw_filter.has_value()) {
    config_.engine.enable_raw_filter = *update.raw_filter;
    engine_->set_raw_filter(*update.raw_filter);
  }
  if (update.ondemand.has_value()) {
    config_.engine.enable_ondemand = *update.ondemand;
    engine_->set_ondemand(*update.ondemand);
  }
  if (update.cache_budget_bytes.has_value()) {
    config_.cache_budget_bytes = *update.cache_budget_bytes;
  }
  if (update.isa.has_value()) {
    if (*update.isa == "auto") {
      simd::ResetIsa();
    } else {
      simd::ForceIsa(wanted_isa);
    }
    config_.engine.force_isa = *update.isa;
    PublishIsaMetrics();
  }
  if (update.fault_injection.has_value()) {
    // Pre-validated above, so Configure cannot fail here.
    MAXSON_RETURN_NOT_OK(
        storage::FaultInjector::Instance().Configure(*update.fault_injection));
  }
  if (update.shared_scan.has_value()) {
    engine_->set_shared_scan(*update.shared_scan);
    config_.engine.enable_shared_scan = *update.shared_scan;
  }
  if (update.morsel_rows.has_value()) {
    engine_->set_morsel_rows(static_cast<size_t>(*update.morsel_rows));
    config_.engine.morsel_rows = static_cast<size_t>(*update.morsel_rows);
  }
  if (update.corc_encoding.has_value()) {
    config_.corc_encoding = *update.corc_encoding;
    cacher_->set_format_version(*update.corc_encoding
                                    ? storage::kCorcVersionV3
                                    : storage::kCorcVersion);
  }
  return Status::Ok();
}

SessionStats MaxsonSession::stats() const {
  SessionStats stats;
  stats.rewrite_cache_hits = parser_->cache_hits();
  stats.rewrite_cache_misses = parser_->cache_misses();
  stats.rewrite_invalidations = parser_->invalidations();
  stats.registry_entries = registry_.size();
  stats.registry_lookups = registry_.lookups();
  stats.registry_lookup_hits = registry_.lookup_hits();
  stats.num_threads = engine_->pool()->num_threads();
  stats.pool_tasks_submitted = engine_->pool()->tasks_submitted();
  stats.midnight_cycles = midnight_cycles_;
  stats.trace_events = trace_recorder_.size();
  stats.tracing_enabled = trace_recorder_.enabled();
  stats.simd_isa = simd::IsaName(simd::ActiveIsa());
  stats.fault_injection = storage::FaultInjector::Instance().spec();
  stats.ondemand_enabled = config_.engine.enable_ondemand;
  stats.shared_scan_enabled = config_.engine.enable_shared_scan;
  stats.morsel_rows = config_.engine.morsel_rows;
  stats.corc_encoding_enabled = config_.corc_encoding;
  const exec::SharedScanStats shared =
      engine_->shared_scan_manager()->stats();
  stats.sharedscan_subscribers = shared.subscribers;
  stats.sharedscan_parse_passes = shared.parse_passes;
  stats.sharedscan_coalesced_parses = shared.coalesced_parses;
  stats.sharedscan_saved_bytes = shared.saved_bytes;
  return stats;
}

void RegisterSessionOptions(OptionRegistry* registry, MaxsonSession* session) {
  registry->RegisterUint64("threads", "N", [session](uint64_t n) {
    SessionUpdate update;
    update.num_threads = static_cast<size_t>(n);
    return session->UpdateConfig(update);
  });
  registry->RegisterBool("trace", "on|off", [session](bool on) {
    SessionUpdate update;
    update.tracing = on;
    return session->UpdateConfig(update);
  });
  registry->RegisterBool("rawfilter", "on|off", [session](bool on) {
    SessionUpdate update;
    update.raw_filter = on;
    return session->UpdateConfig(update);
  });
  registry->RegisterBool("ondemand", "on|off", [session](bool on) {
    SessionUpdate update;
    update.ondemand = on;
    return session->UpdateConfig(update);
  });
  registry->RegisterUint64("budget", "BYTES", [session](uint64_t bytes) {
    SessionUpdate update;
    update.cache_budget_bytes = bytes;
    return session->UpdateConfig(update);
  });
  registry->RegisterString("isa", "scalar|sse2|avx2|auto",
                           [session](const std::string& level) {
                             SessionUpdate update;
                             update.isa = level;
                             return session->UpdateConfig(update);
                           });
  registry->RegisterString("faultinject", "fail:N|torn:N|short:N|off",
                           [session](const std::string& spec) {
                             SessionUpdate update;
                             update.fault_injection = spec;
                             return session->UpdateConfig(update);
                           });
  registry->RegisterBool("sharedscan", "on|off", [session](bool on) {
    SessionUpdate update;
    update.shared_scan = on;
    return session->UpdateConfig(update);
  });
  registry->RegisterUint64("morselsize", "ROWS", [session](uint64_t rows) {
    SessionUpdate update;
    update.morsel_rows = rows;
    return session->UpdateConfig(update);
  });
  registry->RegisterBool("corcencoding", "on|off", [session](bool on) {
    SessionUpdate update;
    update.corc_encoding = on;
    return session->UpdateConfig(update);
  });
}

}  // namespace maxson::core
