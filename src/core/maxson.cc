#include "core/maxson.h"

#include <algorithm>

#include "common/logging.h"

namespace maxson::core {

MaxsonSession::MaxsonSession(const catalog::Catalog* catalog,
                             MaxsonConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  predictor_ = std::make_unique<JsonPathPredictor>(config_.predictor);
  parser_ = std::make_unique<MaxsonParser>(catalog_, &registry_);
  engine_ = std::make_unique<engine::QueryEngine>(catalog_, config_.engine);
  engine_->set_plan_rewriter(parser_.get());
  cacher_ = std::make_unique<JsonPathCacher>(catalog_, config_.cache_root,
                                             config_.engine.json_backend);
  // Queries and midnight pre-parsing share one pool, so a deployment's
  // worker count is a single knob and the two workloads interleave instead
  // of oversubscribing.
  cacher_->set_pool(engine_->pool());
  if (!config_.registry_path.empty()) {
    auto loaded = CacheRegistry::Load(config_.registry_path);
    if (loaded.ok()) {
      registry_ = std::move(*loaded);
      MAXSON_LOG(Info) << "restored " << registry_.size()
                       << " cache entries from " << config_.registry_path;
    }
  }
}

Status MaxsonSession::TrainPredictor(DateId first_target_day,
                                     DateId last_target_day) {
  const std::vector<ml::Sample> samples =
      predictor_->BuildDataset(collector_, first_target_day, last_target_day);
  return predictor_->Train(samples);
}

Result<std::vector<ScoredMpjp>> MaxsonSession::ScoreCandidates(
    const std::vector<std::string>& mpjp_keys, DateId target_day) {
  // The scoring function uses the same queries as the predictor: the most
  // recent observed day's query set.
  const DateId reference_day = std::min(collector_.max_date(), target_day - 1);
  const std::vector<std::vector<std::string>>& queries =
      collector_.QueriesOn(reference_day);
  const std::set<std::string> mpjp_set(mpjp_keys.begin(), mpjp_keys.end());

  std::vector<MpjpCandidate> candidates;
  for (const std::string& key : mpjp_keys) {
    const workload::JsonPathLocation* location = collector_.Location(key);
    if (location == nullptr) continue;
    auto table = catalog_->GetTable(location->database, location->table);
    if (!table.ok()) continue;  // path over a table this deployment lacks
    auto sampled =
        SampleTableStats(**table, location->column, location->path,
                         config_.sample_rows, config_.engine.json_backend);
    if (!sampled.ok()) continue;
    MpjpCandidate candidate;
    candidate.location = *location;
    candidate.avg_value_bytes = sampled->avg_value_bytes;
    candidate.avg_parse_seconds = sampled->avg_parse_seconds;
    candidate.estimated_cache_bytes = static_cast<uint64_t>(
        sampled->avg_value_bytes * static_cast<double>(sampled->table_rows));
    candidates.push_back(std::move(candidate));
  }
  return ScoreMpjps(candidates, queries, mpjp_set);
}

Result<MidnightReport> MaxsonSession::RunMidnightCycle(DateId target_day) {
  MidnightReport report;
  report.predicted_mpjps = predictor_->PredictMpjps(collector_, target_day);
  MAXSON_ASSIGN_OR_RETURN(
      std::vector<ScoredMpjp> scored,
      ScoreCandidates(report.predicted_mpjps, target_day));
  report.selected =
      config_.random_selection
          ? SelectRandomWithinBudget(std::move(scored),
                                     config_.cache_budget_bytes,
                                     config_.random_seed)
          : SelectWithinBudget(std::move(scored), config_.cache_budget_bytes);
  MAXSON_ASSIGN_OR_RETURN(
      report.caching,
      cacher_->RepopulateCache(report.selected,
                               static_cast<int64_t>(target_day), &registry_));
  if (!config_.registry_path.empty()) {
    MAXSON_RETURN_NOT_OK(registry_.Save(config_.registry_path));
  }
  return report;
}

Result<engine::QueryResult> MaxsonSession::ExecuteWithoutCache(
    const std::string& sql) {
  engine_->set_plan_rewriter(nullptr);
  Result<engine::QueryResult> result = engine_->Execute(sql);
  engine_->set_plan_rewriter(parser_.get());
  return result;
}

}  // namespace maxson::core
