#include "core/predictor.h"

#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>

#include "json/dom_parser.h"
#include "json/json_writer.h"

namespace maxson::core {

const char* PredictorModelName(PredictorModel model) {
  switch (model) {
    case PredictorModel::kLogisticRegression:
      return "LR";
    case PredictorModel::kLinearSvm:
      return "SVM";
    case PredictorModel::kMlp:
      return "MLPClassifier";
    case PredictorModel::kLstm:
      return "LSTM";
    case PredictorModel::kLstmCrf:
      return "LSTM+CRF";
  }
  return "?";
}

namespace {

/// Stable small hash features of a location string, standing in for the
/// learned embeddings of database/table/column names.
double HashFeature(const std::string& s, uint64_t salt) {
  const uint64_t h = std::hash<std::string>()(s) ^ (salt * 0x9E3779B97F4A7C15ULL);
  return static_cast<double>(h % 1000) / 1000.0;
}

}  // namespace

ml::Sample JsonPathPredictor::BuildSample(const JsonPathCollector& collector,
                                          const std::string& key,
                                          DateId target_date) const {
  const int window = config_.window_days;
  const DateId first_day = target_date - window;
  ml::Sample sample;

  const workload::JsonPathLocation* location = collector.Location(key);
  const std::string db = location != nullptr ? location->database : "";
  const std::string table = location != nullptr ? location->table : "";
  const std::string column = location != nullptr ? location->column : "";

  double total = 0.0;
  double max_count = 0.0;
  double nonzero_days = 0.0;
  for (int t = 0; t < window; ++t) {
    const DateId day = first_day + t;
    const int count = day >= 0 ? collector.CountOn(key, day) : 0;
    const int next_count =
        day + 1 >= 0 ? collector.CountOn(key, day + 1) : 0;
    // Step features: log-scaled count, MPJP indicator of the day itself,
    // and the datediff (how old this observation is, normalized).
    std::vector<double> step = {
        std::log1p(static_cast<double>(count)),
        count >= 2 ? 1.0 : 0.0,
        static_cast<double>(window - t) / static_cast<double>(window),
    };
    sample.steps.push_back(std::move(step));
    sample.labels.push_back(next_count >= 2 ? 1 : 0);
    total += count;
    max_count = std::max(max_count, static_cast<double>(count));
    if (count > 0) nonzero_days += 1.0;
  }

  // Static features: location hashes plus orderless aggregates of the
  // window — what a model without date sequences can use.
  sample.static_features = {
      HashFeature(db, 1),
      HashFeature(table, 2),
      HashFeature(column, 3),
      HashFeature(key, 4),
      std::log1p(total),
      std::log1p(max_count),
      nonzero_days / static_cast<double>(window),
      1.0,  // bias-ish constant
  };
  return sample;
}

std::vector<ml::Sample> JsonPathPredictor::BuildDataset(
    const JsonPathCollector& collector, DateId first_target,
    DateId last_target) const {
  std::vector<ml::Sample> samples;
  const std::vector<std::string> keys = collector.Keys();
  for (DateId target = first_target; target <= last_target; ++target) {
    for (const std::string& key : keys) {
      samples.push_back(BuildSample(collector, key, target));
    }
  }
  return samples;
}

Status JsonPathPredictor::Train(const std::vector<ml::Sample>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  ml::LinearTrainConfig linear;
  linear.seed = config_.seed;
  ml::LstmConfig lstm;
  lstm.hidden_size = config_.lstm_hidden;
  lstm.epochs = config_.epochs;
  lstm.seed = config_.seed;
  switch (config_.model) {
    case PredictorModel::kLogisticRegression:
      lr_.Fit(samples, linear);
      break;
    case PredictorModel::kLinearSvm:
      svm_.Fit(samples, linear);
      break;
    case PredictorModel::kMlp: {
      ml::MlpConfig mlp;
      mlp.hidden_sizes = {50, 10};
      mlp.seed = config_.seed;
      mlp_.Fit(samples, mlp);
      break;
    }
    case PredictorModel::kLstm:
      lstm_.Fit(samples, lstm);
      break;
    case PredictorModel::kLstmCrf:
      lstm_crf_.Fit(samples, lstm);
      break;
  }
  trained_ = true;
  return Status::Ok();
}

int JsonPathPredictor::Predict(const ml::Sample& sample) const {
  if (!trained_) return 0;
  switch (config_.model) {
    case PredictorModel::kLogisticRegression:
      return lr_.Predict(sample);
    case PredictorModel::kLinearSvm:
      return svm_.Predict(sample);
    case PredictorModel::kMlp:
      return mlp_.Predict(sample);
    case PredictorModel::kLstm:
      return lstm_.Predict(sample);
    case PredictorModel::kLstmCrf:
      return lstm_crf_.Predict(sample);
  }
  return 0;
}

ml::BinaryMetrics JsonPathPredictor::Evaluate(
    const std::vector<ml::Sample>& samples) const {
  ml::BinaryMetrics metrics;
  for (const ml::Sample& sample : samples) {
    metrics.Add(Predict(sample), sample.final_label());
  }
  return metrics;
}

Status JsonPathPredictor::SaveModel(const std::string& path) const {
  if (!trained_) return Status::Internal("predictor not trained");
  json::JsonValue root = json::JsonValue::Object();
  root.Set("model", json::JsonValue::String(PredictorModelName(config_.model)));
  switch (config_.model) {
    case PredictorModel::kLstm:
      root.Set("params", lstm_.ToJson());
      break;
    case PredictorModel::kLstmCrf:
      root.Set("params", lstm_crf_.ToJson());
      break;
    default:
      return Status::Unimplemented(
          std::string("serialization for ") +
          PredictorModelName(config_.model));
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  out << json::WriteJson(root);
  out.close();
  if (out.fail()) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

Status JsonPathPredictor::LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  MAXSON_ASSIGN_OR_RETURN(json::JsonValue root,
                          json::ParseJson(buffer.str()));
  const json::JsonValue* model = root.Find("model");
  const json::JsonValue* params = root.Find("params");
  if (model == nullptr || params == nullptr) {
    return Status::ParseError("model file missing model/params");
  }
  if (model->string_value() != PredictorModelName(config_.model)) {
    return Status::InvalidArgument(
        "model file holds " + model->string_value() + " but predictor is " +
        PredictorModelName(config_.model));
  }
  switch (config_.model) {
    case PredictorModel::kLstm: {
      MAXSON_ASSIGN_OR_RETURN(lstm_, ml::LstmTagger::FromJson(*params));
      break;
    }
    case PredictorModel::kLstmCrf: {
      MAXSON_ASSIGN_OR_RETURN(lstm_crf_, ml::LstmCrf::FromJson(*params));
      break;
    }
    default:
      return Status::Unimplemented(
          std::string("serialization for ") +
          PredictorModelName(config_.model));
  }
  trained_ = true;
  return Status::Ok();
}

std::vector<std::string> JsonPathPredictor::PredictMpjps(
    const JsonPathCollector& collector, DateId target_date) const {
  std::vector<std::string> predicted;
  for (const std::string& key : collector.Keys()) {
    const ml::Sample sample = BuildSample(collector, key, target_date);
    if (Predict(sample) == 1) predicted.push_back(key);
  }
  return predicted;
}

}  // namespace maxson::core
