#include "core/scoring.h"

#include <algorithm>

#include "common/random.h"

namespace maxson::core {

std::vector<ScoredMpjp> ScoreMpjps(
    const std::vector<MpjpCandidate>& candidates,
    const std::vector<std::vector<std::string>>& queries,
    const std::set<std::string>& mpjp_keys) {
  // Precompute per-query M_i (paths that are MPJPs) and N_i (all paths).
  struct QueryCounts {
    uint64_t mpjp_count = 0;
    uint64_t path_count = 0;
  };
  std::vector<QueryCounts> per_query(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    per_query[i].path_count = queries[i].size();
    for (const std::string& key : queries[i]) {
      if (mpjp_keys.count(key) != 0) ++per_query[i].mpjp_count;
    }
  }

  std::vector<ScoredMpjp> scored;
  scored.reserve(candidates.size());
  for (const MpjpCandidate& candidate : candidates) {
    ScoredMpjp s;
    s.candidate = candidate;
    const std::string key = candidate.location.Key();

    uint64_t sum_m = 0;
    uint64_t sum_n = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      // Queries that access MPJP_j.
      if (std::find(queries[i].begin(), queries[i].end(), key) !=
          queries[i].end()) {
        ++s.occurrences;
        sum_m += per_query[i].mpjp_count;
        sum_n += per_query[i].path_count;
      }
    }
    s.relevance = sum_n == 0 ? 0.0
                             : static_cast<double>(sum_m) /
                                   static_cast<double>(sum_n);
    s.acceleration_per_byte =
        candidate.avg_value_bytes <= 0.0
            ? 0.0
            : candidate.avg_parse_seconds / candidate.avg_value_bytes;
    s.score = s.acceleration_per_byte * s.relevance *
              static_cast<double>(s.occurrences);
    scored.push_back(std::move(s));
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredMpjp& a, const ScoredMpjp& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.candidate.location.Key() < b.candidate.location.Key();
            });
  return scored;
}

namespace {

std::vector<ScoredMpjp> TakeWhileFits(std::vector<ScoredMpjp> ordered,
                                      uint64_t budget_bytes) {
  std::vector<ScoredMpjp> selected;
  uint64_t used = 0;
  for (ScoredMpjp& s : ordered) {
    const uint64_t bytes = s.candidate.estimated_cache_bytes;
    if (used + bytes > budget_bytes) continue;  // try smaller later entries
    used += bytes;
    selected.push_back(std::move(s));
  }
  return selected;
}

}  // namespace

std::vector<ScoredMpjp> SelectWithinBudget(std::vector<ScoredMpjp> scored,
                                           uint64_t budget_bytes) {
  // `scored` is already in descending score order from ScoreMpjps.
  return TakeWhileFits(std::move(scored), budget_bytes);
}

std::vector<ScoredMpjp> SelectRandomWithinBudget(
    std::vector<ScoredMpjp> scored, uint64_t budget_bytes, uint64_t seed) {
  Rng rng(seed);
  rng.Shuffle(&scored);
  return TakeWhileFits(std::move(scored), budget_bytes);
}

}  // namespace maxson::core
