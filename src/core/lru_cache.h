#ifndef MAXSON_CORE_LRU_CACHE_H_
#define MAXSON_CORE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace maxson::core {

/// Byte-budgeted LRU cache over JSONPath values: the conventional online
/// caching baseline of Section V-E. Keys are JSONPath keys (optionally
/// combined with a data version); values are charged by their byte size.
/// On access-miss the caller parses and inserts; eviction removes the
/// least-recently-used entries until the budget holds.
class LruValueCache {
 public:
  explicit LruValueCache(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Looks up `key`, promoting it to most-recently-used on hit.
  bool Get(const std::string& key);

  /// Inserts (or refreshes) `key` charging `bytes`; evicts LRU entries as
  /// needed. Entries larger than the whole capacity are not admitted.
  void Put(const std::string& key, uint64_t bytes);

  /// Drops every entry (e.g. when the underlying data version changes).
  void Clear();

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t size() const { return entries_.size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRatio() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

 private:
  struct Entry {
    std::string key;
    uint64_t bytes;
  };

  void EvictUntilFits();

  uint64_t capacity_bytes_;
  uint64_t used_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace maxson::core

#endif  // MAXSON_CORE_LRU_CACHE_H_
