#ifndef MAXSON_CORE_CACHER_H_
#define MAXSON_CORE_CACHER_H_

#include <string>
#include <vector>

#include <memory>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/cache_registry.h"
#include "core/scoring.h"
#include "engine/engine.h"
#include "exec/thread_pool.h"
#include "storage/corc_format.h"
#include "workload/trace.h"

namespace maxson::core {

/// Sampled per-path statistics used by the scoring function: B_j from a
/// sample of splits, P_j measured with the same parsing algorithm the
/// engine uses (Section IV-B).
struct SampledPathStats {
  double avg_value_bytes = 1.0;
  double avg_parse_seconds = 0.0;
  uint64_t table_rows = 0;
};

/// Reads up to `sample_rows` records from the first split of the table and
/// measures the average parsed-value size and parse time of `path`.
Result<SampledPathStats> SampleTableStats(
    const catalog::TableInfo& table, const std::string& column,
    const std::string& path, size_t sample_rows,
    engine::JsonBackend backend);

/// Accounting of one caching run (pre-parsing cost appears in Fig. 11's
/// "cache overhead" discussion).
struct CachingStats {
  uint64_t paths_cached = 0;
  uint64_t rows_parsed = 0;
  uint64_t bytes_written = 0;
  double parse_seconds = 0.0;
  double total_seconds = 0.0;
  /// CORC encoding accounting across every cache file written this run
  /// (plain bytes in, encoded bytes out, chunks by winning encoding) —
  /// the source of the maxson_corc_*_total metric series.
  uint64_t corc_raw_bytes = 0;
  uint64_t corc_encoded_bytes = 0;
  uint64_t corc_chunks[storage::kNumChunkEncodings] = {0, 0, 0, 0};

  /// Folds a per-split partial into this total (splits pre-parse in
  /// parallel into private stats, merged in split order). parse_seconds
  /// then sums CPU time across workers and may exceed wall time.
  void Add(const CachingStats& other) {
    paths_cached += other.paths_cached;
    rows_parsed += other.rows_parsed;
    bytes_written += other.bytes_written;
    parse_seconds += other.parse_seconds;
    total_seconds += other.total_seconds;
    corc_raw_bytes += other.corc_raw_bytes;
    corc_encoded_bytes += other.corc_encoded_bytes;
    for (int e = 0; e < storage::kNumChunkEncodings; ++e) {
      corc_chunks[e] += other.corc_chunks[e];
    }
  }
};

/// The JSONPath Cacher of Section IV-C: at cache-population time (midnight)
/// it parses the values of the selected MPJPs out of each raw table and
/// writes them into a cache table with one cache file per raw part file —
/// same row counts, same row-group size — so the engine's dual readers can
/// align rows by split index and share row-group skips. All MPJPs of one
/// raw table land in one cache table; fields are named after the column
/// and JSONPath; the registry is updated with cache_time = `cache_time`.
///
/// Splits pre-parse in parallel on the session's shared pool (set_pool);
/// each split task owns its reader, writer, speculative parser, and stats,
/// so tasks share nothing but the immutable path work list. Without a pool
/// splits run sequentially, matching the single-threaded cacher exactly.
class JsonPathCacher {
 public:
  JsonPathCacher(const catalog::Catalog* catalog, std::string cache_root,
                 engine::JsonBackend backend = engine::JsonBackend::kDom)
      : catalog_(catalog),
        cache_root_(std::move(cache_root)),
        backend_(backend) {}

  /// Installs the thread pool split pre-parsing fans out on (shared with
  /// the query engine; null reverts to sequential caching).
  void set_pool(std::shared_ptr<exec::ThreadPool> pool) {
    pool_ = std::move(pool);
  }

  /// CORC format version for cache files written from now on: v3 (adaptive
  /// chunk encodings, the default) or v2 (plain chunks). Drives the
  /// `set corcencoding on|off` session knob; already-written files are
  /// unaffected — the reader handles both.
  void set_format_version(uint32_t version) { format_version_ = version; }

  /// Empties the registry and deletes existing cache tables (the nightly
  /// "emptied and re-populated" step), then caches `selected` in order.
  Result<CachingStats> RepopulateCache(const std::vector<ScoredMpjp>& selected,
                                       int64_t cache_time,
                                       CacheRegistry* registry);

 private:
  Status CacheTablePaths(const std::string& database, const std::string& table,
                         const std::vector<workload::JsonPathLocation>& paths,
                         int64_t cache_time, CacheRegistry* registry,
                         CachingStats* stats);

  const catalog::Catalog* catalog_;
  std::string cache_root_;
  engine::JsonBackend backend_;
  uint32_t format_version_ = storage::kCorcVersionV3;
  std::shared_ptr<exec::ThreadPool> pool_;
};

}  // namespace maxson::core

#endif  // MAXSON_CORE_CACHER_H_
