#include "storage/corc_writer.h"

#include <cstring>

#include "json/json_value.h"
#include "json/json_writer.h"
#include "simd/kernels.h"

namespace maxson::storage {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

json::JsonValue ValueToJson(const Value& v) {
  using json::JsonValue;
  if (v.is_null()) return JsonValue::Null();
  if (v.is_bool()) return JsonValue::Bool(v.bool_value());
  if (v.is_int64()) return JsonValue::Int(v.int64_value());
  if (v.is_double()) return JsonValue::Double(v.double_value());
  return JsonValue::String(v.string_value());
}

}  // namespace

CorcWriter::CorcWriter(std::string path, Schema schema,
                       CorcWriterOptions options)
    : path_(std::move(path)),
      schema_(std::move(schema)),
      options_(options),
      buffer_(schema_) {}

CorcWriter::~CorcWriter() {
  if (open_ && !closed_) {
    Status st = Close();
    if (!st.ok()) {
      MAXSON_LOG(Error) << "CorcWriter::Close in destructor failed: " << st;
    }
  }
}

Status CorcWriter::Open() {
  file_.open(path_, std::ios::binary | std::ios::trunc);
  if (!file_.is_open()) {
    return Status::IoError("cannot open " + path_ + " for writing");
  }
  file_.write(kCorcMagic, kCorcMagicLen);
  file_offset_ = kCorcMagicLen;
  open_ = true;
  return Status::Ok();
}

Status CorcWriter::WriteBatch(const RecordBatch& batch) {
  if (!open_) return Status::Internal("CorcWriter not opened");
  if (batch.num_columns() != schema_.num_fields()) {
    return Status::InvalidArgument("batch column count mismatch");
  }
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    MAXSON_RETURN_NOT_OK(AppendRow(batch.GetRow(r)));
  }
  return Status::Ok();
}

Status CorcWriter::AppendRow(const std::vector<Value>& row) {
  if (!open_) return Status::Internal("CorcWriter not opened");
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  buffer_.AppendRow(row);
  ++rows_written_;
  if (buffer_.num_rows() >= options_.rows_per_stripe) {
    return FlushStripe();
  }
  return Status::Ok();
}

namespace {

/// Folds a candidate into the running min/max with ColumnStats::Update's
/// tie-breaking (first value wins on Compare() == 0).
void FoldMinMax(const Value& v, ColumnStats* stats) {
  if (stats->min.is_null() || v.Compare(stats->min) < 0) stats->min = v;
  if (stats->max.is_null() || v.Compare(stats->max) > 0) stats->max = v;
}

}  // namespace

void CorcWriter::EncodeRowGroup(const ColumnVector& column, size_t begin,
                                size_t end, std::string* out,
                                ColumnStats* stats) const {
  if (column.type() == TypeKind::kString) {
    // Variable-width: per-row lengths drive the encoding, so the original
    // row-at-a-time loop stays.
    for (size_t i = begin; i < end; ++i) {
      out->push_back(column.IsNull(i) ? 1 : 0);
    }
    for (size_t i = begin; i < end; ++i) {
      stats->Update(column.GetValue(i));
      if (column.IsNull(i)) {
        PutU32(0, out);  // null slots still encode a zero length
        continue;
      }
      const std::string& s = column.GetString(i);
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
    }
    return;
  }

  // Fixed-width types: the ColumnVector invariant (null bytes are exactly
  // 0/1, null rows hold the zero default in their typed slot) makes whole
  // slices byte-identical to the per-row encoding, so the null section and
  // value section append as single bulk copies.
  const size_t rows = end - begin;
  const uint8_t* null_bytes = column.nulls().data() + begin;
  out->append(reinterpret_cast<const char*>(null_bytes), rows);
  const uint64_t nulls = simd::CountNonZeroBytes(null_bytes, rows);
  stats->value_count += rows;
  stats->null_count += nulls;

  switch (column.type()) {
    case TypeKind::kBool: {
      out->append(reinterpret_cast<const char*>(column.bools().data() + begin),
                  rows);
      for (size_t i = begin; i < end; ++i) {
        if (!column.IsNull(i)) FoldMinMax(Value::Bool(column.GetBool(i)), stats);
      }
      break;
    }
    case TypeKind::kInt64: {
      const int64_t* values = column.ints().data() + begin;
      out->append(reinterpret_cast<const char*>(values), rows * 8);
      if (nulls == 0 && rows > 0) {
        int64_t mn;
        int64_t mx;
        simd::MinMaxInt64(values, rows, &mn, &mx);
        FoldMinMax(Value::Int64(mn), stats);
        FoldMinMax(Value::Int64(mx), stats);
      } else {
        for (size_t i = begin; i < end; ++i) {
          if (!column.IsNull(i)) {
            FoldMinMax(Value::Int64(column.GetInt64(i)), stats);
          }
        }
      }
      break;
    }
    case TypeKind::kDouble: {
      const double* values = column.doubles().data() + begin;
      out->append(reinterpret_cast<const char*>(values), rows * 8);
      if (nulls == 0 && rows > 0) {
        double mn;
        double mx;
        simd::MinMaxDouble(values, rows, &mn, &mx);
        FoldMinMax(Value::Double(mn), stats);
        FoldMinMax(Value::Double(mx), stats);
      } else {
        for (size_t i = begin; i < end; ++i) {
          if (column.IsNull(i)) continue;
          double v = column.GetDouble(i);
          if (v == 0.0) v = 0.0;  // match the kernel's +0.0 canonicalization
          FoldMinMax(Value::Double(v), stats);
        }
      }
      break;
    }
    case TypeKind::kString:
      break;  // handled above
  }
}

Status CorcWriter::FlushStripe() {
  const size_t rows = buffer_.num_rows();
  if (rows == 0) return Status::Ok();

  StripeInfo stripe;
  stripe.num_rows = rows;
  stripe.columns.resize(schema_.num_fields());

  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const ColumnVector& column = buffer_.column(c);
    for (size_t begin = 0; begin < rows; begin += options_.rows_per_group) {
      const size_t end = std::min<size_t>(begin + options_.rows_per_group, rows);
      std::string chunk;
      RowGroupInfo rg;
      EncodeRowGroup(column, begin, end, &chunk, &rg.stats);
      rg.offset = file_offset_;
      rg.length = chunk.size();
      file_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      file_offset_ += chunk.size();
      stripe.columns[c].row_groups.push_back(std::move(rg));
    }
  }
  stripes_.push_back(std::move(stripe));
  buffer_ = RecordBatch(schema_);
  if (!file_.good()) return Status::IoError("write failed on " + path_);
  return Status::Ok();
}

Status CorcWriter::Close() {
  if (closed_) return Status::Ok();
  if (!open_) return Status::Internal("CorcWriter not opened");
  MAXSON_RETURN_NOT_OK(FlushStripe());

  using json::JsonValue;
  JsonValue footer = JsonValue::Object();
  JsonValue fields = JsonValue::Array();
  for (const Field& f : schema_.fields()) {
    JsonValue fj = JsonValue::Object();
    fj.Set("name", JsonValue::String(f.name));
    fj.Set("type", JsonValue::Int(static_cast<int>(f.type)));
    fields.Append(std::move(fj));
  }
  footer.Set("fields", std::move(fields));
  footer.Set("rows_per_group",
             JsonValue::Int(static_cast<int64_t>(options_.rows_per_group)));
  footer.Set("num_rows", JsonValue::Int(static_cast<int64_t>(rows_written_)));

  JsonValue stripes = JsonValue::Array();
  for (const StripeInfo& s : stripes_) {
    JsonValue sj = JsonValue::Object();
    sj.Set("num_rows", JsonValue::Int(static_cast<int64_t>(s.num_rows)));
    JsonValue cols = JsonValue::Array();
    for (const ColumnChunkInfo& c : s.columns) {
      JsonValue groups = JsonValue::Array();
      for (const RowGroupInfo& rg : c.row_groups) {
        JsonValue gj = JsonValue::Object();
        gj.Set("offset", JsonValue::Int(static_cast<int64_t>(rg.offset)));
        gj.Set("length", JsonValue::Int(static_cast<int64_t>(rg.length)));
        gj.Set("min", ValueToJson(rg.stats.min));
        gj.Set("max", ValueToJson(rg.stats.max));
        gj.Set("nulls",
               JsonValue::Int(static_cast<int64_t>(rg.stats.null_count)));
        gj.Set("values",
               JsonValue::Int(static_cast<int64_t>(rg.stats.value_count)));
        groups.Append(std::move(gj));
      }
      JsonValue cj = JsonValue::Object();
      cj.Set("row_groups", std::move(groups));
      cols.Append(std::move(cj));
    }
    sj.Set("columns", std::move(cols));
    stripes.Append(std::move(sj));
  }
  footer.Set("stripes", std::move(stripes));

  const std::string footer_text = json::WriteJson(footer);
  file_.write(footer_text.data(),
              static_cast<std::streamsize>(footer_text.size()));
  std::string tail;
  PutU32(static_cast<uint32_t>(footer_text.size()), &tail);
  tail.append(kCorcMagic, kCorcMagicLen);
  file_.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  file_.close();
  closed_ = true;
  if (file_.fail()) return Status::IoError("close failed on " + path_);
  return Status::Ok();
}

}  // namespace maxson::storage
