#include "storage/corc_writer.h"

#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "json/json_value.h"
#include "json/json_writer.h"
#include "simd/kernels.h"
#include "storage/encoding.h"
#include "storage/file_system.h"

namespace maxson::storage {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

const char* MagicForVersion(uint32_t version) {
  return version >= kCorcVersionV3 ? kCorcMagicV3 : kCorcMagic;
}

json::JsonValue ValueToJson(const Value& v) {
  using json::JsonValue;
  if (v.is_null()) return JsonValue::Null();
  if (v.is_bool()) return JsonValue::Bool(v.bool_value());
  if (v.is_int64()) return JsonValue::Int(v.int64_value());
  if (v.is_double()) return JsonValue::Double(v.double_value());
  return JsonValue::String(v.string_value());
}

}  // namespace

CorcWriter::CorcWriter(std::string path, Schema schema,
                       CorcWriterOptions options)
    : path_(std::move(path)),
      schema_(std::move(schema)),
      options_(options),
      buffer_(schema_) {}

CorcWriter::~CorcWriter() {
  if (open_ && !closed_) {
    // Publishing from a destructor would commit a file nobody verified; an
    // abandoned writer means the caller never saw Close() succeed, so the
    // only safe exit is to drop the staged bytes.
    MAXSON_LOG(Warning) << "CorcWriter for " << path_
                        << " destroyed without Close(); aborting staged file";
    Status st = Abort();
    if (!st.ok()) {
      MAXSON_LOG(Error) << "CorcWriter::Abort in destructor failed: " << st;
    }
  }
}

Status CorcWriter::Open() {
  if (options_.format_version != kCorcVersion &&
      options_.format_version != kCorcVersionV3) {
    return Status::InvalidArgument(
        "CorcWriterOptions::format_version must be 2 or 3, got " +
        std::to_string(options_.format_version));
  }
  tmp_path_ = path_ + ".tmp";
  file_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!file_.is_open()) {
    return Status::IoError("cannot open " + tmp_path_ + " for writing");
  }
  open_ = true;
  MAXSON_RETURN_NOT_OK(
      WriteRaw(MagicForVersion(options_.format_version), kCorcMagicLen));
  file_offset_ = kCorcMagicLen;
  return Status::Ok();
}

Status CorcWriter::WriteRaw(const char* data, size_t n) {
  bool fail = false;
  const size_t allowed = FaultInjector::Instance().OnWrite(n, &fail);
  if (allowed > 0) {
    file_.write(data, static_cast<std::streamsize>(allowed));
  }
  if (fail) {
    file_.flush();  // a torn prefix persists, as after a real crash
    return Status::IoError("injected fault: write " + tmp_path_);
  }
  if (!file_.good()) return Status::IoError("write failed on " + tmp_path_);
  return Status::Ok();
}

Status CorcWriter::WriteBatch(const RecordBatch& batch) {
  if (!open_) return Status::Internal("CorcWriter not opened");
  if (batch.num_columns() != schema_.num_fields()) {
    return Status::InvalidArgument("batch column count mismatch");
  }
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    MAXSON_RETURN_NOT_OK(AppendRow(batch.GetRow(r)));
  }
  return Status::Ok();
}

Status CorcWriter::AppendRow(const std::vector<Value>& row) {
  if (!open_) return Status::Internal("CorcWriter not opened");
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  buffer_.AppendRow(row);
  ++rows_written_;
  if (buffer_.num_rows() >= options_.rows_per_stripe) {
    return FlushStripe();
  }
  return Status::Ok();
}

namespace {

/// Folds a candidate into the running min/max with ColumnStats::Update's
/// tie-breaking (first value wins on Compare() == 0).
void FoldMinMax(const Value& v, ColumnStats* stats) {
  if (stats->min.is_null() || v.Compare(stats->min) < 0) stats->min = v;
  if (stats->max.is_null() || v.Compare(stats->max) > 0) stats->max = v;
}

}  // namespace

Status CorcWriter::EncodeRowGroup(const ColumnVector& column, size_t begin,
                                  size_t end, std::string* out,
                                  ColumnStats* stats) const {
  if (column.type() == TypeKind::kString) {
    // Variable-width: per-row lengths drive the encoding, so the original
    // row-at-a-time loop stays.
    for (size_t i = begin; i < end; ++i) {
      out->push_back(column.IsNull(i) ? 1 : 0);
    }
    for (size_t i = begin; i < end; ++i) {
      stats->Update(column.GetValue(i));
      if (column.IsNull(i)) {
        PutU32(0, out);  // null slots still encode a zero length
        continue;
      }
      const std::string& s = column.GetString(i);
      // A >= 4 GiB value cannot be represented in the u32 length field; a
      // silently truncated length would still checksum cleanly, so reject
      // it before any bytes are staged.
      MAXSON_RETURN_NOT_OK(ValidateCorcStringSize(s.size()));
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
    }
    return Status::Ok();
  }

  // Fixed-width types: the ColumnVector invariant (null bytes are exactly
  // 0/1, null rows hold the zero default in their typed slot) makes whole
  // slices byte-identical to the per-row encoding, so the null section and
  // value section append as single bulk copies.
  const size_t rows = end - begin;
  const uint8_t* null_bytes = column.nulls().data() + begin;
  out->append(reinterpret_cast<const char*>(null_bytes), rows);
  const uint64_t nulls = simd::CountNonZeroBytes(null_bytes, rows);
  stats->value_count += rows;
  stats->null_count += nulls;

  switch (column.type()) {
    case TypeKind::kBool: {
      out->append(reinterpret_cast<const char*>(column.bools().data() + begin),
                  rows);
      for (size_t i = begin; i < end; ++i) {
        if (!column.IsNull(i)) FoldMinMax(Value::Bool(column.GetBool(i)), stats);
      }
      break;
    }
    case TypeKind::kInt64: {
      const int64_t* values = column.ints().data() + begin;
      out->append(reinterpret_cast<const char*>(values), rows * 8);
      if (nulls == 0 && rows > 0) {
        int64_t mn;
        int64_t mx;
        simd::MinMaxInt64(values, rows, &mn, &mx);
        FoldMinMax(Value::Int64(mn), stats);
        FoldMinMax(Value::Int64(mx), stats);
      } else {
        for (size_t i = begin; i < end; ++i) {
          if (!column.IsNull(i)) {
            FoldMinMax(Value::Int64(column.GetInt64(i)), stats);
          }
        }
      }
      break;
    }
    case TypeKind::kDouble: {
      const double* values = column.doubles().data() + begin;
      out->append(reinterpret_cast<const char*>(values), rows * 8);
      if (nulls == 0 && rows > 0) {
        double mn;
        double mx;
        simd::MinMaxDouble(values, rows, &mn, &mx);
        FoldMinMax(Value::Double(mn), stats);
        FoldMinMax(Value::Double(mx), stats);
      } else {
        for (size_t i = begin; i < end; ++i) {
          if (column.IsNull(i)) continue;
          double v = column.GetDouble(i);
          if (v == 0.0) v = 0.0;  // match the kernel's +0.0 canonicalization
          FoldMinMax(Value::Double(v), stats);
        }
      }
      break;
    }
    case TypeKind::kString:
      break;  // handled above
  }
  return Status::Ok();
}

Status CorcWriter::FlushStripe() {
  const size_t rows = buffer_.num_rows();
  if (rows == 0) return Status::Ok();

  StripeInfo stripe;
  stripe.num_rows = rows;
  stripe.columns.resize(schema_.num_fields());

  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const ColumnVector& column = buffer_.column(c);
    for (size_t begin = 0; begin < rows; begin += options_.rows_per_group) {
      const size_t end = std::min<size_t>(begin + options_.rows_per_group, rows);
      std::string plain;
      RowGroupInfo rg;
      MAXSON_RETURN_NOT_OK(EncodeRowGroup(column, begin, end, &plain,
                                          &rg.stats));
      rg.raw_length = plain.size();
      // v3 stores each chunk under the smallest applicable encoding (plain
      // is the floor); v2 always stores the plain bytes. The CRC covers
      // the encoded bytes — exactly what a later read must verify.
      std::string chunk;
      if (options_.format_version >= kCorcVersionV3) {
        rg.encoding =
            EncodeChunkAdaptive(column.type(), end - begin, plain, &chunk);
      } else {
        rg.encoding = ChunkEncoding::kPlain;
        chunk = std::move(plain);
      }
      rg.offset = file_offset_;
      rg.length = chunk.size();
      rg.crc = simd::Crc32c(reinterpret_cast<const uint8_t*>(chunk.data()),
                            chunk.size());
      write_stats_.raw_bytes += rg.raw_length;
      write_stats_.encoded_bytes += chunk.size();
      ++write_stats_.chunks[static_cast<int>(rg.encoding)];
      MAXSON_RETURN_NOT_OK(WriteRaw(chunk.data(), chunk.size()));
      file_offset_ += chunk.size();
      stripe.columns[c].row_groups.push_back(std::move(rg));
    }
  }
  stripes_.push_back(std::move(stripe));
  buffer_ = RecordBatch(schema_);
  return Status::Ok();
}

Status CorcWriter::Close() {
  if (closed_) return Status::Ok();
  if (!open_) return Status::Internal("CorcWriter not opened");
  Status st = FinishAndPublish();
  if (st.ok()) {
    closed_ = true;
    return st;
  }
  // A failed publish must leave nothing behind: drop the staged file and
  // report the original failure (an Abort failure is secondary).
  Status abort_st = Abort();
  if (!abort_st.ok()) {
    MAXSON_LOG(Error) << "CorcWriter::Abort after failed Close: " << abort_st;
  }
  return st;
}

Status CorcWriter::Abort() {
  if (closed_) return Status::Ok();
  if (!open_) return Status::Internal("CorcWriter not opened");
  closed_ = true;
  if (file_.is_open()) file_.close();
  return FileSystem::RemoveAll(tmp_path_);
}

Status CorcWriter::FinishAndPublish() {
  MAXSON_RETURN_NOT_OK(FlushStripe());

  using json::JsonValue;
  JsonValue footer = JsonValue::Object();
  JsonValue fields = JsonValue::Array();
  for (const Field& f : schema_.fields()) {
    JsonValue fj = JsonValue::Object();
    fj.Set("name", JsonValue::String(f.name));
    fj.Set("type", JsonValue::Int(static_cast<int>(f.type)));
    fields.Append(std::move(fj));
  }
  footer.Set("fields", std::move(fields));
  footer.Set("version",
             JsonValue::Int(static_cast<int64_t>(options_.format_version)));
  footer.Set("rows_per_group",
             JsonValue::Int(static_cast<int64_t>(options_.rows_per_group)));
  footer.Set("num_rows", JsonValue::Int(static_cast<int64_t>(rows_written_)));

  JsonValue stripes = JsonValue::Array();
  for (const StripeInfo& s : stripes_) {
    JsonValue sj = JsonValue::Object();
    sj.Set("num_rows", JsonValue::Int(static_cast<int64_t>(s.num_rows)));
    JsonValue cols = JsonValue::Array();
    for (const ColumnChunkInfo& c : s.columns) {
      JsonValue groups = JsonValue::Array();
      for (const RowGroupInfo& rg : c.row_groups) {
        JsonValue gj = JsonValue::Object();
        gj.Set("offset", JsonValue::Int(static_cast<int64_t>(rg.offset)));
        gj.Set("length", JsonValue::Int(static_cast<int64_t>(rg.length)));
        gj.Set("crc", JsonValue::Int(static_cast<int64_t>(rg.crc)));
        gj.Set("min", ValueToJson(rg.stats.min));
        gj.Set("max", ValueToJson(rg.stats.max));
        gj.Set("nulls",
               JsonValue::Int(static_cast<int64_t>(rg.stats.null_count)));
        gj.Set("values",
               JsonValue::Int(static_cast<int64_t>(rg.stats.value_count)));
        if (options_.format_version >= kCorcVersionV3) {
          // v2 footers must stay byte-identical to pre-encoding writers, so
          // the encoding keys only appear in v3 files.
          gj.Set("enc", JsonValue::Int(static_cast<int64_t>(rg.encoding)));
          gj.Set("raw_len",
                 JsonValue::Int(static_cast<int64_t>(rg.raw_length)));
        }
        groups.Append(std::move(gj));
      }
      JsonValue cj = JsonValue::Object();
      cj.Set("row_groups", std::move(groups));
      cols.Append(std::move(cj));
    }
    sj.Set("columns", std::move(cols));
    stripes.Append(std::move(sj));
  }
  footer.Set("stripes", std::move(stripes));

  const std::string footer_text = json::WriteJson(footer);
  MAXSON_RETURN_NOT_OK(WriteRaw(footer_text.data(), footer_text.size()));
  std::string tail;
  PutU32(simd::Crc32c(reinterpret_cast<const uint8_t*>(footer_text.data()),
                      footer_text.size()),
         &tail);
  PutU32(static_cast<uint32_t>(footer_text.size()), &tail);
  tail.append(MagicForVersion(options_.format_version), kCorcMagicLen);
  MAXSON_RETURN_NOT_OK(WriteRaw(tail.data(), tail.size()));
  file_.close();
  if (file_.fail()) return Status::IoError("close failed on " + tmp_path_);

  // Durable publish: the staged bytes reach disk before the rename makes
  // them visible, and the directory entry itself is then synced.
  MAXSON_RETURN_NOT_OK(FileSystem::SyncFile(tmp_path_));
  MAXSON_RETURN_NOT_OK(FileSystem::RenameFile(tmp_path_, path_));
  std::string parent = std::filesystem::path(path_).parent_path().string();
  if (parent.empty()) parent = ".";
  return FileSystem::SyncDir(parent);
}

}  // namespace maxson::storage
