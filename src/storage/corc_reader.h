#ifndef MAXSON_STORAGE_CORC_READER_H_
#define MAXSON_STORAGE_CORC_READER_H_

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/corc_format.h"
#include "storage/record_batch.h"
#include "storage/sarg.h"

namespace maxson::storage {

/// Byte- and row-level accounting of a read, surfaced by the engine's
/// metrics (Fig. 12's "Input Size" comparison).
struct ReadStats {
  uint64_t bytes_read = 0;
  uint64_t rows_read = 0;
  uint64_t row_groups_read = 0;
  uint64_t row_groups_skipped = 0;

  void Add(const ReadStats& other) {
    bytes_read += other.bytes_read;
    rows_read += other.rows_read;
    row_groups_read += other.row_groups_read;
    row_groups_skipped += other.row_groups_skipped;
  }
};

/// Reader for one CORC file.
///
/// Supports column projection, SARG-driven row-group skipping, and —
/// crucially for Maxson's Algorithm 3 — reading with an externally supplied
/// row-group inclusion vector, so a PrimaryReader can skip exactly the row
/// groups that the CacheReader's SARG evaluation excluded.
class CorcReader {
 public:
  explicit CorcReader(std::string path);

  CorcReader(const CorcReader&) = delete;
  CorcReader& operator=(const CorcReader&) = delete;

  /// Opens the file, verifies its magics and footer checksum (v2), and
  /// decodes the footer. Structurally invalid or checksum-failing files
  /// yield Status::Corruption, which callers holding a redundant copy of
  /// the data (the dual reader) treat as "re-derive from the raw file";
  /// environmental failures stay IoError.
  Status Open();

  const CorcFooter& footer() const { return footer_; }
  const Schema& schema() const { return footer_.schema; }
  uint64_t num_rows() const { return footer_.num_rows; }
  size_t num_stripes() const { return footer_.stripes.size(); }

  /// Evaluates `sarg` against the row-group statistics of stripe `stripe`
  /// and returns one include/exclude flag per row group (true = must read).
  /// This is the array that Algorithm 3 shares between readers.
  Result<std::vector<bool>> ComputeRowGroupInclusion(
      size_t stripe, const SearchArgument& sarg) const;

  /// Reads the projected `columns` (indexes into the schema) of stripe
  /// `stripe`. When `include` is provided, only the flagged row groups are
  /// fetched and decoded; rows from skipped groups are absent from the
  /// output batch. Read accounting accumulates into `stats` when non-null.
  Result<RecordBatch> ReadStripe(size_t stripe,
                                 const std::vector<int>& columns,
                                 const std::optional<std::vector<bool>>& include,
                                 ReadStats* stats);

  /// Convenience: read every column of every stripe (no skipping).
  Result<RecordBatch> ReadAll(ReadStats* stats);

 private:
  Status DecodeRowGroup(const RowGroupInfo& rg, TypeKind type, size_t rows,
                        ColumnVector* out, ReadStats* stats);

  std::string path_;
  std::ifstream file_;
  CorcFooter footer_;
  uint64_t file_size_ = 0;
  bool open_ = false;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_CORC_READER_H_
