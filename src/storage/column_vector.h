#ifndef MAXSON_STORAGE_COLUMN_VECTOR_H_
#define MAXSON_STORAGE_COLUMN_VECTOR_H_

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/types.h"

namespace maxson::storage {

/// Typed column of cells with a validity vector. Storage is one contiguous
/// typed array per column (plus a byte-per-row null vector), the layout the
/// CORC reader decodes into and the engine's operators consume.
class ColumnVector {
 public:
  explicit ColumnVector(TypeKind type = TypeKind::kString) : type_(type) {}

  TypeKind type() const { return type_; }
  size_t size() const { return nulls_.size(); }

  bool IsNull(size_t i) const { return nulls_[i] != 0; }

  void AppendNull() {
    nulls_.push_back(1);
    AppendDefaultSlot();
  }
  void AppendBool(bool v) {
    MAXSON_CHECK(type_ == TypeKind::kBool);
    nulls_.push_back(0);
    bools_.push_back(v ? 1 : 0);
  }
  void AppendInt64(int64_t v) {
    MAXSON_CHECK(type_ == TypeKind::kInt64);
    nulls_.push_back(0);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    MAXSON_CHECK(type_ == TypeKind::kDouble);
    nulls_.push_back(0);
    doubles_.push_back(v);
  }
  void AppendString(std::string v) {
    MAXSON_CHECK(type_ == TypeKind::kString);
    nulls_.push_back(0);
    strings_.push_back(std::move(v));
  }
  /// Appends any Value; NULL and type-matching values only.
  void AppendValue(const Value& v);

  /// Moves every cell of `other` (same type) onto the end of this column;
  /// `other` is left empty. Bulk path for merging per-split scan buffers.
  void AppendColumn(ColumnVector&& other) {
    MAXSON_CHECK(type_ == other.type_);
    nulls_.insert(nulls_.end(), other.nulls_.begin(), other.nulls_.end());
    bools_.insert(bools_.end(), other.bools_.begin(), other.bools_.end());
    ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
    doubles_.insert(doubles_.end(), other.doubles_.begin(),
                    other.doubles_.end());
    strings_.insert(strings_.end(),
                    std::make_move_iterator(other.strings_.begin()),
                    std::make_move_iterator(other.strings_.end()));
    other = ColumnVector(type_);
  }

  bool GetBool(size_t i) const { return bools_[i] != 0; }
  int64_t GetInt64(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }

  /// Boxes cell `i` into a Value (NULL-aware).
  Value GetValue(size_t i) const;

  /// Direct typed storage (reader/writer fast paths). The null vector holds
  /// exactly 0 or 1 per row and every null row's typed slot holds the zero
  /// default, so whole slices can be memcpy'd into the CORC row-group
  /// encoding without per-row normalization.
  std::vector<int64_t>& ints() { return ints_; }
  std::vector<double>& doubles() { return doubles_; }
  std::vector<std::string>& strings() { return strings_; }
  std::vector<uint8_t>& bools() { return bools_; }
  std::vector<uint8_t>& nulls() { return nulls_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  /// Sum of cell payload sizes, for cache budgeting and metrics.
  uint64_t ByteSize() const;

 private:
  void AppendDefaultSlot() {
    switch (type_) {
      case TypeKind::kBool:
        bools_.push_back(0);
        break;
      case TypeKind::kInt64:
        ints_.push_back(0);
        break;
      case TypeKind::kDouble:
        doubles_.push_back(0.0);
        break;
      case TypeKind::kString:
        strings_.emplace_back();
        break;
    }
  }

  TypeKind type_;
  std::vector<uint8_t> nulls_;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_COLUMN_VECTOR_H_
