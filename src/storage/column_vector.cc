#include "storage/column_vector.h"

namespace maxson::storage {

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeKind::kBool:
      AppendBool(v.bool_value());
      break;
    case TypeKind::kInt64:
      AppendInt64(v.is_int64() ? v.int64_value()
                               : static_cast<int64_t>(v.AsDouble()));
      break;
    case TypeKind::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case TypeKind::kString:
      AppendString(v.is_string() ? v.string_value() : v.ToString());
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case TypeKind::kBool:
      return Value::Bool(GetBool(i));
    case TypeKind::kInt64:
      return Value::Int64(GetInt64(i));
    case TypeKind::kDouble:
      return Value::Double(GetDouble(i));
    case TypeKind::kString:
      return Value::String(GetString(i));
  }
  return Value::Null();
}

uint64_t ColumnVector::ByteSize() const {
  uint64_t total = nulls_.size();  // one byte of validity per row
  switch (type_) {
    case TypeKind::kBool:
      total += bools_.size();
      break;
    case TypeKind::kInt64:
      total += ints_.size() * sizeof(int64_t);
      break;
    case TypeKind::kDouble:
      total += doubles_.size() * sizeof(double);
      break;
    case TypeKind::kString:
      for (const std::string& s : strings_) total += s.size() + 4;
      break;
  }
  return total;
}

}  // namespace maxson::storage
