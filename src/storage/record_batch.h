#ifndef MAXSON_STORAGE_RECORD_BATCH_H_
#define MAXSON_STORAGE_RECORD_BATCH_H_

#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/column_vector.h"
#include "storage/schema.h"

namespace maxson::storage {

/// A horizontal slice of a table: a schema plus one ColumnVector per field,
/// all the same length. The unit of data flow between engine operators.
class RecordBatch {
 public:
  RecordBatch() = default;
  explicit RecordBatch(Schema schema) : schema_(std::move(schema)) {
    columns_.reserve(schema_.num_fields());
    for (const Field& f : schema_.fields()) {
      columns_.emplace_back(f.type);
    }
  }

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }

  /// Appends a full row of boxed values (one per column).
  void AppendRow(const std::vector<Value>& row) {
    MAXSON_CHECK(row.size() == columns_.size());
    for (size_t i = 0; i < row.size(); ++i) {
      columns_[i].AppendValue(row[i]);
    }
  }

  /// Moves all rows of `other` (same schema shape) onto the end of this
  /// batch column-wise; `other` is left empty. Used to merge per-split /
  /// per-chunk buffers in deterministic order after parallel execution.
  void AppendBatch(RecordBatch&& other) {
    MAXSON_CHECK(other.columns_.size() == columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      columns_[i].AppendColumn(std::move(other.columns_[i]));
    }
  }

  /// Extracts row `i` as boxed values.
  std::vector<Value> GetRow(size_t i) const {
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (const ColumnVector& c : columns_) row.push_back(c.GetValue(i));
    return row;
  }

  uint64_t ByteSize() const {
    uint64_t total = 0;
    for (const ColumnVector& c : columns_) total += c.ByteSize();
    return total;
  }

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_RECORD_BATCH_H_
