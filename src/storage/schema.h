#ifndef MAXSON_STORAGE_SCHEMA_H_
#define MAXSON_STORAGE_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "storage/types.h"

namespace maxson::storage {

/// One column of a table schema.
struct Field {
  std::string name;
  TypeKind type = TypeKind::kString;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered set of fields. Lookup is by exact (case-sensitive) name, which
/// matches how the mini-engine resolves column references after lowering.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  void AddField(std::string name, TypeKind type) {
    fields_.push_back(Field{std::move(name), type});
  }

  /// Index of the named field, or -1 when absent.
  int FindField(std::string_view name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_SCHEMA_H_
