#ifndef MAXSON_STORAGE_CORC_FORMAT_H_
#define MAXSON_STORAGE_CORC_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/sarg.h"
#include "storage/schema.h"

namespace maxson::storage {

/// On-disk layout shared by the CORC writer and reader.
///
/// CORC ("Columnar ORC-like") is this repository's stand-in for Apache ORC.
/// The current version (v3) adds per-chunk encodings on top of the v2
/// end-to-end checksums:
///
///   magic "CORC3"
///   stripe 0: column 0 chunk stream, column 1 chunk stream, ...
///   stripe 1: ...
///   footer (JSON): schema, format version, per-stripe/per-column/
///                  per-row-group directory with byte ranges,
///                  min/max/null statistics, a CRC32C per chunk, and (v3)
///                  the chunk's encoding id and decoded ("raw") length
///   footer CRC32C (u32 LE, over the footer JSON bytes)
///   footer length (u32 LE)
///   magic "CORC3"
///
/// The versions share one tail shape and are distinguished by the trailing
/// magic. v1 files (magic "CORC1", no CRCs, tail = [footer_len][magic]) and
/// v2 files (magic "CORC2", plain chunks only) remain byte-identically
/// readable: v2 is exactly v3 with every chunk kPlain and no "enc"/
/// "raw_len" directory keys, and v1 additionally has nothing to verify.
///
/// Each column stream is the concatenation of independently decodable
/// row-group chunks (default 10,000 rows per group, Section IV-F), so a
/// reader can skip a row group without fetching its bytes — which is what
/// makes SARG pushdown save real I/O. In v3 each chunk is stored under the
/// smallest of several candidate encodings (see storage/encoding.h);
/// checksums always cover the encoded (on-disk) bytes.
inline constexpr char kCorcMagicV1[] = "CORC1";
inline constexpr char kCorcMagic[] = "CORC2";
inline constexpr char kCorcMagicV3[] = "CORC3";
inline constexpr size_t kCorcMagicLen = 5;
inline constexpr uint32_t kCorcVersionV1 = 1;
inline constexpr uint32_t kCorcVersion = 2;
inline constexpr uint32_t kCorcVersionV3 = 3;
inline constexpr uint32_t kDefaultRowsPerGroup = 10000;

/// How one row-group chunk's bytes are stored on disk (v3; earlier versions
/// are implicitly kPlain). The id is recorded per chunk in the footer
/// directory, so every chunk of a file can use a different encoding.
enum class ChunkEncoding : uint8_t {
  kPlain = 0,  // the v2 byte layout, verbatim
  kRle = 1,    // run-length encoded null/value sections (fixed-width types)
  kDict = 2,   // dictionary + per-row indexes (string columns)
  kBlock = 3,  // LZ4-style byte-oriented block compression of the chunk
};
inline constexpr int kNumChunkEncodings = 4;

/// Stable lowercase encoding name, for metric labels and logs.
inline const char* ChunkEncodingName(ChunkEncoding e) {
  switch (e) {
    case ChunkEncoding::kPlain:
      return "plain";
    case ChunkEncoding::kRle:
      return "rle";
    case ChunkEncoding::kDict:
      return "dict";
    case ChunkEncoding::kBlock:
      return "block";
  }
  return "?";
}

/// Directory entry for one row group of one column.
struct RowGroupInfo {
  uint64_t offset = 0;  // absolute file offset of the chunk
  uint64_t length = 0;  // encoded (on-disk) chunk length in bytes
  uint32_t crc = 0;     // CRC32C of the encoded chunk bytes (v2+; 0 in v1)
  ChunkEncoding encoding = ChunkEncoding::kPlain;  // v3; kPlain before
  uint64_t raw_length = 0;  // decoded (plain) chunk length in bytes
  ColumnStats stats;
};

/// Directory entry for one column within a stripe.
struct ColumnChunkInfo {
  std::vector<RowGroupInfo> row_groups;
};

/// Directory entry for one stripe.
struct StripeInfo {
  uint64_t num_rows = 0;
  std::vector<ColumnChunkInfo> columns;

  size_t num_row_groups() const {
    return columns.empty() ? 0 : columns[0].row_groups.size();
  }
};

/// Decoded footer of a CORC file.
struct CorcFooter {
  Schema schema;
  uint32_t version = kCorcVersionV1;  // set from the file's trailing magic
  uint32_t rows_per_group = kDefaultRowsPerGroup;
  uint64_t num_rows = 0;
  std::vector<StripeInfo> stripes;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_CORC_FORMAT_H_
