#ifndef MAXSON_STORAGE_CORC_FORMAT_H_
#define MAXSON_STORAGE_CORC_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/sarg.h"
#include "storage/schema.h"

namespace maxson::storage {

/// On-disk layout shared by the CORC writer and reader.
///
/// CORC ("Columnar ORC-like") is this repository's stand-in for Apache ORC.
/// The current version (v2) adds end-to-end checksums so storage corruption
/// is detected instead of decoded:
///
///   magic "CORC2"
///   stripe 0: column 0 chunk stream, column 1 chunk stream, ...
///   stripe 1: ...
///   footer (JSON): schema, format version, per-stripe/per-column/
///                  per-row-group directory with byte ranges,
///                  min/max/null statistics, and a CRC32C per chunk
///   footer CRC32C (u32 LE, over the footer JSON bytes)
///   footer length (u32 LE)
///   magic "CORC2"
///
/// v1 files (magic "CORC1", no CRCs, tail = [footer_len][magic]) remain
/// readable: the reader distinguishes the versions by the trailing magic
/// and simply has nothing to verify for v1.
///
/// Each column stream is the concatenation of independently decodable
/// row-group chunks (default 10,000 rows per group, Section IV-F), so a
/// reader can skip a row group without fetching its bytes — which is what
/// makes SARG pushdown save real I/O.
inline constexpr char kCorcMagicV1[] = "CORC1";
inline constexpr char kCorcMagic[] = "CORC2";
inline constexpr size_t kCorcMagicLen = 5;
inline constexpr uint32_t kCorcVersionV1 = 1;
inline constexpr uint32_t kCorcVersion = 2;
inline constexpr uint32_t kDefaultRowsPerGroup = 10000;

/// Directory entry for one row group of one column.
struct RowGroupInfo {
  uint64_t offset = 0;  // absolute file offset of the chunk
  uint64_t length = 0;  // chunk length in bytes
  uint32_t crc = 0;     // CRC32C of the chunk bytes (v2+; 0 in v1 files)
  ColumnStats stats;
};

/// Directory entry for one column within a stripe.
struct ColumnChunkInfo {
  std::vector<RowGroupInfo> row_groups;
};

/// Directory entry for one stripe.
struct StripeInfo {
  uint64_t num_rows = 0;
  std::vector<ColumnChunkInfo> columns;

  size_t num_row_groups() const {
    return columns.empty() ? 0 : columns[0].row_groups.size();
  }
};

/// Decoded footer of a CORC file.
struct CorcFooter {
  Schema schema;
  uint32_t version = kCorcVersionV1;  // set from the file's trailing magic
  uint32_t rows_per_group = kDefaultRowsPerGroup;
  uint64_t num_rows = 0;
  std::vector<StripeInfo> stripes;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_CORC_FORMAT_H_
