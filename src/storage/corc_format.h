#ifndef MAXSON_STORAGE_CORC_FORMAT_H_
#define MAXSON_STORAGE_CORC_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/sarg.h"
#include "storage/schema.h"

namespace maxson::storage {

/// On-disk layout shared by the CORC writer and reader.
///
/// CORC ("Columnar ORC-like") is this repository's stand-in for Apache ORC:
///
///   magic "CORC1"
///   stripe 0: column 0 chunk stream, column 1 chunk stream, ...
///   stripe 1: ...
///   footer (JSON): schema, per-stripe/per-column/per-row-group directory
///                  with byte ranges and min/max/null statistics
///   footer length (u32 LE)
///   magic "CORC1"
///
/// Each column stream is the concatenation of independently decodable
/// row-group chunks (default 10,000 rows per group, Section IV-F), so a
/// reader can skip a row group without fetching its bytes — which is what
/// makes SARG pushdown save real I/O.
inline constexpr char kCorcMagic[] = "CORC1";
inline constexpr size_t kCorcMagicLen = 5;
inline constexpr uint32_t kDefaultRowsPerGroup = 10000;

/// Directory entry for one row group of one column.
struct RowGroupInfo {
  uint64_t offset = 0;  // absolute file offset of the chunk
  uint64_t length = 0;  // chunk length in bytes
  ColumnStats stats;
};

/// Directory entry for one column within a stripe.
struct ColumnChunkInfo {
  std::vector<RowGroupInfo> row_groups;
};

/// Directory entry for one stripe.
struct StripeInfo {
  uint64_t num_rows = 0;
  std::vector<ColumnChunkInfo> columns;

  size_t num_row_groups() const {
    return columns.empty() ? 0 : columns[0].row_groups.size();
  }
};

/// Decoded footer of a CORC file.
struct CorcFooter {
  Schema schema;
  uint32_t rows_per_group = kDefaultRowsPerGroup;
  uint64_t num_rows = 0;
  std::vector<StripeInfo> stripes;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_CORC_FORMAT_H_
