#ifndef MAXSON_STORAGE_SARG_H_
#define MAXSON_STORAGE_SARG_H_

#include <string>
#include <vector>

#include "storage/types.h"

namespace maxson::storage {

/// Per-row-group column statistics maintained by the CORC writer and used by
/// SARG evaluation to skip row groups (the ORC "row index" of the paper).
struct ColumnStats {
  Value min;        // NULL when the group is all-null
  Value max;        // NULL when the group is all-null
  uint64_t null_count = 0;
  uint64_t value_count = 0;  // total rows including nulls

  bool all_null() const { return null_count == value_count; }

  /// Folds one cell into the statistics.
  void Update(const Value& v);
};

/// Three-valued answer of a SARG test against row-group statistics.
enum class SargResult {
  kNo,     // no row in the group can match; the group is skipped
  kMaybe,  // statistics cannot exclude the group; it must be read
};

/// Comparison operator of a SARG leaf.
enum class SargOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIsNull,
  kIsNotNull,
};

/// One leaf predicate: `column <op> literal`.
struct SargLeaf {
  std::string column;
  SargOp op = SargOp::kEq;
  Value literal;
};

/// Search ARGument: a conjunction of leaf predicates, the simplified
/// expression form that readers push down to row-group indexes (Section
/// IV-F). Only conjunctions are pushed down — a disjunction stays in the
/// engine's Filter operator — mirroring ORC's SearchArgument in practice.
class SearchArgument {
 public:
  SearchArgument() = default;

  void AddLeaf(SargLeaf leaf) { leaves_.push_back(std::move(leaf)); }
  const std::vector<SargLeaf>& leaves() const { return leaves_; }
  bool empty() const { return leaves_.empty(); }

  /// Tests one leaf against the statistics of its column.
  static SargResult EvaluateLeaf(const SargLeaf& leaf,
                                 const ColumnStats& stats);

  /// Tests the conjunction: kNo when any leaf excludes the group.
  /// `stats_for_column` resolves a leaf's column to its statistics; leaves on
  /// columns without statistics evaluate to kMaybe.
  template <typename StatsLookup>
  SargResult Evaluate(const StatsLookup& stats_for_column) const {
    for (const SargLeaf& leaf : leaves_) {
      const ColumnStats* stats = stats_for_column(leaf.column);
      if (stats == nullptr) continue;
      if (EvaluateLeaf(leaf, *stats) == SargResult::kNo) {
        return SargResult::kNo;
      }
    }
    return SargResult::kMaybe;
  }

 private:
  std::vector<SargLeaf> leaves_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_SARG_H_
