#include "storage/corc_reader.h"

#include <cstring>

#include "json/dom_parser.h"
#include "json/json_value.h"
#include "simd/kernels.h"
#include "storage/encoding.h"
#include "storage/file_system.h"

namespace maxson::storage {

namespace {

Value JsonToValue(const json::JsonValue& j) {
  using json::JsonType;
  switch (j.type()) {
    case JsonType::kNull:
      return Value::Null();
    case JsonType::kBool:
      return Value::Bool(j.bool_value());
    case JsonType::kInt:
      return Value::Int64(j.int_value());
    case JsonType::kDouble:
      return Value::Double(j.double_value());
    case JsonType::kString:
      return Value::String(j.string_value());
    default:
      return Value::Null();
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Coerces a reloaded footer stat back to the column's declared type.
///
/// Stats round-trip through the JSON footer, which can change their boxed
/// type: a double whose value happens to be integral reparses as Int64.
/// Pruning compares stats against query literals with Value::Compare, whose
/// mixed-type fallback is textual — an Int64-boxed 1234567 renders as
/// "1234567" while the Double it stood for renders as "1.23457e+06" — so a
/// drifted type can misorder against a string literal and prune a row group
/// that actually contains matching rows. Null stays null (all-null groups
/// carry no min/max); any other mismatch is corruption, not a guess.
Status CoerceStat(TypeKind type, Value* v, const std::string& path) {
  if (v->is_null()) return Status::Ok();
  switch (type) {
    case TypeKind::kBool:
      if (v->is_bool()) return Status::Ok();
      break;
    case TypeKind::kInt64:
      if (v->is_int64()) return Status::Ok();
      break;
    case TypeKind::kDouble:
      if (v->is_double()) return Status::Ok();
      if (v->is_int64()) {
        *v = Value::Double(static_cast<double>(v->int64_value()));
        return Status::Ok();
      }
      break;
    case TypeKind::kString:
      if (v->is_string()) return Status::Ok();
      break;
  }
  return Status::Corruption("footer stat type disagrees with column type in " +
                            path);
}

}  // namespace

CorcReader::CorcReader(std::string path) : path_(std::move(path)) {}

Status CorcReader::Open() {
  file_.open(path_, std::ios::binary);
  if (!file_.is_open()) {
    return Status::IoError("cannot open " + path_ + " for reading");
  }
  file_.seekg(0, std::ios::end);
  file_size_ = static_cast<uint64_t>(file_.tellg());
  // Smallest structurally possible file (v1): leading magic, empty footer,
  // footer length, trailing magic. Anything shorter — including an empty
  // or truncated file — cannot hold a tail worth parsing.
  if (file_size_ < 2 * kCorcMagicLen + 4) {
    return Status::Corruption(path_ + " is too small to be a CORC file");
  }

  char head[kCorcMagicLen];
  file_.seekg(0);
  file_.read(head, sizeof(head));
  char tail_magic[kCorcMagicLen];
  file_.seekg(static_cast<std::streamoff>(file_size_ - kCorcMagicLen));
  file_.read(tail_magic, sizeof(tail_magic));
  if (!file_.good()) return Status::IoError("magic read failed on " + path_);

  if (std::memcmp(tail_magic, kCorcMagicV3, kCorcMagicLen) == 0) {
    footer_.version = kCorcVersionV3;
  } else if (std::memcmp(tail_magic, kCorcMagic, kCorcMagicLen) == 0) {
    footer_.version = kCorcVersion;
  } else if (std::memcmp(tail_magic, kCorcMagicV1, kCorcMagicLen) == 0) {
    footer_.version = kCorcVersionV1;
  } else {
    return Status::Corruption(path_ + " has a bad trailing magic");
  }
  if (std::memcmp(head, tail_magic, kCorcMagicLen) != 0) {
    return Status::Corruption(path_ + " leading magic disagrees with tail");
  }

  // Tail layout: v1 [footer_len u32][magic], v2 [footer_crc u32]
  // [footer_len u32][magic]. All arithmetic stays in uint64_t so a
  // footer_len near UINT32_MAX cannot wrap a bounds check.
  const uint64_t tail_fixed =
      (footer_.version >= kCorcVersion ? 8u : 4u) + kCorcMagicLen;
  if (file_size_ < kCorcMagicLen + tail_fixed) {
    return Status::Corruption(path_ + " is too small for its format version");
  }
  char tail[12];
  file_.seekg(static_cast<std::streamoff>(file_size_ - tail_fixed));
  file_.read(tail, static_cast<std::streamsize>(tail_fixed - kCorcMagicLen));
  if (!file_.good()) return Status::IoError("tail read failed on " + path_);
  uint32_t footer_crc = 0;
  uint32_t footer_len = 0;
  if (footer_.version >= kCorcVersion) {
    footer_crc = GetU32(tail);
    footer_len = GetU32(tail + 4);
  } else {
    footer_len = GetU32(tail);
  }
  if (uint64_t{footer_len} + tail_fixed + kCorcMagicLen > file_size_) {
    return Status::Corruption(path_ + " footer length out of range");
  }

  std::string footer_text(footer_len, '\0');
  file_.seekg(
      static_cast<std::streamoff>(file_size_ - tail_fixed - footer_len));
  file_.read(footer_text.data(), footer_len);
  if (!file_.good()) return Status::IoError("footer read failed on " + path_);
  if (footer_.version >= kCorcVersion) {
    const uint32_t actual = simd::Crc32c(
        reinterpret_cast<const uint8_t*>(footer_text.data()),
        footer_text.size());
    if (actual != footer_crc) {
      return Status::Corruption(path_ + " footer checksum mismatch");
    }
  }

  Result<json::JsonValue> parsed = json::ParseJson(footer_text);
  if (!parsed.ok()) {
    return Status::Corruption(path_ + " footer does not parse: " +
                              parsed.status().message());
  }
  json::JsonValue footer = std::move(parsed).value();
  if (!footer.is_object()) {
    return Status::Corruption("footer is not an object in " + path_);
  }

  const json::JsonValue* fields = footer.Find("fields");
  const json::JsonValue* rows_per_group = footer.Find("rows_per_group");
  const json::JsonValue* num_rows = footer.Find("num_rows");
  const json::JsonValue* stripes = footer.Find("stripes");
  if (fields == nullptr || !fields->is_array() || rows_per_group == nullptr ||
      num_rows == nullptr || stripes == nullptr || !stripes->is_array()) {
    return Status::Corruption("footer missing required keys in " + path_);
  }
  if (const json::JsonValue* version = footer.Find("version");
      version != nullptr &&
      version->int_value() != static_cast<int64_t>(footer_.version)) {
    return Status::Corruption("footer version disagrees with magic in " +
                              path_);
  }

  Schema schema;
  for (const json::JsonValue& fj : fields->elements()) {
    const json::JsonValue* name = fj.Find("name");
    const json::JsonValue* type = fj.Find("type");
    if (name == nullptr || type == nullptr) {
      return Status::Corruption("bad field entry in footer of " + path_);
    }
    schema.AddField(name->string_value(),
                    static_cast<TypeKind>(type->int_value()));
  }
  footer_.schema = std::move(schema);
  if (rows_per_group->int_value() <= 0 ||
      rows_per_group->int_value() > static_cast<int64_t>(UINT32_MAX)) {
    // rows_per_group divides stripes into groups; zero would loop forever.
    return Status::Corruption("invalid rows_per_group in footer of " + path_);
  }
  footer_.rows_per_group = static_cast<uint32_t>(rows_per_group->int_value());
  if (num_rows->int_value() < 0) {
    return Status::Corruption("negative num_rows in footer of " + path_);
  }
  footer_.num_rows = static_cast<uint64_t>(num_rows->int_value());

  for (const json::JsonValue& sj : stripes->elements()) {
    StripeInfo stripe;
    const json::JsonValue* srows = sj.Find("num_rows");
    const json::JsonValue* cols = sj.Find("columns");
    if (srows == nullptr || cols == nullptr || !cols->is_array()) {
      return Status::Corruption("bad stripe entry in footer of " + path_);
    }
    if (srows->int_value() < 0) {
      return Status::Corruption("negative stripe rows in footer of " + path_);
    }
    stripe.num_rows = static_cast<uint64_t>(srows->int_value());
    for (const json::JsonValue& cj : cols->elements()) {
      const size_t col_idx = stripe.columns.size();
      if (col_idx >= footer_.schema.num_fields()) {
        return Status::Corruption(
            "stripe column count disagrees with schema in " + path_);
      }
      const TypeKind col_type = footer_.schema.field(col_idx).type;
      ColumnChunkInfo chunk;
      const json::JsonValue* groups = cj.Find("row_groups");
      if (groups == nullptr || !groups->is_array()) {
        return Status::Corruption("bad column entry in footer of " + path_);
      }
      for (const json::JsonValue& gj : groups->elements()) {
        RowGroupInfo rg;
        const json::JsonValue* offset = gj.Find("offset");
        const json::JsonValue* length = gj.Find("length");
        const json::JsonValue* crc = gj.Find("crc");
        const json::JsonValue* min = gj.Find("min");
        const json::JsonValue* max = gj.Find("max");
        const json::JsonValue* nulls = gj.Find("nulls");
        const json::JsonValue* values = gj.Find("values");
        if (offset == nullptr || length == nullptr || min == nullptr ||
            max == nullptr || nulls == nullptr || values == nullptr ||
            (footer_.version >= kCorcVersion && crc == nullptr)) {
          return Status::Corruption("bad row group entry in footer of " +
                                    path_);
        }
        if (offset->int_value() < 0 || length->int_value() < 0) {
          return Status::Corruption("negative chunk range in footer of " +
                                    path_);
        }
        rg.offset = static_cast<uint64_t>(offset->int_value());
        rg.length = static_cast<uint64_t>(length->int_value());
        // Every chunk must lie inside the data section that precedes the
        // footer; a directory pointing outside the file is corrupt even
        // when its own checksum holds.
        if (rg.offset < kCorcMagicLen || rg.length > file_size_ ||
            rg.offset > file_size_ - rg.length) {
          return Status::Corruption("chunk range out of bounds in footer of " +
                                    path_);
        }
        if (crc != nullptr) {
          rg.crc = static_cast<uint32_t>(crc->int_value());
        }
        if (footer_.version >= kCorcVersionV3) {
          const json::JsonValue* enc = gj.Find("enc");
          const json::JsonValue* raw_len = gj.Find("raw_len");
          if (enc == nullptr || raw_len == nullptr) {
            return Status::Corruption(
                "v3 row group missing encoding keys in footer of " + path_);
          }
          if (enc->int_value() < 0 ||
              enc->int_value() >= static_cast<int64_t>(kNumChunkEncodings)) {
            return Status::Corruption(
                "unknown chunk encoding id in footer of " + path_);
          }
          rg.encoding = static_cast<ChunkEncoding>(enc->int_value());
          // The decoded length gates every decode allocation; cap it here
          // so a hostile footer cannot request an arbitrary buffer.
          if (raw_len->int_value() < 0 ||
              static_cast<uint64_t>(raw_len->int_value()) >
                  kMaxDecodedChunkBytes) {
            return Status::Corruption(
                "decoded chunk length out of range in footer of " + path_);
          }
          rg.raw_length = static_cast<uint64_t>(raw_len->int_value());
        }
        rg.stats.min = JsonToValue(*min);
        rg.stats.max = JsonToValue(*max);
        MAXSON_RETURN_NOT_OK(CoerceStat(col_type, &rg.stats.min, path_));
        MAXSON_RETURN_NOT_OK(CoerceStat(col_type, &rg.stats.max, path_));
        rg.stats.null_count = static_cast<uint64_t>(nulls->int_value());
        rg.stats.value_count = static_cast<uint64_t>(values->int_value());
        chunk.row_groups.push_back(std::move(rg));
      }
      stripe.columns.push_back(std::move(chunk));
    }
    footer_.stripes.push_back(std::move(stripe));
  }

  // Directory consistency, validated once here so every later ReadStripe
  // and ComputeRowGroupInclusion can index columns[c].row_groups[g] without
  // re-checking: each stripe carries exactly one column entry per schema
  // field, every column of a stripe agrees on the group count, and that
  // count matches what the stripe's rows and rows_per_group imply.
  for (const StripeInfo& s : footer_.stripes) {
    if (s.columns.size() != footer_.schema.num_fields()) {
      return Status::Corruption("stripe column count disagrees with schema in " +
                                path_);
    }
    const uint64_t expected_groups =
        s.num_rows == 0
            ? 0
            : (s.num_rows + footer_.rows_per_group - 1) / footer_.rows_per_group;
    for (const ColumnChunkInfo& c : s.columns) {
      if (c.row_groups.size() != expected_groups) {
        return Status::Corruption(
            "row group count disagrees with stripe rows in " + path_);
      }
    }
  }
  open_ = true;
  return Status::Ok();
}

Result<std::vector<bool>> CorcReader::ComputeRowGroupInclusion(
    size_t stripe, const SearchArgument& sarg) const {
  if (stripe >= footer_.stripes.size()) {
    return Status::OutOfRange("stripe index out of range");
  }
  const StripeInfo& info = footer_.stripes[stripe];
  const size_t groups = info.num_row_groups();
  std::vector<bool> include(groups, true);
  if (sarg.empty()) return include;
  for (size_t g = 0; g < groups; ++g) {
    auto stats_for_column = [&](const std::string& name) -> const ColumnStats* {
      const int c = footer_.schema.FindField(name);
      if (c < 0) return nullptr;
      return &info.columns[static_cast<size_t>(c)].row_groups[g].stats;
    };
    include[g] = sarg.Evaluate(stats_for_column) != SargResult::kNo;
  }
  return include;
}

Status CorcReader::DecodeRowGroup(const RowGroupInfo& rg, TypeKind type,
                                  size_t rows, ColumnVector* out,
                                  ReadStats* stats) {
  std::string chunk(rg.length, '\0');
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(rg.offset));
  const size_t readable = FaultInjector::Instance().OnRead(chunk.size());
  file_.read(chunk.data(), static_cast<std::streamsize>(readable));
  if (!file_.good() || readable < chunk.size()) {
    return Status::Corruption("row group read truncated in " + path_);
  }
  if (footer_.version >= kCorcVersion) {
    const uint32_t actual = simd::Crc32c(
        reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size());
    if (actual != rg.crc) {
      return Status::Corruption("row group checksum mismatch in " + path_);
    }
  }
  if (stats != nullptr) {
    stats->bytes_read += rg.length;  // on-disk (encoded) bytes
    ++stats->row_groups_read;
  }

  // v3 chunks carry an encoding; decode back to the plain v2 layout before
  // the shared column decode below. The fast path (plain chunk, consistent
  // length) skips the copy entirely. The CRC above covered the encoded
  // bytes, so decode errors here mean a bad footer, not bit rot.
  if (footer_.version >= kCorcVersionV3 &&
      (rg.encoding != ChunkEncoding::kPlain || rg.raw_length != chunk.size())) {
    std::string plain;
    MAXSON_RETURN_NOT_OK(
        DecodeChunk(rg.encoding, type, rows, rg.raw_length, chunk, &plain));
    chunk = std::move(plain);
  }

  if (chunk.size() < rows) {
    return Status::Corruption("row group underflow in " + path_);
  }
  const char* nulls = chunk.data();
  const char* p = chunk.data() + rows;
  const char* chunk_end = chunk.data() + chunk.size();
  const size_t avail = static_cast<size_t>(chunk_end - p);

  // Expand the byte-per-row null vector into a bitmap once (dispatched
  // kernel), then decode the fixed-width value section with bulk copies.
  // Null slots are overwritten with the type's zero default so the decoded
  // column is byte-identical to the old per-row AppendNull path even for
  // files whose null slots hold garbage.
  const size_t words = simd::BitmapWords(rows);
  std::vector<uint64_t> null_bitmap(words, 0);
  simd::NullBytesToBitmap(reinterpret_cast<const uint8_t*>(nulls), rows,
                          null_bitmap.data());

  const auto append_nulls = [&] {
    std::vector<uint8_t>& out_nulls = out->nulls();
    const size_t base = out_nulls.size();
    out_nulls.resize(base + rows, 0);
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = null_bitmap[w];
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        out_nulls[base + w * simd::kWordBits + static_cast<size_t>(bit)] = 1;
      }
    }
  };

  switch (type) {
    case TypeKind::kBool: {
      if (avail < rows) return Status::Corruption("bool decode overflow in " + path_);
      append_nulls();
      std::vector<uint8_t>& bools = out->bools();
      const size_t base = bools.size();
      bools.resize(base + rows, 0);
      for (size_t i = 0; i < rows; ++i) {
        bools[base + i] = (p[i] != 0 && nulls[i] == 0) ? 1 : 0;
      }
      break;
    }
    case TypeKind::kInt64: {
      if (avail < rows * 8) return Status::Corruption("int decode overflow in " + path_);
      append_nulls();
      std::vector<int64_t>& ints = out->ints();
      const size_t base = ints.size();
      ints.resize(base + rows);
      std::memcpy(ints.data() + base, p, rows * 8);
      for (size_t w = 0; w < words; ++w) {
        uint64_t bits = null_bitmap[w];
        while (bits != 0) {
          const int bit = __builtin_ctzll(bits);
          bits &= bits - 1;
          ints[base + w * simd::kWordBits + static_cast<size_t>(bit)] = 0;
        }
      }
      break;
    }
    case TypeKind::kDouble: {
      if (avail < rows * 8) return Status::Corruption("double decode overflow in " + path_);
      append_nulls();
      std::vector<double>& doubles = out->doubles();
      const size_t base = doubles.size();
      doubles.resize(base + rows);
      std::memcpy(doubles.data() + base, p, rows * 8);
      for (size_t w = 0; w < words; ++w) {
        uint64_t bits = null_bitmap[w];
        while (bits != 0) {
          const int bit = __builtin_ctzll(bits);
          bits &= bits - 1;
          doubles[base + w * simd::kWordBits + static_cast<size_t>(bit)] = 0.0;
        }
      }
      break;
    }
    case TypeKind::kString: {
      // Variable-width: lengths gate every step, so keep the per-row loop.
      // Bounds checks compare remaining lengths, never advanced pointers: a
      // corrupt len near UINT32_MAX could push `p + len` past the end of the
      // chunk's allocation, and forming such a pointer is UB before any
      // comparison runs.
      for (size_t i = 0; i < rows; ++i) {
        if (static_cast<size_t>(chunk_end - p) < 4) return Status::Corruption("string decode overflow in " + path_);
        const uint32_t len = GetU32(p);
        p += 4;
        if (len > static_cast<size_t>(chunk_end - p)) return Status::Corruption("string data overflow in " + path_);
        if (nulls[i] != 0) {
          out->AppendNull();
        } else {
          out->AppendString(std::string(p, len));
        }
        p += len;
      }
      break;
    }
  }
  return Status::Ok();
}

Result<RecordBatch> CorcReader::ReadStripe(
    size_t stripe, const std::vector<int>& columns,
    const std::optional<std::vector<bool>>& include, ReadStats* stats) {
  if (!open_) return Status::Internal("CorcReader not opened");
  if (stripe >= footer_.stripes.size()) {
    return Status::OutOfRange("stripe index out of range");
  }
  const StripeInfo& info = footer_.stripes[stripe];
  const size_t groups = info.num_row_groups();
  if (include.has_value() && include->size() != groups) {
    return Status::InvalidArgument("inclusion vector size mismatch");
  }

  Schema out_schema;
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= footer_.schema.num_fields()) {
      return Status::OutOfRange("column index out of range");
    }
    out_schema.AddField(footer_.schema.field(static_cast<size_t>(c)).name,
                        footer_.schema.field(static_cast<size_t>(c)).type);
  }
  RecordBatch batch(out_schema);

  for (size_t g = 0; g < groups; ++g) {
    const size_t group_rows = std::min<size_t>(
        footer_.rows_per_group,
        info.num_rows - g * static_cast<size_t>(footer_.rows_per_group));
    if (include.has_value() && !(*include)[g]) {
      if (stats != nullptr) ++stats->row_groups_skipped;
      continue;
    }
    for (size_t ci = 0; ci < columns.size(); ++ci) {
      const size_t c = static_cast<size_t>(columns[ci]);
      MAXSON_RETURN_NOT_OK(DecodeRowGroup(info.columns[c].row_groups[g],
                                          out_schema.field(ci).type,
                                          group_rows, &batch.column(ci),
                                          stats));
    }
    if (stats != nullptr) stats->rows_read += group_rows;
  }
  return batch;
}

Result<RecordBatch> CorcReader::ReadAll(ReadStats* stats) {
  std::vector<int> columns;
  for (size_t i = 0; i < footer_.schema.num_fields(); ++i) {
    columns.push_back(static_cast<int>(i));
  }
  RecordBatch out(footer_.schema);
  for (size_t s = 0; s < footer_.stripes.size(); ++s) {
    MAXSON_ASSIGN_OR_RETURN(RecordBatch part,
                            ReadStripe(s, columns, std::nullopt, stats));
    for (size_t r = 0; r < part.num_rows(); ++r) {
      out.AppendRow(part.GetRow(r));
    }
  }
  return out;
}

}  // namespace maxson::storage
