#include "storage/encoding.h"

#include <cstring>
#include <map>
#include <string_view>
#include <vector>

#include "simd/kernels.h"

namespace maxson::storage {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

// ---- RLE ----

Status RleDecodeChunk(TypeKind type, size_t rows, uint64_t raw_length,
                      const std::string& encoded, std::string* plain) {
  const size_t width = FixedWidthOf(type);
  if (width == 0) {
    return Status::Corruption("rle chunk on a variable-width column");
  }
  if (raw_length != rows * (1 + width)) {
    return Status::Corruption("rle chunk raw length disagrees with row count");
  }
  plain->assign(raw_length, '\0');
  uint8_t* out = reinterpret_cast<uint8_t*>(plain->data());
  const char* p = encoded.data();
  const char* end = encoded.data() + encoded.size();

  // Null section: byte runs.
  size_t produced = 0;
  while (produced < rows) {
    if (static_cast<size_t>(end - p) < 5) {
      return Status::Corruption("rle null run truncated");
    }
    const uint32_t run = GetU32(p);
    p += 4;
    if (run == 0 || run > rows - produced) {
      return Status::Corruption("rle null run length out of range");
    }
    simd::RleSplat(reinterpret_cast<const uint8_t*>(p), 1, run,
                   out + produced);
    p += 1;
    produced += run;
  }

  // Value section: width-sized element runs.
  uint8_t* values = out + rows;
  produced = 0;
  while (produced < rows) {
    if (static_cast<size_t>(end - p) < 4 + width) {
      return Status::Corruption("rle value run truncated");
    }
    const uint32_t run = GetU32(p);
    p += 4;
    if (run == 0 || run > rows - produced) {
      return Status::Corruption("rle value run length out of range");
    }
    simd::RleSplat(reinterpret_cast<const uint8_t*>(p), width, run,
                   values + produced * width);
    p += width;
    produced += run;
  }
  if (p != end) {
    return Status::Corruption("rle chunk has trailing bytes");
  }
  return Status::Ok();
}

// ---- Dictionary ----

Status DictDecodeChunk(TypeKind type, size_t rows, uint64_t raw_length,
                       const std::string& encoded, std::string* plain) {
  if (type != TypeKind::kString) {
    return Status::Corruption("dict chunk on a non-string column");
  }
  if (raw_length > kMaxDecodedChunkBytes) {
    return Status::Corruption("dict chunk raw length exceeds the decode cap");
  }
  const char* p = encoded.data();
  const char* end = encoded.data() + encoded.size();
  if (static_cast<size_t>(end - p) < rows + 4) {
    return Status::Corruption("dict chunk header truncated");
  }
  const char* nulls = p;
  p += rows;
  const uint32_t dict_count = GetU32(p);
  p += 4;
  // Each entry needs at least its 4-byte length, so a count the remaining
  // bytes cannot hold is rejected before any allocation sized by it.
  if (uint64_t{dict_count} * 4 > static_cast<uint64_t>(end - p)) {
    return Status::Corruption("dict entry count out of range");
  }
  std::vector<std::string_view> entries;
  entries.reserve(dict_count);
  for (uint32_t i = 0; i < dict_count; ++i) {
    if (static_cast<size_t>(end - p) < 4) {
      return Status::Corruption("dict entry length truncated");
    }
    const uint32_t len = GetU32(p);
    p += 4;
    if (len > static_cast<size_t>(end - p)) {
      return Status::Corruption("dict entry data truncated");
    }
    entries.emplace_back(p, len);
    p += len;
  }
  if (static_cast<size_t>(end - p) != rows * 4) {
    return Status::Corruption("dict index section size mismatch");
  }
  // The index words are unaligned in the chunk; copy once so the MaxU32
  // kernel (and the reconstruction loop) read aligned memory.
  std::vector<uint32_t> indexes(rows);
  if (rows > 0) {
    std::memcpy(indexes.data(), p, rows * 4);
    if (simd::MaxU32(indexes.data(), rows) >= dict_count) {
      return Status::Corruption("dict index out of range");
    }
  }

  plain->clear();
  plain->reserve(static_cast<size_t>(raw_length));
  plain->append(nulls, rows);
  uint64_t size = rows;
  for (size_t i = 0; i < rows; ++i) {
    const std::string_view entry = entries[indexes[i]];
    size += 4 + entry.size();
    if (size > raw_length) {
      return Status::Corruption("dict chunk decodes past its raw length");
    }
    PutU32(static_cast<uint32_t>(entry.size()), plain);
    plain->append(entry.data(), entry.size());
  }
  if (size != raw_length) {
    return Status::Corruption("dict chunk raw length mismatch");
  }
  return Status::Ok();
}

// ---- Block compression (LZ4-style) ----

constexpr size_t kBlockHashBits = 13;
constexpr size_t kBlockHashSize = size_t{1} << kBlockHashBits;
constexpr size_t kBlockWindow = 65535;
constexpr size_t kBlockMinMatch = 4;

inline uint32_t BlockHash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kBlockHashBits);
}

/// Appends a length past the 4-bit token nibble: 255-chained extension
/// bytes, then the remainder.
void PutLengthExtension(uint64_t rest, std::string* out) {
  while (rest >= 255) {
    out->push_back(static_cast<char>(0xFF));
    rest -= 255;
  }
  out->push_back(static_cast<char>(rest));
}

void EmitSequence(const uint8_t* literals, size_t literal_len, size_t offset,
                  size_t match_len, std::string* out) {
  const uint64_t lit_nibble = literal_len < 15 ? literal_len : 15;
  uint64_t match_nibble = 0;
  if (match_len != 0) {
    const uint64_t coded = match_len - kBlockMinMatch;
    match_nibble = coded < 15 ? coded : 15;
  }
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLengthExtension(literal_len - 15, out);
  out->append(reinterpret_cast<const char*>(literals), literal_len);
  if (match_len == 0) return;  // final literals-only sequence
  out->push_back(static_cast<char>(offset & 0xFF));
  out->push_back(static_cast<char>((offset >> 8) & 0xFF));
  if (match_nibble == 15) {
    PutLengthExtension(match_len - kBlockMinMatch - 15, out);
  }
}

/// Reads a 255-chained length extension; false on truncation or a value
/// that would exceed `cap` (bounds the work a hostile stream can demand).
bool GetLengthExtension(const uint8_t** p, const uint8_t* end, uint64_t cap,
                        uint64_t* len) {
  while (true) {
    if (*p == end) return false;
    const uint8_t byte = *(*p)++;
    *len += byte;
    if (*len > cap) return false;
    if (byte != 0xFF) return true;
  }
}

}  // namespace

bool RleEncodeChunk(TypeKind type, size_t rows, const std::string& plain,
                    std::string* out) {
  const size_t width = FixedWidthOf(type);
  if (width == 0 || rows == 0) return false;
  if (plain.size() != rows * (1 + width)) return false;
  out->clear();

  const char* nulls = plain.data();
  size_t i = 0;
  while (i < rows) {
    size_t j = i + 1;
    while (j < rows && nulls[j] == nulls[i]) ++j;
    PutU32(static_cast<uint32_t>(j - i), out);
    out->push_back(nulls[i]);
    i = j;
    if (out->size() >= plain.size()) return false;  // cannot win anymore
  }

  const char* values = plain.data() + rows;
  i = 0;
  while (i < rows) {
    size_t j = i + 1;
    while (j < rows &&
           std::memcmp(values + j * width, values + i * width, width) == 0) {
      ++j;
    }
    PutU32(static_cast<uint32_t>(j - i), out);
    out->append(values + i * width, width);
    i = j;
    if (out->size() >= plain.size()) return false;
  }
  return true;
}

bool DictEncodeChunk(TypeKind type, size_t rows, const std::string& plain,
                     std::string* out) {
  if (type != TypeKind::kString || rows == 0) return false;
  if (plain.size() < rows) return false;

  // Walk the per-row [u32 len][bytes] records (writer-produced, so any
  // inconsistency just disqualifies the encoding rather than erroring).
  const char* p = plain.data() + rows;
  const char* end = plain.data() + plain.size();
  std::vector<std::string_view> row_values;
  row_values.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    if (static_cast<size_t>(end - p) < 4) return false;
    const uint32_t len = GetU32(p);
    p += 4;
    if (len > static_cast<size_t>(end - p)) return false;
    row_values.emplace_back(p, len);
    p += len;
  }
  if (p != end) return false;

  std::map<std::string_view, uint32_t> dict;
  std::vector<std::string_view> entries;
  std::vector<uint32_t> indexes;
  indexes.reserve(rows);
  uint64_t entry_bytes = 0;
  for (const std::string_view v : row_values) {
    auto [it, inserted] = dict.emplace(v, static_cast<uint32_t>(entries.size()));
    if (inserted) {
      entries.push_back(v);
      entry_bytes += 4 + v.size();
    }
    indexes.push_back(it->second);
  }
  const uint64_t encoded_size = rows + 4 + entry_bytes + uint64_t{4} * rows;
  if (encoded_size >= plain.size()) return false;

  out->clear();
  out->reserve(static_cast<size_t>(encoded_size));
  out->append(plain.data(), rows);  // null section verbatim
  PutU32(static_cast<uint32_t>(entries.size()), out);
  for (const std::string_view e : entries) {
    PutU32(static_cast<uint32_t>(e.size()), out);
    out->append(e.data(), e.size());
  }
  for (const uint32_t idx : indexes) PutU32(idx, out);
  return true;
}

void BlockCompress(const std::string& plain, std::string* out) {
  out->clear();
  const uint8_t* src = reinterpret_cast<const uint8_t*>(plain.data());
  const size_t n = plain.size();
  std::vector<int64_t> table(kBlockHashSize, -1);
  size_t i = 0;
  size_t anchor = 0;
  while (i + kBlockMinMatch <= n) {
    const uint32_t word = Read32(src + i);
    const uint32_t h = BlockHash(word);
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kBlockWindow &&
        Read32(src + cand) == word) {
      size_t match_len = kBlockMinMatch;
      while (i + match_len < n &&
             src[static_cast<size_t>(cand) + match_len] == src[i + match_len]) {
        ++match_len;
      }
      EmitSequence(src + anchor, i - anchor, i - static_cast<size_t>(cand),
                   match_len, out);
      i += match_len;
      anchor = i;
    } else {
      ++i;
    }
  }
  if (anchor < n) {
    EmitSequence(src + anchor, n - anchor, 0, 0, out);
  }
}

Status BlockDecompress(const std::string& encoded, uint64_t raw_length,
                       std::string* plain) {
  if (raw_length > kMaxDecodedChunkBytes) {
    return Status::Corruption("block chunk raw length exceeds the decode cap");
  }
  plain->clear();
  plain->reserve(static_cast<size_t>(raw_length));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(encoded.data());
  const uint8_t* end = p + encoded.size();
  while (p < end) {
    const uint8_t token = *p++;
    uint64_t literal_len = token >> 4;
    if (literal_len == 15 &&
        !GetLengthExtension(&p, end, raw_length, &literal_len)) {
      return Status::Corruption("block literal length truncated");
    }
    if (literal_len > static_cast<uint64_t>(end - p) ||
        plain->size() + literal_len > raw_length) {
      return Status::Corruption("block literals out of range");
    }
    plain->append(reinterpret_cast<const char*>(p),
                  static_cast<size_t>(literal_len));
    p += literal_len;
    if (p == end) break;  // final literals-only sequence
    if (end - p < 2) {
      return Status::Corruption("block match offset truncated");
    }
    const size_t offset = static_cast<size_t>(p[0]) |
                          (static_cast<size_t>(p[1]) << 8);
    p += 2;
    if (offset == 0 || offset > plain->size()) {
      return Status::Corruption("block match offset out of range");
    }
    uint64_t match_len = (token & 0x0F) + kBlockMinMatch;
    if ((token & 0x0F) == 15 &&
        !GetLengthExtension(&p, end, raw_length, &match_len)) {
      return Status::Corruption("block match length truncated");
    }
    if (plain->size() + match_len > raw_length) {
      return Status::Corruption("block match overflows raw length");
    }
    // Byte-at-a-time on purpose: offsets shorter than the match replicate
    // the just-written bytes (the classic LZ4 overlap copy).
    size_t pos = plain->size() - offset;
    for (uint64_t k = 0; k < match_len; ++k) {
      plain->push_back((*plain)[pos++]);
    }
  }
  if (plain->size() != raw_length) {
    return Status::Corruption("block chunk raw length mismatch");
  }
  return Status::Ok();
}

ChunkEncoding EncodeChunkAdaptive(TypeKind type, size_t rows,
                                  const std::string& plain,
                                  std::string* out) {
  ChunkEncoding best = ChunkEncoding::kPlain;
  std::string best_bytes;
  size_t best_size = plain.size();
  std::string candidate;
  if (RleEncodeChunk(type, rows, plain, &candidate) &&
      candidate.size() < best_size) {
    best = ChunkEncoding::kRle;
    best_size = candidate.size();
    best_bytes = std::move(candidate);
  }
  if (DictEncodeChunk(type, rows, plain, &candidate) &&
      candidate.size() < best_size) {
    best = ChunkEncoding::kDict;
    best_size = candidate.size();
    best_bytes = std::move(candidate);
  }
  BlockCompress(plain, &candidate);
  if (candidate.size() < best_size) {
    best = ChunkEncoding::kBlock;
    best_bytes = std::move(candidate);
  }
  *out = best == ChunkEncoding::kPlain ? plain : std::move(best_bytes);
  return best;
}

Status DecodeChunk(ChunkEncoding enc, TypeKind type, size_t rows,
                   uint64_t raw_length, const std::string& encoded,
                   std::string* plain) {
  switch (enc) {
    case ChunkEncoding::kPlain:
      if (raw_length != encoded.size()) {
        return Status::Corruption("plain chunk raw length mismatch");
      }
      *plain = encoded;
      return Status::Ok();
    case ChunkEncoding::kRle:
      return RleDecodeChunk(type, rows, raw_length, encoded, plain);
    case ChunkEncoding::kDict:
      return DictDecodeChunk(type, rows, raw_length, encoded, plain);
    case ChunkEncoding::kBlock:
      return BlockDecompress(encoded, raw_length, plain);
  }
  return Status::Corruption("unknown chunk encoding id");
}

}  // namespace maxson::storage
