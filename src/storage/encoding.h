#ifndef MAXSON_STORAGE_ENCODING_H_
#define MAXSON_STORAGE_ENCODING_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/corc_format.h"
#include "storage/types.h"

namespace maxson::storage {

/// CORC v3 chunk encodings (see corc_format.h for the on-disk framing).
///
/// Every encoder transforms one *plain* row-group chunk — the exact v2 byte
/// layout: a byte-per-row null section followed by the type's value section
/// — into an alternative byte stream, and every decoder reconstructs those
/// plain bytes exactly, so the reader's type-specific chunk parsing never
/// sees an encoding. The writer picks per chunk adaptively: it tries every
/// applicable candidate and keeps the smallest output, with the plain bytes
/// as the baseline that always applies (EncodeChunkAdaptive). Decoders
/// treat their input as hostile — the chunk CRC detects storage rot, not a
/// malicious or buggy writer — and return typed Corruption on any
/// malformed stream instead of crashing or over-allocating.
///
/// Encodings:
///   kRle   Fixed-width types (bool/int64/double). The null section becomes
///          [u32 run][1 value byte] runs; the value section becomes
///          [u32 run][width value bytes] runs of identical elements. Run
///          lengths per section must sum to the row count exactly.
///   kDict  String columns. The null section is kept verbatim, followed by
///          [u32 dict_count], the dictionary entries in first-occurrence
///          order as [u32 len][bytes], and one u32 dictionary index per
///          row. Decoding validates every index in one MaxU32 kernel pass.
///   kBlock LZ4-style byte compression of the whole plain chunk: greedy
///          hash-table matching emitting [token][literal ext][literals]
///          [u16 LE offset][match ext] sequences (4-bit length nibbles,
///          255-chained extensions, minimum match 4, window 65,535).
///
/// Run expansion (RLE) and index validation (dict) run through dispatched
/// SIMD kernels (simd::RleSplat, simd::MaxU32) — byte-identical at every
/// ISA level per the src/simd contracts.

/// Largest string value one CORC row can hold: per-row lengths are u32 on
/// disk, so anything bigger cannot be represented — the writer rejects it
/// up front instead of silently truncating the length.
inline constexpr uint64_t kMaxCorcStringBytes = 0xFFFFFFFFull;

/// Validates one string value's size against the CORC per-row length field.
inline Status ValidateCorcStringSize(uint64_t size) {
  if (size > kMaxCorcStringBytes) {
    return Status::InvalidArgument(
        "string value of " + std::to_string(size) +
        " bytes exceeds the 4 GiB CORC per-value limit");
  }
  return Status::Ok();
}

/// Upper bound a decoder will materialize for one chunk, whatever the
/// footer's raw_length claims — a hostile directory cannot make a reader
/// allocate without bound.
inline constexpr uint64_t kMaxDecodedChunkBytes = 1ull << 30;

/// Value-slot width of a fixed-width type in the plain chunk layout, or 0
/// for variable-width (string) columns.
inline constexpr size_t FixedWidthOf(TypeKind type) {
  switch (type) {
    case TypeKind::kBool:
      return 1;
    case TypeKind::kInt64:
    case TypeKind::kDouble:
      return 8;
    case TypeKind::kString:
      return 0;
  }
  return 0;
}

/// Run-length encodes a fixed-width plain chunk. Returns false when the
/// encoding does not apply (variable-width type, malformed plain size) or
/// cannot beat the plain bytes; `out` is unspecified then.
bool RleEncodeChunk(TypeKind type, size_t rows, const std::string& plain,
                    std::string* out);

/// Dictionary-encodes a string plain chunk. Returns false when the encoding
/// does not apply or cannot beat the plain bytes.
bool DictEncodeChunk(TypeKind type, size_t rows, const std::string& plain,
                     std::string* out);

/// Block-compresses arbitrary bytes (always applicable; the output may be
/// larger than the input on incompressible data — the adaptive picker
/// discards it then).
void BlockCompress(const std::string& plain, std::string* out);

/// Reverses BlockCompress. `raw_length` is the exact decompressed size from
/// the footer directory; anything that does not reconstruct exactly that
/// many bytes, reads out of bounds, or references data before the output
/// start is Corruption.
Status BlockDecompress(const std::string& encoded, uint64_t raw_length,
                       std::string* plain);

/// Writer-side selection: encodes `plain` (the v2 chunk layout for `rows`
/// rows of `type`) under every applicable candidate and stores the smallest
/// result in `out`, returning its encoding id. kPlain (a verbatim copy) is
/// the floor, so `out` never exceeds `plain` in size.
ChunkEncoding EncodeChunkAdaptive(TypeKind type, size_t rows,
                                  const std::string& plain, std::string* out);

/// Reader-side dispatch: reconstructs the plain chunk bytes from `encoded`
/// under `enc`. `rows` and `type` come from the footer schema/directory and
/// gate which encodings are acceptable (e.g. kDict only on string columns);
/// `raw_length` is the footer's decoded size and must match exactly.
Status DecodeChunk(ChunkEncoding enc, TypeKind type, size_t rows,
                   uint64_t raw_length, const std::string& encoded,
                   std::string* plain);

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_ENCODING_H_
