#ifndef MAXSON_STORAGE_CORC_WRITER_H_
#define MAXSON_STORAGE_CORC_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/corc_format.h"
#include "storage/record_batch.h"

namespace maxson::storage {

/// Tuning knobs of the CORC writer.
struct CorcWriterOptions {
  /// Rows per row group (ORC default in the paper: 10,000). Tests shrink
  /// this so skipping behaviour is exercised with small data.
  uint32_t rows_per_group = kDefaultRowsPerGroup;
  /// Rows per stripe. The paper's pushdown sharing assumes single-stripe
  /// files ("we only perform this optimization when a file has only one
  /// stripe"); the default keeps files single-stripe unless exceeded.
  uint32_t rows_per_stripe = 1u << 20;
};

/// Streaming writer for one CORC file.
///
/// Usage: construct, Append rows / batches, Close(). All bytes are staged
/// at `path + ".tmp"`; only a fully successful Close() fsyncs the staged
/// file and renames it to `path`, so readers never observe a half-written
/// file — a ".tmp" suffix is invisible to FileSystem::ListSplits. Callers
/// must check Close(): a destroyed writer that was never closed (or whose
/// Close failed) aborts, deleting the staged file instead of publishing it.
class CorcWriter {
 public:
  CorcWriter(std::string path, Schema schema,
             CorcWriterOptions options = CorcWriterOptions());
  ~CorcWriter();

  CorcWriter(const CorcWriter&) = delete;
  CorcWriter& operator=(const CorcWriter&) = delete;

  /// Opens the staging file and writes the leading magic. Must be called
  /// first.
  Status Open();

  /// Appends all rows of `batch` (schema must match field count and types).
  Status WriteBatch(const RecordBatch& batch);

  /// Appends one row of boxed values.
  Status AppendRow(const std::vector<Value>& row);

  /// Flushes buffered rows, writes the checksummed footer, fsyncs, and
  /// atomically publishes the staged file at `path`. Idempotent. On failure
  /// the staged file is aborted — the writer cannot be retried and nothing
  /// appears at `path`.
  Status Close();

  /// Deletes the staged file without publishing. Idempotent; a no-op after
  /// a successful Close().
  Status Abort();

  uint64_t rows_written() const { return rows_written_; }

 private:
  Status FlushStripe();
  /// Writes to the staging file via the fault-injection hook.
  Status WriteRaw(const char* data, size_t n);
  /// Footer + fsync + rename; factored out so Close can abort on failure.
  Status FinishAndPublish();
  void EncodeRowGroup(const ColumnVector& column, size_t begin, size_t end,
                      std::string* out, ColumnStats* stats) const;

  std::string path_;
  std::string tmp_path_;
  Schema schema_;
  CorcWriterOptions options_;
  std::ofstream file_;
  bool open_ = false;
  bool closed_ = false;
  uint64_t rows_written_ = 0;
  uint64_t file_offset_ = 0;
  RecordBatch buffer_;
  std::vector<StripeInfo> stripes_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_CORC_WRITER_H_
