#ifndef MAXSON_STORAGE_CORC_WRITER_H_
#define MAXSON_STORAGE_CORC_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/corc_format.h"
#include "storage/record_batch.h"

namespace maxson::storage {

/// Tuning knobs of the CORC writer.
struct CorcWriterOptions {
  /// Rows per row group (ORC default in the paper: 10,000). Tests shrink
  /// this so skipping behaviour is exercised with small data.
  uint32_t rows_per_group = kDefaultRowsPerGroup;
  /// Rows per stripe. The paper's pushdown sharing assumes single-stripe
  /// files ("we only perform this optimization when a file has only one
  /// stripe"); the default keeps files single-stripe unless exceeded.
  uint32_t rows_per_stripe = 1u << 20;
  /// Output format version: kCorcVersionV3 (adaptive chunk encodings) or
  /// kCorcVersion (v2, plain chunks — byte-identical to pre-encoding
  /// writers, for cross-version matrices and the `set corcencoding off`
  /// session knob). Other values are rejected at Open().
  uint32_t format_version = kCorcVersionV3;
};

/// Writer-side encoding accounting of one file: how many plain bytes went
/// in, how many encoded bytes came out, and how often each encoding won.
/// Feeds the maxson_corc_raw_bytes_total / maxson_corc_encoded_bytes_total /
/// maxson_corc_chunks_total metric series via the cacher.
struct CorcWriteStats {
  uint64_t raw_bytes = 0;      // plain (decoded) chunk bytes
  uint64_t encoded_bytes = 0;  // chunk bytes as written to disk
  uint64_t chunks[kNumChunkEncodings] = {0, 0, 0, 0};  // by ChunkEncoding id

  void Add(const CorcWriteStats& other) {
    raw_bytes += other.raw_bytes;
    encoded_bytes += other.encoded_bytes;
    for (int e = 0; e < kNumChunkEncodings; ++e) chunks[e] += other.chunks[e];
  }
};

/// Streaming writer for one CORC file.
///
/// Usage: construct, Append rows / batches, Close(). All bytes are staged
/// at `path + ".tmp"`; only a fully successful Close() fsyncs the staged
/// file and renames it to `path`, so readers never observe a half-written
/// file — a ".tmp" suffix is invisible to FileSystem::ListSplits. Callers
/// must check Close(): a destroyed writer that was never closed (or whose
/// Close failed) aborts, deleting the staged file instead of publishing it.
class CorcWriter {
 public:
  CorcWriter(std::string path, Schema schema,
             CorcWriterOptions options = CorcWriterOptions());
  ~CorcWriter();

  CorcWriter(const CorcWriter&) = delete;
  CorcWriter& operator=(const CorcWriter&) = delete;

  /// Opens the staging file and writes the leading magic. Must be called
  /// first.
  Status Open();

  /// Appends all rows of `batch` (schema must match field count and types).
  Status WriteBatch(const RecordBatch& batch);

  /// Appends one row of boxed values.
  Status AppendRow(const std::vector<Value>& row);

  /// Flushes buffered rows, writes the checksummed footer, fsyncs, and
  /// atomically publishes the staged file at `path`. Idempotent. On failure
  /// the staged file is aborted — the writer cannot be retried and nothing
  /// appears at `path`.
  Status Close();

  /// Deletes the staged file without publishing. Idempotent; a no-op after
  /// a successful Close().
  Status Abort();

  uint64_t rows_written() const { return rows_written_; }

  /// Encoding accounting so far (complete after a successful Close()).
  const CorcWriteStats& write_stats() const { return write_stats_; }

 private:
  Status FlushStripe();
  /// Writes to the staging file via the fault-injection hook.
  Status WriteRaw(const char* data, size_t n);
  /// Footer + fsync + rename; factored out so Close can abort on failure.
  Status FinishAndPublish();
  /// Builds one plain (v2-layout) chunk. Fails with InvalidArgument on a
  /// string value whose length cannot be represented in the per-row u32
  /// length field (>= 4 GiB) — a truncated length would checksum cleanly
  /// and corrupt every later row in the chunk undetectably.
  Status EncodeRowGroup(const ColumnVector& column, size_t begin, size_t end,
                        std::string* out, ColumnStats* stats) const;

  std::string path_;
  std::string tmp_path_;
  Schema schema_;
  CorcWriterOptions options_;
  std::ofstream file_;
  bool open_ = false;
  bool closed_ = false;
  uint64_t rows_written_ = 0;
  uint64_t file_offset_ = 0;
  RecordBatch buffer_;
  std::vector<StripeInfo> stripes_;
  CorcWriteStats write_stats_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_CORC_WRITER_H_
