#ifndef MAXSON_STORAGE_FILE_SYSTEM_H_
#define MAXSON_STORAGE_FILE_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace maxson::storage {

/// Process-wide fault injection for storage I/O, used by the
/// crash-consistency tests and the `faultinject` session knob.
///
/// A spec arms the injector to trip at the Nth counted operation (1-based):
///
///   "fail:N"   the Nth write-side op (chunk write, fsync, rename) fails;
///              every later write-side op also fails, simulating a process
///              killed at that point.
///   "torn:N"   the Nth chunk write persists only its first half and then
///              fails; later write-side ops fail as with "fail".
///   "short:N"  the Nth counted read returns only half its bytes, once;
///              the injector then disarms.
///   "off"      disarm and reset the counter.
///
/// The injector also arms itself from the MAXSON_FAULT_INJECT environment
/// variable the first time Instance() is called. All hooks are thread-safe;
/// production builds pay one branch on an atomic per hook when disarmed.
class FaultInjector {
 public:
  enum class Mode { kOff, kFail, kTornWrite, kShortRead };

  static FaultInjector& Instance();

  /// Parses and applies a spec (see class comment). Rejects malformed specs
  /// without changing the current state.
  Status Configure(const std::string& spec) MAXSON_EXCLUDES(mu_);

  /// Checks a spec without applying anything (validate-then-apply callers).
  static Status ValidateSpec(const std::string& spec);

  /// Canonical form of the armed spec, or "off".
  std::string spec() const MAXSON_EXCLUDES(mu_);

  bool enabled() const { return armed_.load(std::memory_order_acquire); }

  /// True once the armed fault has fired (tests use this to tell "the run
  /// finished under the Nth-op budget" from "the fault hit something").
  bool tripped() const MAXSON_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return tripped_;
  }

  /// Write hook. Returns how many of `n` bytes the op may write; sets
  /// `*fail` when the op must then report an I/O error.
  size_t OnWrite(size_t n, bool* fail) MAXSON_EXCLUDES(mu_);

  /// Metadata hook (fsync, rename): non-OK when the injector trips here.
  Status OnMetaOp(const std::string& what) MAXSON_EXCLUDES(mu_);

  /// Read hook. Returns how many of `n` bytes the op may return.
  size_t OnRead(size_t n) MAXSON_EXCLUDES(mu_);

 private:
  FaultInjector() = default;

  /// True when this call is the Nth counted op, or a sticky fault already
  /// tripped.
  bool Count() MAXSON_REQUIRES(mu_);

  mutable Mutex mu_;
  std::atomic<bool> armed_{false};
  Mode mode_ MAXSON_GUARDED_BY(mu_) = Mode::kOff;
  /// Counted ops until the fault trips.
  uint64_t remaining_ MAXSON_GUARDED_BY(mu_) = 0;
  bool tripped_ MAXSON_GUARDED_BY(mu_) = false;
};

/// One input split of a table scan. Following the paper (Section IV-C), one
/// file == one split, so cache-table files and raw-table files with the same
/// sorted index describe the same rows.
struct Split {
  std::string path;
  size_t index = 0;  // position in the sorted file list
};

/// Minimal stand-in for HDFS: a table is a directory of part files. File
/// listings are returned sorted by name, mirroring the paper's modified
/// Spark naming function that keeps raw and cache files in the same order.
class FileSystem {
 public:
  /// Creates `dir` (and parents). Idempotent.
  static Status MakeDirs(const std::string& dir);

  /// Deletes `dir` recursively. Missing directory is not an error.
  static Status RemoveAll(const std::string& dir);

  static bool Exists(const std::string& path);

  /// Lists regular files in `dir` with the given suffix, sorted by name.
  static Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                                    const std::string& suffix);

  /// Lists the splits of a table directory: its ".corc" part files in name
  /// order, each annotated with its index.
  static Result<std::vector<Split>> ListSplits(const std::string& dir);

  /// Canonical name of the i-th part file of a table ("part-00042.corc").
  /// Indices past 99999 widen to "part-x<20 digits>.corc": 'x' sorts after
  /// every digit, so widened names follow all five-digit names and stay
  /// monotonic among themselves — name order keeps matching index order,
  /// which the raw/cache row alignment depends on.
  static std::string PartFileName(size_t index);

  /// Total size in bytes of all regular files under `dir`.
  static Result<uint64_t> DirectorySize(const std::string& dir);

  /// fsyncs an existing file so its bytes survive a crash.
  static Status SyncFile(const std::string& path);

  /// fsyncs a directory so entry renames/creates in it survive a crash.
  static Status SyncDir(const std::string& dir);

  /// Atomically renames `from` to `to` (same filesystem), replacing `to`.
  static Status RenameFile(const std::string& from, const std::string& to);
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_FILE_SYSTEM_H_
