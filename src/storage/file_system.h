#ifndef MAXSON_STORAGE_FILE_SYSTEM_H_
#define MAXSON_STORAGE_FILE_SYSTEM_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace maxson::storage {

/// One input split of a table scan. Following the paper (Section IV-C), one
/// file == one split, so cache-table files and raw-table files with the same
/// sorted index describe the same rows.
struct Split {
  std::string path;
  size_t index = 0;  // position in the sorted file list
};

/// Minimal stand-in for HDFS: a table is a directory of part files. File
/// listings are returned sorted by name, mirroring the paper's modified
/// Spark naming function that keeps raw and cache files in the same order.
class FileSystem {
 public:
  /// Creates `dir` (and parents). Idempotent.
  static Status MakeDirs(const std::string& dir);

  /// Deletes `dir` recursively. Missing directory is not an error.
  static Status RemoveAll(const std::string& dir);

  static bool Exists(const std::string& path);

  /// Lists regular files in `dir` with the given suffix, sorted by name.
  static Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                                    const std::string& suffix);

  /// Lists the splits of a table directory: its ".corc" part files in name
  /// order, each annotated with its index.
  static Result<std::vector<Split>> ListSplits(const std::string& dir);

  /// Canonical name of the i-th part file of a table ("part-00042.corc").
  static std::string PartFileName(size_t index);

  /// Total size in bytes of all regular files under `dir`.
  static Result<uint64_t> DirectorySize(const std::string& dir);
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_FILE_SYSTEM_H_
