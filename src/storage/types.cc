#include "storage/types.h"

#include <cstdio>

namespace maxson::storage {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kInt64:
      return "int64";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
  }
  return "?";
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64_value());
  if (is_double()) return double_value();
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  if (is_string()) {
    // Textual numbers (e.g. values parsed out of JSON) coerce like Spark's
    // implicit cast; non-numeric strings become 0.
    char* end = nullptr;
    const std::string& s = string_value();
    double d = std::strtod(s.c_str(), &end);
    return end == s.c_str() ? 0.0 : d;
  }
  return 0.0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int64()) return std::to_string(int64_value());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", double_value());
    return buf;
  }
  return string_value();
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool both_numeric =
      (is_int64() || is_double() || is_bool()) &&
      (other.is_int64() || other.is_double() || other.is_bool());
  if (is_int64() && other.is_int64()) {
    const int64_t a = int64_value();
    const int64_t b = other.int64_value();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (both_numeric) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    return string_value().compare(other.string_value());
  }
  // Mixed string/numeric: compare textually, matching Hive's loose semantics.
  const std::string a = ToString();
  const std::string b = other.ToString();
  return a.compare(b);
}

size_t Value::ByteSize() const {
  if (is_string()) return string_value().size();
  if (is_null()) return 1;
  return 8;
}

}  // namespace maxson::storage
