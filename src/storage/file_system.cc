#include "storage/file_system.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/string_util.h"

namespace maxson::storage {

namespace fs = std::filesystem;

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("MAXSON_FAULT_INJECT");
        env != nullptr && *env != '\0') {
      // A malformed env spec must not silently run the suite without its
      // faults; crash-consistency runs rely on the injector being armed.
      Status st = inj->Configure(env);
      if (!st.ok()) {
        std::fprintf(stderr, "MAXSON_FAULT_INJECT: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
    }
    return inj;
  }();
  return *injector;
}

namespace {

/// Parses a fault spec into (mode, count) without touching injector state.
Status ParseFaultSpec(const std::string& spec, FaultInjector::Mode* out_mode,
                      uint64_t* out_n) {
  using Mode = FaultInjector::Mode;
  Mode mode = Mode::kOff;
  uint64_t n = 0;
  if (spec != "off") {
    const size_t colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    if (name == "fail") {
      mode = Mode::kFail;
    } else if (name == "torn") {
      mode = Mode::kTornWrite;
    } else if (name == "short") {
      mode = Mode::kShortRead;
    } else {
      return Status::InvalidArgument("unknown fault mode '" + spec +
                                     "' (fail:N|torn:N|short:N|off)");
    }
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fault spec '" + spec +
                                     "' is missing the op count ':N'");
    }
    uint64_t parsed = 0;
    const char* p = spec.c_str() + colon + 1;
    if (*p == '\0') {
      return Status::InvalidArgument("fault spec '" + spec +
                                     "' has an empty op count");
    }
    for (; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') {
        return Status::InvalidArgument("fault spec '" + spec +
                                       "' has a non-numeric op count");
      }
      parsed = parsed * 10 + static_cast<uint64_t>(*p - '0');
    }
    if (parsed == 0) {
      return Status::InvalidArgument("fault op count must be >= 1");
    }
    n = parsed;
  }
  *out_mode = mode;
  *out_n = n;
  return Status::Ok();
}

}  // namespace

Status FaultInjector::Configure(const std::string& spec) {
  Mode mode = Mode::kOff;
  uint64_t n = 0;
  MAXSON_RETURN_NOT_OK(ParseFaultSpec(spec, &mode, &n));
  MutexLock lock(mu_);
  mode_ = mode;
  remaining_ = n;
  tripped_ = false;
  armed_.store(mode != Mode::kOff, std::memory_order_release);
  return Status::Ok();
}

Status FaultInjector::ValidateSpec(const std::string& spec) {
  Mode mode = Mode::kOff;
  uint64_t n = 0;
  return ParseFaultSpec(spec, &mode, &n);
}

std::string FaultInjector::spec() const {
  MutexLock lock(mu_);
  switch (mode_) {
    case Mode::kOff:
      return "off";
    case Mode::kFail:
      return "fail:" + std::to_string(remaining_);
    case Mode::kTornWrite:
      return "torn:" + std::to_string(remaining_);
    case Mode::kShortRead:
      return "short:" + std::to_string(remaining_);
  }
  return "off";
}

bool FaultInjector::Count() {
  if (tripped_) return true;
  if (remaining_ == 0) return false;
  if (--remaining_ > 0) return false;
  tripped_ = true;
  return true;
}

size_t FaultInjector::OnWrite(size_t n, bool* fail) {
  *fail = false;
  if (!enabled()) return n;
  MutexLock lock(mu_);
  if (mode_ == Mode::kFail) {
    if (Count()) {
      *fail = true;
      return 0;
    }
    return n;
  }
  if (mode_ == Mode::kTornWrite) {
    const bool was_tripped = tripped_;
    if (Count()) {
      *fail = true;
      // The op that trips persists half its bytes (a torn write); every
      // later op persists nothing, as if the process died.
      return was_tripped ? 0 : n / 2;
    }
  }
  return n;
}

Status FaultInjector::OnMetaOp(const std::string& what) {
  if (!enabled()) return Status::Ok();
  MutexLock lock(mu_);
  if (mode_ != Mode::kFail && mode_ != Mode::kTornWrite) return Status::Ok();
  // An already-tripped sticky fault fails meta ops too; torn mode only
  // counts chunk writes, so Count() here applies to kFail alone.
  if (mode_ == Mode::kTornWrite ? tripped_ : Count()) {
    return Status::IoError("injected fault: " + what);
  }
  return Status::Ok();
}

size_t FaultInjector::OnRead(size_t n) {
  if (!enabled()) return n;
  MutexLock lock(mu_);
  if (mode_ != Mode::kShortRead) return n;
  if (tripped_) return n;  // short reads are one-shot
  if (remaining_ == 0 || --remaining_ > 0) return n;
  tripped_ = true;
  return n / 2;
}

Status FileSystem::MakeDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("mkdir " + dir + ": " + ec.message());
  return Status::Ok();
}

Status FileSystem::RemoveAll(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::IoError("rm -r " + dir + ": " + ec.message());
  return Status::Ok();
}

bool FileSystem::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<std::vector<std::string>> FileSystem::ListFiles(
    const std::string& dir, const std::string& suffix) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IoError("list " + dir + ": " + ec.message());
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!suffix.empty() && !EndsWith(name, suffix)) continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::vector<Split>> FileSystem::ListSplits(const std::string& dir) {
  MAXSON_ASSIGN_OR_RETURN(std::vector<std::string> files,
                          ListFiles(dir, ".corc"));
  std::vector<Split> splits;
  splits.reserve(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    splits.push_back(Split{files[i], i});
  }
  return splits;
}

std::string FileSystem::PartFileName(size_t index) {
  char buf[32];
  if (index < 100000) {
    std::snprintf(buf, sizeof(buf), "part-%05zu.corc", index);
  } else {
    // %05zu would overflow its pad width here and break name-sort order
    // ("part-100000" < "part-99999"). 'x' (0x78) sorts after every digit,
    // and 20 digits hold any size_t, so these names sort after all
    // five-digit names and monotonically among themselves.
    std::snprintf(buf, sizeof(buf), "part-x%020zu.corc", index);
  }
  return buf;
}

Result<uint64_t> FileSystem::DirectorySize(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return uint64_t{0};
  uint64_t total = 0;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      total += entry.file_size(ec);
    }
  }
  if (ec) return Status::IoError("du " + dir + ": " + ec.message());
  return total;
}

namespace {

Status FsyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return Status::IoError("open for fsync " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync " + path);
  return Status::Ok();
}

}  // namespace

Status FileSystem::SyncFile(const std::string& path) {
  MAXSON_RETURN_NOT_OK(FaultInjector::Instance().OnMetaOp("fsync " + path));
  return FsyncPath(path, O_RDONLY);
}

Status FileSystem::SyncDir(const std::string& dir) {
  MAXSON_RETURN_NOT_OK(FaultInjector::Instance().OnMetaOp("fsync " + dir));
  return FsyncPath(dir, O_RDONLY | O_DIRECTORY);
}

Status FileSystem::RenameFile(const std::string& from, const std::string& to) {
  MAXSON_RETURN_NOT_OK(
      FaultInjector::Instance().OnMetaOp("rename " + from + " -> " + to));
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace maxson::storage
