#include "storage/file_system.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/string_util.h"

namespace maxson::storage {

namespace fs = std::filesystem;

Status FileSystem::MakeDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("mkdir " + dir + ": " + ec.message());
  return Status::Ok();
}

Status FileSystem::RemoveAll(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::IoError("rm -r " + dir + ": " + ec.message());
  return Status::Ok();
}

bool FileSystem::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<std::vector<std::string>> FileSystem::ListFiles(
    const std::string& dir, const std::string& suffix) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IoError("list " + dir + ": " + ec.message());
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!suffix.empty() && !EndsWith(name, suffix)) continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::vector<Split>> FileSystem::ListSplits(const std::string& dir) {
  MAXSON_ASSIGN_OR_RETURN(std::vector<std::string> files,
                          ListFiles(dir, ".corc"));
  std::vector<Split> splits;
  splits.reserve(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    splits.push_back(Split{files[i], i});
  }
  return splits;
}

std::string FileSystem::PartFileName(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05zu.corc", index);
  return buf;
}

Result<uint64_t> FileSystem::DirectorySize(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return uint64_t{0};
  uint64_t total = 0;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      total += entry.file_size(ec);
    }
  }
  if (ec) return Status::IoError("du " + dir + ": " + ec.message());
  return total;
}

}  // namespace maxson::storage
