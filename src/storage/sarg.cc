#include "storage/sarg.h"

namespace maxson::storage {

void ColumnStats::Update(const Value& v) {
  ++value_count;
  if (v.is_null()) {
    ++null_count;
    return;
  }
  if (min.is_null() || v.Compare(min) < 0) min = v;
  if (max.is_null() || v.Compare(max) > 0) max = v;
}

SargResult SearchArgument::EvaluateLeaf(const SargLeaf& leaf,
                                        const ColumnStats& stats) {
  switch (leaf.op) {
    case SargOp::kIsNull:
      return stats.null_count > 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kIsNotNull:
      return stats.all_null() ? SargResult::kNo : SargResult::kMaybe;
    default:
      break;
  }
  if (stats.all_null()) return SargResult::kNo;  // comparisons never match NULL
  const Value& lit = leaf.literal;
  // min/max were selected under the column's homogeneous ordering (numeric
  // for numeric columns, lexicographic for strings). Comparing them against
  // a literal of the other class would use the textual mixed-type ordering,
  // under which they are not bounds at all: a row can compare below the
  // literal while the group's numeric min compares above it. Range pruning
  // is unsound there, so answer kMaybe and let row-level evaluation decide.
  const auto is_numeric = [](const Value& v) {
    return v.is_int64() || v.is_double() || v.is_bool();
  };
  if (is_numeric(lit) != is_numeric(stats.min) ||
      lit.is_string() != stats.min.is_string()) {
    return SargResult::kMaybe;
  }
  const int cmp_min = stats.min.Compare(lit);  // min vs literal
  const int cmp_max = stats.max.Compare(lit);  // max vs literal
  switch (leaf.op) {
    case SargOp::kEq:
      // Match possible iff min <= lit <= max.
      return (cmp_min <= 0 && cmp_max >= 0) ? SargResult::kMaybe
                                            : SargResult::kNo;
    case SargOp::kNe:
      // Only excludable when every value equals the literal.
      return (cmp_min == 0 && cmp_max == 0) ? SargResult::kNo
                                            : SargResult::kMaybe;
    case SargOp::kLt:
      return cmp_min < 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kLe:
      return cmp_min <= 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kGt:
      return cmp_max > 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kGe:
      return cmp_max >= 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kIsNull:
    case SargOp::kIsNotNull:
      break;
  }
  return SargResult::kMaybe;
}

}  // namespace maxson::storage
