#include "storage/sarg.h"

namespace maxson::storage {

void ColumnStats::Update(const Value& v) {
  ++value_count;
  if (v.is_null()) {
    ++null_count;
    return;
  }
  if (min.is_null() || v.Compare(min) < 0) min = v;
  if (max.is_null() || v.Compare(max) > 0) max = v;
}

SargResult SearchArgument::EvaluateLeaf(const SargLeaf& leaf,
                                        const ColumnStats& stats) {
  switch (leaf.op) {
    case SargOp::kIsNull:
      return stats.null_count > 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kIsNotNull:
      return stats.all_null() ? SargResult::kNo : SargResult::kMaybe;
    default:
      break;
  }
  if (stats.all_null()) return SargResult::kNo;  // comparisons never match NULL
  const Value& lit = leaf.literal;
  const int cmp_min = stats.min.Compare(lit);  // min vs literal
  const int cmp_max = stats.max.Compare(lit);  // max vs literal
  switch (leaf.op) {
    case SargOp::kEq:
      // Match possible iff min <= lit <= max.
      return (cmp_min <= 0 && cmp_max >= 0) ? SargResult::kMaybe
                                            : SargResult::kNo;
    case SargOp::kNe:
      // Only excludable when every value equals the literal.
      return (cmp_min == 0 && cmp_max == 0) ? SargResult::kNo
                                            : SargResult::kMaybe;
    case SargOp::kLt:
      return cmp_min < 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kLe:
      return cmp_min <= 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kGt:
      return cmp_max > 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kGe:
      return cmp_max >= 0 ? SargResult::kMaybe : SargResult::kNo;
    case SargOp::kIsNull:
    case SargOp::kIsNotNull:
      break;
  }
  return SargResult::kMaybe;
}

}  // namespace maxson::storage
