#ifndef MAXSON_STORAGE_TYPES_H_
#define MAXSON_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>

namespace maxson::storage {

/// Column types supported by the warehouse. JSON payload columns are kString
/// (the paper: "JSON data is often stored as String Types").
enum class TypeKind : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* TypeKindName(TypeKind kind);

/// A single dynamically-typed cell value. Monostate encodes SQL NULL.
class Value {
 public:
  Value() = default;
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Storage(b)); }
  static Value Int64(int64_t i) { return Value(Storage(i)); }
  static Value Double(double d) { return Value(Storage(d)); }
  static Value String(std::string s) { return Value(Storage(std::move(s))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int64_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  /// Numeric view: ints widen to double; non-numeric returns 0.
  double AsDouble() const;

  /// Textual rendering for display and for string comparisons.
  std::string ToString() const;

  /// Total ordering used by ORDER BY and min/max statistics. NULL sorts
  /// first; values of different non-null types compare by numeric widening
  /// when both are numeric, otherwise by textual form.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Approximate in-memory footprint in bytes (used for cache budgeting).
  size_t ByteSize() const;

 private:
  using Storage = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Storage v) : v_(std::move(v)) {}
  Storage v_;
};

}  // namespace maxson::storage

#endif  // MAXSON_STORAGE_TYPES_H_
