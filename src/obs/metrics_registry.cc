#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace maxson::obs {

namespace {

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// Renders a double the way Prometheus clients do: integral values without
/// a fractional part, everything else with enough precision to round-trip.
std::string RenderNumber(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value < 1e15 && value > -1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([&] {
        std::sort(bounds.begin(), bounds.end());
        return std::move(bounds);
      }()),
      per_bucket_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  // First bound >= value; past-the-end = the implicit +Inf bucket.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  per_bucket_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(sum_mutex_);
  sum_ += value;
}

double Histogram::sum() const {
  MutexLock lock(sum_mutex_);
  return sum_;
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(bounds_.size());
  uint64_t running = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    running += per_bucket_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

std::vector<double> Histogram::DefaultSecondsBounds() {
  return {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

std::string MetricsRegistry::SeriesKey(const std::string& name,
                                       const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return name + RenderLabels(sorted);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  const std::string key = SeriesKey(name, labels);
  MutexLock lock(mutex_);
  Series& series = series_[key];
  if (series.counter == nullptr) {
    series.name = name;
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.counter = std::make_unique<Counter>();
  }
  return series.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  const std::string key = SeriesKey(name, labels);
  MutexLock lock(mutex_);
  Series& series = series_[key];
  if (series.gauge == nullptr) {
    series.name = name;
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.gauge = std::make_unique<Gauge>();
  }
  return series.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const LabelSet& labels) {
  const std::string key = SeriesKey(name, labels);
  MutexLock lock(mutex_);
  Series& series = series_[key];
  if (series.histogram == nullptr) {
    series.name = name;
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series.histogram.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterTotals() const {
  std::map<std::string, uint64_t> out;
  MutexLock lock(mutex_);
  for (const auto& [key, series] : series_) {
    if (series.counter != nullptr) out[key] = series.counter->value();
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::ostringstream out;
  MutexLock lock(mutex_);
  // series_ is keyed by "name{labels}", so all series of one metric are
  // adjacent; emit one # TYPE header per metric name.
  std::string last_name;
  for (const auto& [key, series] : series_) {
    const std::string labels = RenderLabels(series.labels);
    if (series.counter != nullptr) {
      if (series.name != last_name) {
        out << "# TYPE " << series.name << " counter\n";
        last_name = series.name;
      }
      out << series.name << labels << " " << series.counter->value() << "\n";
    } else if (series.gauge != nullptr) {
      if (series.name != last_name) {
        out << "# TYPE " << series.name << " gauge\n";
        last_name = series.name;
      }
      out << series.name << labels << " "
          << RenderNumber(series.gauge->value()) << "\n";
    } else if (series.histogram != nullptr) {
      if (series.name != last_name) {
        out << "# TYPE " << series.name << " histogram\n";
        last_name = series.name;
      }
      const Histogram& h = *series.histogram;
      const std::vector<uint64_t> cumulative = h.CumulativeCounts();
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        LabelSet bucket_labels = series.labels;
        bucket_labels.emplace_back("le", RenderNumber(h.bounds()[i]));
        out << series.name << "_bucket" << RenderLabels(bucket_labels) << " "
            << cumulative[i] << "\n";
      }
      LabelSet inf_labels = series.labels;
      inf_labels.emplace_back("le", "+Inf");
      out << series.name << "_bucket" << RenderLabels(inf_labels) << " "
          << h.count() << "\n";
      out << series.name << "_sum" << labels << " " << RenderNumber(h.sum())
          << "\n";
      out << series.name << "_count" << labels << " " << h.count() << "\n";
    }
  }
  return out.str();
}

}  // namespace maxson::obs
