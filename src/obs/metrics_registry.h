#ifndef MAXSON_OBS_METRICS_REGISTRY_H_
#define MAXSON_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace maxson::obs {

/// Label set of one metric series, e.g. {{"path", "$.f1"}}. Stored sorted so
/// the same labels always address the same series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer counter. Counters carry only
/// deterministic quantities (rows, bytes, events) — never wall time — so
/// their totals are byte-identical at every parallelism degree: per-worker
/// values are merged into QueryMetrics in split/chunk order before a single
/// thread publishes them here.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (pool size, seconds of the most
/// recent midnight cycle). Gauges may carry nondeterministic quantities.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket cumulative histogram (Prometheus semantics: bucket `le=b`
/// counts observations <= b; an implicit +Inf bucket counts everything).
/// Bucket bounds are fixed at creation and never depend on the data.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) MAXSON_EXCLUDES(sum_mutex_);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const MAXSON_EXCLUDES(sum_mutex_);
  /// Cumulative count of each bound (same order as bounds()), excluding the
  /// implicit +Inf bucket (whose cumulative count is count()).
  std::vector<uint64_t> CumulativeCounts() const;

  /// Default latency buckets (seconds): 100us .. 10s, decade steps.
  static std::vector<double> DefaultSecondsBounds();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> per_bucket_;  // non-cumulative
  std::atomic<uint64_t> count_{0};
  mutable Mutex sum_mutex_;
  double sum_ MAXSON_GUARDED_BY(sum_mutex_) = 0.0;
};

/// Process-wide metric registry with Prometheus-style text exposition.
///
/// Series are addressed by (name, labels); the first Get* call creates the
/// series, later calls return the same object. Returned pointers stay valid
/// for the registry's lifetime (series are never removed, matching the
/// Prometheus client-library contract). All members are thread-safe; the
/// hot path (bumping an existing counter) is one shared-lock map probe plus
/// one relaxed atomic add.
///
/// `Global()` is the process-wide instance a default-configured
/// MaxsonSession publishes into; tests hand each session a private registry
/// instead so runs can be compared in isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  // [[nodiscard]]: a discarded lookup creates (or probes) a series for
  // nothing — the caller meant to write it and didn't.
  [[nodiscard]] Counter* GetCounter(const std::string& name,
                                    const LabelSet& labels = {})
      MAXSON_EXCLUDES(mutex_);
  [[nodiscard]] Gauge* GetGauge(const std::string& name,
                                const LabelSet& labels = {})
      MAXSON_EXCLUDES(mutex_);
  /// `bounds` is consulted only on first creation of the series.
  [[nodiscard]] Histogram* GetHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        const LabelSet& labels = {})
      MAXSON_EXCLUDES(mutex_);

  /// Counter totals keyed by "name{labels}" — the determinism-test view
  /// (counters only; gauges and histograms may carry wall time).
  std::map<std::string, uint64_t> CounterTotals() const
      MAXSON_EXCLUDES(mutex_);

  /// Prometheus text exposition format (counters, gauges, histograms, with
  /// # TYPE headers), series sorted by name for stable output.
  std::string RenderPrometheus() const MAXSON_EXCLUDES(mutex_);

 private:
  struct Series {
    std::string name;
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Canonical series key: name + sorted rendered labels.
  static std::string SeriesKey(const std::string& name, const LabelSet& labels);

  mutable Mutex mutex_;
  std::map<std::string, Series> series_ MAXSON_GUARDED_BY(mutex_);
};

/// Renders a label set as `{k="v",...}` with values escaped; empty labels
/// render as an empty string.
std::string RenderLabels(const LabelSet& labels);

}  // namespace maxson::obs

#endif  // MAXSON_OBS_METRICS_REGISTRY_H_
