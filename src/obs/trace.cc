#include "obs/trace.h"

#include <functional>
#include <sstream>
#include <thread>

namespace maxson::obs {

namespace {

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>()(std::this_thread::get_id()) % 100000;
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

uint64_t TraceRecorder::NowMicros() const {
  return ElapsedMicros(epoch_, MonotonicNow());
}

void TraceRecorder::Record(TraceEvent event) {
  if (!enabled()) return;
  if (event.thread_id == 0) event.thread_id = CurrentThreadId();
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  MutexLock lock(mutex_);
  return events_;
}

size_t TraceRecorder::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  MutexLock lock(mutex_);
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out << ",";
    out << "\n  {\"name\": \"" << EscapeJson(e.name) << "\", \"cat\": \""
        << EscapeJson(e.category) << "\", \"ph\": \"X\", \"ts\": "
        << e.start_us << ", \"dur\": " << e.duration_us
        << ", \"pid\": 1, \"tid\": " << e.thread_id << "}";
  }
  out << "\n]}\n";
  return out.str();
}

TraceSpan::TraceSpan(TraceRecorder* recorder, std::string name,
                     std::string category)
    : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                           : nullptr),
      name_(std::move(name)),
      category_(std::move(category)) {
  if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = start_us_;
  event.duration_us = recorder_->NowMicros() - start_us_;
  recorder_->Record(std::move(event));
}

}  // namespace maxson::obs
