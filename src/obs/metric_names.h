#ifndef MAXSON_OBS_METRIC_NAMES_H_
#define MAXSON_OBS_METRIC_NAMES_H_

namespace maxson::obs {

/// Canonical names of the cross-query shared-scan counters. Unlike the
/// maxson_query_* series (published once per query after the merge barrier,
/// so totals are thread-count-deterministic), these count *scheduling*
/// events across concurrent queries: how often a subscription joined a parse
/// pass another query already started. Their totals depend on overlap, so
/// they are monitoring/bench signals, never folded into the deterministic
/// counter-totals comparison in obs_test.
///
/// One subscription = one query-side scan with sharing enabled.
inline constexpr char kSharedScanSubscribers[] = "maxson_sharedscan_subscribers";
/// One increment per morsel a subscription *attached to* instead of parsing
/// itself — the count of parse passes coalesced away. With K identical
/// queries over an S-split table fully overlapped, this reads (K-1)*S.
inline constexpr char kSharedScanCoalescedParses[] =
    "maxson_sharedscan_coalesced_parses";
/// One increment per parse pass actually executed (the denominator for the
/// coalescing ratio: passes + coalesced = morsels requested).
inline constexpr char kSharedScanParsePasses[] =
    "maxson_sharedscan_parse_passes";
/// Input bytes (CORC bytes read + raw bytes parsed) whose re-processing was
/// avoided: each coalesced attach adds the bytes the shared pass consumed.
inline constexpr char kSharedScanSavedBytes[] = "maxson_sharedscan_saved_bytes";

}  // namespace maxson::obs

#endif  // MAXSON_OBS_METRIC_NAMES_H_
