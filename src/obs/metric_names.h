#ifndef MAXSON_OBS_METRIC_NAMES_H_
#define MAXSON_OBS_METRIC_NAMES_H_

namespace maxson::obs {

/// Canonical names of every metric series the system publishes. This header
/// is the single registry of metric names: lint's `metric-name` rule fails
/// any `"maxson_*"` string literal in src/ that is not declared here, so a
/// dashboard can treat this file as the complete, greppable metric
/// inventory and a typo'd name cannot silently create a parallel series.
///
/// Determinism taxonomy (enforced by obs_test): the maxson_query_* /
/// maxson_queries_total / plan-cache / rewrite counters carry only
/// deterministic per-query quantities published once per query after the
/// merge barrier, so their totals are byte-identical at every parallelism
/// degree. Scheduling counters (maxson_sharedscan_*, maxson_serve_*) count
/// cross-query overlap events and are monitoring/bench signals only.

// --- Query execution (engine.cc, published once per query) ---
inline constexpr char kQueriesTotal[] = "maxson_queries_total";
inline constexpr char kQueryRowsRead[] = "maxson_query_rows_read_total";
inline constexpr char kQueryBytesRead[] = "maxson_query_bytes_read_total";
inline constexpr char kQueryRowGroupsRead[] =
    "maxson_query_row_groups_read_total";
inline constexpr char kQueryRowGroupsSkipped[] =
    "maxson_query_row_groups_skipped_total";
inline constexpr char kQuerySharedSkips[] = "maxson_query_shared_skips_total";
inline constexpr char kQueryRecordsParsed[] =
    "maxson_query_records_parsed_total";
inline constexpr char kQueryBytesParsed[] = "maxson_query_bytes_parsed_total";
inline constexpr char kQueryCacheColumnsRead[] =
    "maxson_query_cache_columns_read_total";
inline constexpr char kQueryRawFilteredRows[] =
    "maxson_query_raw_filtered_rows_total";
// Per-phase latency histograms (seconds).
inline constexpr char kQueryPlanSeconds[] = "maxson_query_plan_seconds";
inline constexpr char kQueryReadSeconds[] = "maxson_query_read_seconds";
inline constexpr char kQueryParseSeconds[] = "maxson_query_parse_seconds";
inline constexpr char kQueryComputeSeconds[] = "maxson_query_compute_seconds";

// --- On-demand parsing tier (engine.cc, table_scan.cc) ---
/// Records resolved by tape cursoring instead of a full DOM parse.
inline constexpr char kOndemandRecords[] = "maxson_ondemand_records_total";
/// Input bytes the forward-only cursor skipped without token-parsing.
inline constexpr char kOndemandSkippedBytes[] =
    "maxson_ondemand_skipped_bytes_total";
/// Records that hit an on-demand error and re-parsed through the DOM tier.
inline constexpr char kOndemandFallbacks[] = "maxson_ondemand_fallbacks_total";

// --- Planning and validation (engine.cc) ---
inline constexpr char kPlanValidationFailures[] =
    "maxson_plan_validation_failures";
inline constexpr char kPlanCacheHits[] = "maxson_plan_cache_hits_total";
inline constexpr char kPlanCacheMisses[] = "maxson_plan_cache_misses_total";
inline constexpr char kPlanCacheFallbacks[] =
    "maxson_plan_cache_fallbacks_total";

// --- Plan rewriting against the cache registry (maxson_parser.cc) ---
inline constexpr char kRewriteHits[] = "maxson_rewrite_hits_total";
inline constexpr char kRewriteMisses[] = "maxson_rewrite_misses_total";
inline constexpr char kRewriteFallbacks[] = "maxson_rewrite_fallbacks_total";

// --- Cache state (engine.cc, maxson.cc) ---
inline constexpr char kCacheCorruption[] = "maxson_cache_corruption_total";
inline constexpr char kCacheEntries[] = "maxson_cache_entries";

// --- Midnight caching cycle (maxson.cc) ---
inline constexpr char kMidnightCycles[] = "maxson_midnight_cycles_total";
inline constexpr char kMidnightPathsPredicted[] =
    "maxson_midnight_paths_predicted_total";
inline constexpr char kMidnightPathsSelected[] =
    "maxson_midnight_paths_selected_total";
inline constexpr char kMidnightPathsCached[] =
    "maxson_midnight_paths_cached_total";
inline constexpr char kMidnightRowsParsed[] =
    "maxson_midnight_rows_parsed_total";
inline constexpr char kMidnightBytesWritten[] =
    "maxson_midnight_bytes_written_total";
inline constexpr char kMidnightLastParseSeconds[] =
    "maxson_midnight_last_parse_seconds";
inline constexpr char kMidnightLastTotalSeconds[] =
    "maxson_midnight_last_total_seconds";

// --- CORC chunk encodings (maxson.cc, fed by CorcWriteStats) ---
/// Plain (decoded) chunk bytes that entered the encoder.
inline constexpr char kCorcRawBytes[] = "maxson_corc_raw_bytes_total";
/// Chunk bytes as written to disk after adaptive encoding; the ratio
/// encoded/raw is the cache's storage amplification (1.0 with encodings
/// off or incompressible data — plain is the adaptive floor).
inline constexpr char kCorcEncodedBytes[] = "maxson_corc_encoded_bytes_total";
/// Chunks written, labelled by winning encoding ({encoding="plain"|"rle"|
/// "dict"|"block"}).
inline constexpr char kCorcChunks[] = "maxson_corc_chunks_total";

// --- SIMD dispatch (maxson.cc) ---
inline constexpr char kSimdIsaLevel[] = "maxson_simd_isa_level";
inline constexpr char kSimdIsaInfo[] = "maxson_simd_isa_info";

// --- Serving layer (server.cc; per-tenant labels) ---
inline constexpr char kServeQueries[] = "maxson_serve_queries_total";
inline constexpr char kServeRejected[] = "maxson_serve_rejected_total";
inline constexpr char kServeResultCacheHits[] =
    "maxson_serve_result_cache_hits_total";
inline constexpr char kServeResultCacheMisses[] =
    "maxson_serve_result_cache_misses_total";
inline constexpr char kServeIoRetries[] = "maxson_serve_io_retries_total";
inline constexpr char kServeQueueDepth[] = "maxson_serve_queue_depth";
inline constexpr char kServeInFlight[] = "maxson_serve_in_flight";

// --- Shared-scan scheduling (shared_scan.cc) ---
/// One subscription = one query-side scan with sharing enabled.
inline constexpr char kSharedScanSubscribers[] =
    "maxson_sharedscan_subscribers";
/// One increment per morsel a subscription *attached to* instead of parsing
/// itself — the count of parse passes coalesced away. With K identical
/// queries over an S-split table fully overlapped, this reads (K-1)*S.
inline constexpr char kSharedScanCoalescedParses[] =
    "maxson_sharedscan_coalesced_parses";
/// One increment per parse pass actually executed (the denominator for the
/// coalescing ratio: passes + coalesced = morsels requested).
inline constexpr char kSharedScanParsePasses[] =
    "maxson_sharedscan_parse_passes";
/// Input bytes (CORC bytes read + raw bytes parsed) whose re-processing was
/// avoided: each coalesced attach adds the bytes the shared pass consumed.
inline constexpr char kSharedScanSavedBytes[] =
    "maxson_sharedscan_saved_bytes";

}  // namespace maxson::obs

#endif  // MAXSON_OBS_METRIC_NAMES_H_
