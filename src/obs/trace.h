#ifndef MAXSON_OBS_TRACE_H_
#define MAXSON_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/time_util.h"

namespace maxson::obs {

/// One completed span: a named interval on one thread. Timestamps are
/// microseconds relative to the owning recorder's construction.
struct TraceEvent {
  std::string name;      // "execute", "scan", "midnight.cache", ...
  std::string category;  // "query" / "midnight" / ...
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint64_t thread_id = 0;
};

/// Lightweight span recorder dumpable as chrome-trace JSON (load the dump
/// in chrome://tracing or Perfetto). Disabled recorders cost one relaxed
/// atomic load per span site; enabled ones take a mutex only at span end.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(MonotonicNow()) {}

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder was constructed.
  uint64_t NowMicros() const;

  void Record(TraceEvent event) MAXSON_EXCLUDES(mutex_);

  std::vector<TraceEvent> Snapshot() const MAXSON_EXCLUDES(mutex_);
  size_t size() const MAXSON_EXCLUDES(mutex_);
  void Clear() MAXSON_EXCLUDES(mutex_);

  /// Chrome trace-event JSON: {"traceEvents": [{"ph": "X", ...}]}.
  std::string ToChromeTraceJson() const MAXSON_EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_{false};
  MonotonicTime epoch_;
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ MAXSON_GUARDED_BY(mutex_);
};

/// RAII scoped span: records [construction, destruction) into `recorder`
/// when it is non-null and enabled at construction time.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string name, std::string category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;  // null when disabled at construction
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
};

}  // namespace maxson::obs

#endif  // MAXSON_OBS_TRACE_H_
