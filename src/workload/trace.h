#ifndef MAXSON_WORKLOAD_TRACE_H_
#define MAXSON_WORKLOAD_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time_util.h"

namespace maxson::workload {

/// Fully-qualified identity of one JSONPath access site: the paper's
/// (database, table, column, JSONPath) quadruple.
struct JsonPathLocation {
  std::string database;
  std::string table;
  std::string column;
  std::string path;  // "$.field" textual JSONPath

  /// Canonical key used in statistics maps ("db.table.column:$.path").
  std::string Key() const {
    return database + "." + table + "." + column + ":" + path;
  }

  bool operator==(const JsonPathLocation& other) const {
    return database == other.database && table == other.table &&
           column == other.column && path == other.path;
  }
  bool operator<(const JsonPathLocation& other) const {
    return Key() < other.Key();
  }
};

/// How a query recurs over the trace, used by the generator and reported by
/// the recurrence analyzer.
enum class Recurrence {
  kDaily,     // repeats every day (71% of recurring queries in the paper)
  kWeekly,    // repeats weekly (17%)
  kMultiDay,  // daily with a multi-day window (7%)
  kAdHoc,     // not recurring (18% of all queries)
};

/// One executed query in the trace.
struct QueryRecord {
  int64_t query_id = 0;
  int user_id = 0;
  DateId date = 0;  // submission day
  int hour = 0;     // submission hour of day [0, 24)
  int template_id = -1;  // generator template; -1 for ad-hoc queries
  Recurrence recurrence = Recurrence::kAdHoc;
  std::vector<JsonPathLocation> paths;  // JSONPaths this query parses
};

/// One table-update event (data load), with its time of day (Fig. 2).
struct TableUpdate {
  std::string database;
  std::string table;
  DateId date = 0;
  int hour = 0;
};

/// A complete synthetic production trace, the stand-in for the paper's
/// five-month, ~3M-query Alibaba workload.
struct Trace {
  int num_days = 0;
  std::vector<QueryRecord> queries;
  std::vector<TableUpdate> updates;
};

/// Per-path daily access counts: the JSONPath Collector's statistics table.
/// counts[d] is the number of parses of the path on day d.
using DailyPathCounts = std::map<std::string, std::vector<int>>;

/// Aggregates the trace into per-path daily parse counts (each query parses
/// each of its JSONPaths once per execution).
DailyPathCounts CollectDailyCounts(const Trace& trace);

}  // namespace maxson::workload

#endif  // MAXSON_WORKLOAD_TRACE_H_
