#ifndef MAXSON_WORKLOAD_DATA_GENERATOR_H_
#define MAXSON_WORKLOAD_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "common/result.h"

namespace maxson::workload {

/// Shape of one generated JSON table, after Table II of the paper: each
/// benchmark table Ti carries JSON records with a given property count,
/// nesting level, and average serialized size, in the spirit of Nobench.
struct JsonTableSpec {
  std::string database = "mydb";
  std::string table;
  int num_properties = 17;  // distinct fields in a record
  int nesting_level = 1;    // maximum object depth
  int avg_json_bytes = 500; // target average serialized record size
  /// Probability that a record drops optional fields / permutes field
  /// order, degrading Mison's speculative parsing (Fig. 15's Q6 note).
  double schema_variability = 0.0;
  uint64_t rows = 10000;
  uint64_t rows_per_file = 5000;  // one file = one split
  uint32_t rows_per_group = 1000;
  uint64_t seed = 1;
};

/// Summary of a generated table.
struct GeneratedTable {
  std::string location;
  uint64_t rows = 0;
  uint64_t total_json_bytes = 0;
  std::vector<std::string> field_names;  // top-level JSON fields ("f0"...)
  double avg_json_bytes = 0.0;
};

/// Generates one record's JSON text for `spec` (row `row_id`), determinism
/// guaranteed by (seed, row_id). Numeric field f0 counts rows (useful for
/// verifiable predicates); f1 is a category string with ~10 distinct
/// values; remaining fields mix strings/ints/doubles and, at nesting > 1,
/// nested objects under "nested".
std::string GenerateJsonRecord(const JsonTableSpec& spec, uint64_t row_id);

/// Writes the table under `warehouse_dir` (location =
/// warehouse_dir/db/table) with schema (id int64, date int64, payload
/// string), registers it in `catalog`, and returns its summary. The date
/// column cycles over `date_days` distinct day stamps so window predicates
/// have selectivity.
Result<GeneratedTable> GenerateJsonTable(const JsonTableSpec& spec,
                                         const std::string& warehouse_dir,
                                         int date_days,
                                         catalog::Catalog* catalog);

}  // namespace maxson::workload

#endif  // MAXSON_WORKLOAD_DATA_GENERATOR_H_
