#ifndef MAXSON_WORKLOAD_WORKLOAD_STATS_H_
#define MAXSON_WORKLOAD_WORKLOAD_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace maxson::workload {

/// Histogram of table-update times of day (Fig. 2).
std::array<uint64_t, 24> UpdateHourHistogram(const Trace& trace);

/// Per-JSONPath total query counts, sorted descending (Fig. 4's series).
struct PathPopularity {
  std::string key;
  uint64_t query_count = 0;
};
std::vector<PathPopularity> PathQueryCounts(const Trace& trace);

/// Power-law summary over PathQueryCounts: the share of total parsing
/// traffic carried by the most popular `top_fraction` of paths (the paper:
/// 89% of traffic on 27% of paths), and the mean queries per path (~14).
struct PowerLawSummary {
  double top_fraction = 0.0;
  double traffic_share = 0.0;
  double mean_queries_per_path = 0.0;
};
PowerLawSummary SummarizePowerLaw(const std::vector<PathPopularity>& counts,
                                  double top_fraction);

/// Recurrence shares (Section II-D-1): fraction of queries that are
/// recurring, and within recurring, the daily/weekly/multi-day split.
struct RecurrenceSummary {
  double recurring_fraction = 0.0;
  double daily_fraction = 0.0;
  double weekly_fraction = 0.0;
  double multiday_fraction = 0.0;
};
RecurrenceSummary SummarizeRecurrence(const Trace& trace);

/// Fraction of per-path-day observations where a path parsed at least once
/// was parsed >= 2 times — the share of traffic that is duplicate work and
/// therefore cacheable (the paper: "over 89% of JSON parsing traffic is
/// spent on repetitive JSONPath executions").
double DuplicateParseTrafficShare(const Trace& trace);

}  // namespace maxson::workload

#endif  // MAXSON_WORKLOAD_WORKLOAD_STATS_H_
