#ifndef MAXSON_WORKLOAD_TRACE_GENERATOR_H_
#define MAXSON_WORKLOAD_TRACE_GENERATOR_H_

#include <cstdint>

#include "workload/trace.h"

namespace maxson::workload {

/// Knobs of the synthetic trace, calibrated so the generated workload
/// reproduces every distributional statistic the paper reports about the
/// Alibaba trace (Section II-D); the defaults are a laptop-scale model of
/// the original (3M queries / 24k tables / 1.9k users / 150 days).
struct TraceGeneratorConfig {
  uint64_t seed = 42;
  int num_days = 60;
  int num_users = 50;
  int num_tables = 60;
  int paths_per_table = 24;  // distinct JSONPaths available per table

  /// Recurring templates per user (each template is a set of JSONPaths on
  /// one table that a user queries on a schedule).
  int templates_per_user = 12;

  /// Share of query volume that is recurring (paper: 82%).
  double recurring_fraction = 0.82;
  /// Split of recurring queries by schedule (paper: 71% daily, 17% weekly,
  /// ~7% daily-with-multiday-window; remainder lumped into daily).
  double daily_fraction = 0.71;
  double weekly_fraction = 0.17;
  double multiday_fraction = 0.07;

  /// Zipf skew of table/path popularity; tuned so that roughly 27% of the
  /// JSONPaths absorb ~89% of the parsing traffic (Fig. 4's power law).
  double zipf_skew = 1.25;

  /// Mean JSONPaths per query (the paper's queries parse up to 29; Table II
  /// averages ~9).
  int min_paths_per_query = 1;
  int max_paths_per_query = 12;

  /// Ad-hoc queries per day, in addition to scheduled templates.
  int adhoc_queries_per_day = 40;
};

/// Generates a synthetic trace with the paper's temporal correlations
/// (recurring daily/weekly templates), spatial correlations (Zipf path
/// popularity, shared paths across a table's templates), and noon-peaked
/// table update times. Deterministic in the seed.
Trace GenerateTrace(const TraceGeneratorConfig& config);

}  // namespace maxson::workload

#endif  // MAXSON_WORKLOAD_TRACE_GENERATOR_H_
