#include "workload/workload_stats.h"

#include <algorithm>
#include <map>

namespace maxson::workload {

std::array<uint64_t, 24> UpdateHourHistogram(const Trace& trace) {
  std::array<uint64_t, 24> histogram{};
  for (const TableUpdate& update : trace.updates) {
    if (update.hour >= 0 && update.hour < 24) {
      ++histogram[static_cast<size_t>(update.hour)];
    }
  }
  return histogram;
}

std::vector<PathPopularity> PathQueryCounts(const Trace& trace) {
  std::map<std::string, uint64_t> counts;
  for (const QueryRecord& query : trace.queries) {
    for (const JsonPathLocation& path : query.paths) {
      ++counts[path.Key()];
    }
  }
  std::vector<PathPopularity> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    out.push_back(PathPopularity{key, count});
  }
  std::sort(out.begin(), out.end(),
            [](const PathPopularity& a, const PathPopularity& b) {
              if (a.query_count != b.query_count) {
                return a.query_count > b.query_count;
              }
              return a.key < b.key;
            });
  return out;
}

PowerLawSummary SummarizePowerLaw(const std::vector<PathPopularity>& counts,
                                  double top_fraction) {
  PowerLawSummary summary;
  summary.top_fraction = top_fraction;
  if (counts.empty()) return summary;
  uint64_t total = 0;
  for (const PathPopularity& p : counts) total += p.query_count;
  const size_t top_n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(counts.size()) * top_fraction));
  uint64_t top_traffic = 0;
  for (size_t i = 0; i < top_n && i < counts.size(); ++i) {
    top_traffic += counts[i].query_count;
  }
  summary.traffic_share =
      total == 0 ? 0.0
                 : static_cast<double>(top_traffic) / static_cast<double>(total);
  summary.mean_queries_per_path =
      static_cast<double>(total) / static_cast<double>(counts.size());
  return summary;
}

RecurrenceSummary SummarizeRecurrence(const Trace& trace) {
  RecurrenceSummary summary;
  if (trace.queries.empty()) return summary;
  uint64_t recurring = 0;
  uint64_t daily = 0;
  uint64_t weekly = 0;
  uint64_t multiday = 0;
  for (const QueryRecord& query : trace.queries) {
    switch (query.recurrence) {
      case Recurrence::kDaily:
        ++recurring;
        ++daily;
        break;
      case Recurrence::kWeekly:
        ++recurring;
        ++weekly;
        break;
      case Recurrence::kMultiDay:
        ++recurring;
        ++multiday;
        break;
      case Recurrence::kAdHoc:
        break;
    }
  }
  summary.recurring_fraction =
      static_cast<double>(recurring) / static_cast<double>(trace.queries.size());
  if (recurring > 0) {
    summary.daily_fraction =
        static_cast<double>(daily) / static_cast<double>(recurring);
    summary.weekly_fraction =
        static_cast<double>(weekly) / static_cast<double>(recurring);
    summary.multiday_fraction =
        static_cast<double>(multiday) / static_cast<double>(recurring);
  }
  return summary;
}

double DuplicateParseTrafficShare(const Trace& trace) {
  const DailyPathCounts daily = CollectDailyCounts(trace);
  uint64_t total_parses = 0;
  uint64_t duplicate_parses = 0;
  for (const auto& [key, counts] : daily) {
    for (int c : counts) {
      total_parses += static_cast<uint64_t>(c);
      // Every parse of a path hit >= 2 times that day beyond the first is
      // redundant work a cache would have saved; count the whole multi-hit
      // traffic as repetitive, matching the paper's framing.
      if (c >= 2) duplicate_parses += static_cast<uint64_t>(c);
    }
  }
  return total_parses == 0
             ? 0.0
             : static_cast<double>(duplicate_parses) /
                   static_cast<double>(total_parses);
}

}  // namespace maxson::workload
