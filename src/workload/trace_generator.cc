#include "workload/trace_generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"

namespace maxson::workload {

namespace {

/// One recurring query template owned by a user.
struct Template {
  int user_id = 0;
  Recurrence recurrence = Recurrence::kDaily;
  int weekday = 0;  // firing day for weekly templates
  int hour = 9;     // usual submission hour
  std::vector<JsonPathLocation> paths;
};

JsonPathLocation MakeLocation(int table_id, int path_id) {
  JsonPathLocation loc;
  loc.database = "mydb";
  loc.table = "t" + std::to_string(table_id);
  loc.column = "payload";
  loc.path = "$.f" + std::to_string(path_id);
  return loc;
}

/// Samples an hour of day from a noon-peaked distribution (Fig. 2: updates
/// frequent around noon, rare at midnight).
int NoonPeakedHour(Rng* rng) {
  const double h = rng->NextGaussian(12.5, 3.5);
  const int hour = static_cast<int>(h + 0.5);
  return std::clamp(hour, 0, 23);
}

/// Business-hours-peaked submission time for queries.
int BusinessHour(Rng* rng) {
  const double h = rng->NextGaussian(14.0, 4.5);
  const int hour = static_cast<int>(h + 0.5);
  return std::clamp(hour, 0, 23);
}

}  // namespace

Trace GenerateTrace(const TraceGeneratorConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.num_days = config.num_days;

  // Popularity skew: tables and, within a table, paths follow Zipf ranks.
  ZipfSampler table_zipf(static_cast<size_t>(config.num_tables),
                         config.zipf_skew);
  ZipfSampler path_zipf(static_cast<size_t>(config.paths_per_table),
                        config.zipf_skew);

  // Build each user's recurring templates. Users concentrate on a handful
  // of tables (data-access-control realism) and templates on the same table
  // share popular paths — the source of spatial correlation.
  std::vector<Template> templates;
  // The configured daily/weekly/multiday fractions are shares of *executed*
  // recurring queries. A daily template fires num_days times but a weekly
  // one only num_days/7 times, so template-type probabilities must be the
  // execution shares divided by expected firings.
  const double days = static_cast<double>(std::max(1, config.num_days));
  double p_daily = config.daily_fraction / days;
  double p_weekly = config.weekly_fraction / (days / 7.0);
  double p_multiday = config.multiday_fraction / days;
  {
    const double norm = p_daily + p_weekly + p_multiday;
    p_daily /= norm;
    p_weekly /= norm;
    p_multiday /= norm;
  }
  (void)p_multiday;
  for (int user = 0; user < config.num_users; ++user) {
    // Each user works on a small personal pool of tables.
    std::vector<int> user_tables;
    const int pool = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < pool; ++i) {
      user_tables.push_back(static_cast<int>(table_zipf.Sample(&rng)));
    }
    for (int t = 0; t < config.templates_per_user; ++t) {
      Template tpl;
      tpl.user_id = user;
      const double r = rng.NextDouble();
      if (r < p_daily) {
        tpl.recurrence = Recurrence::kDaily;
      } else if (r < p_daily + p_weekly) {
        tpl.recurrence = Recurrence::kWeekly;
        tpl.weekday = static_cast<int>(rng.NextBounded(7));
      } else {
        tpl.recurrence = Recurrence::kMultiDay;
      }
      tpl.hour = BusinessHour(&rng);
      const int table_id =
          user_tables[rng.NextBounded(user_tables.size())];
      const int num_paths = static_cast<int>(
          rng.NextInt(config.min_paths_per_query, config.max_paths_per_query));
      std::vector<int> chosen;
      for (int p = 0; p < num_paths; ++p) {
        const int path_id = static_cast<int>(path_zipf.Sample(&rng));
        if (std::find(chosen.begin(), chosen.end(), path_id) == chosen.end()) {
          chosen.push_back(path_id);
        }
      }
      for (int path_id : chosen) {
        tpl.paths.push_back(MakeLocation(table_id, path_id));
      }
      templates.push_back(std::move(tpl));
    }
  }

  // Emit scheduled executions.
  int64_t query_id = 0;
  for (int day = 0; day < config.num_days; ++day) {
    for (size_t t = 0; t < templates.size(); ++t) {
      const Template& tpl = templates[t];
      bool fires = false;
      switch (tpl.recurrence) {
        case Recurrence::kDaily:
        case Recurrence::kMultiDay:
          fires = true;
          break;
        case Recurrence::kWeekly:
          fires = (day % 7) == tpl.weekday;
          break;
        case Recurrence::kAdHoc:
          fires = false;
          break;
      }
      if (!fires) continue;
      QueryRecord query;
      query.query_id = query_id++;
      query.user_id = tpl.user_id;
      query.date = day;
      // Jitter the submission hour slightly around the template's habit.
      query.hour = std::clamp(
          tpl.hour + static_cast<int>(rng.NextInt(-1, 1)), 0, 23);
      query.template_id = static_cast<int>(t);
      query.recurrence = tpl.recurrence;
      query.paths = tpl.paths;
      trace.queries.push_back(std::move(query));
    }
  }

  // Ad-hoc exploration queries: sized so the recurring share of the final
  // trace matches the configured fraction (paper: 82% recurring), spread
  // uniformly over days. `adhoc_queries_per_day` acts as a floor.
  const size_t recurring = trace.queries.size();
  const size_t desired_adhoc = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(config.adhoc_queries_per_day)),
      static_cast<size_t>(static_cast<double>(recurring) *
                          (1.0 - config.recurring_fraction) /
                          config.recurring_fraction));
  for (size_t q = 0; q < desired_adhoc; ++q) {
    QueryRecord query;
    query.query_id = query_id++;
    query.user_id = static_cast<int>(rng.NextBounded(config.num_users));
    query.date = static_cast<DateId>(q % static_cast<size_t>(config.num_days));
    query.hour = BusinessHour(&rng);
    query.recurrence = Recurrence::kAdHoc;
    const int table_id = static_cast<int>(table_zipf.Sample(&rng));
    const int num_paths = static_cast<int>(
        rng.NextInt(config.min_paths_per_query, config.max_paths_per_query));
    for (int p = 0; p < num_paths; ++p) {
      query.paths.push_back(
          MakeLocation(table_id, static_cast<int>(path_zipf.Sample(&rng))));
    }
    trace.queries.push_back(std::move(query));
  }

  // Table updates: each table is appended daily (new data loaded on a daily
  // basis), at a noon-peaked hour.
  for (int day = 0; day < config.num_days; ++day) {
    for (int table = 0; table < config.num_tables; ++table) {
      TableUpdate update;
      update.database = "mydb";
      update.table = "t" + std::to_string(table);
      update.date = day;
      update.hour = NoonPeakedHour(&rng);
      trace.updates.push_back(update);
    }
  }

  // Stable ordering: by (date, hour, id) — the replay order for the online
  // cache comparison.
  std::stable_sort(trace.queries.begin(), trace.queries.end(),
                   [](const QueryRecord& a, const QueryRecord& b) {
                     if (a.date != b.date) return a.date < b.date;
                     if (a.hour != b.hour) return a.hour < b.hour;
                     return a.query_id < b.query_id;
                   });
  return trace;
}

}  // namespace maxson::workload
