#include "workload/query_templates.h"

#include <algorithm>

namespace maxson::workload {

namespace {

/// Table II of the paper: per-query JSONPath count, property count in the
/// JSON, nesting level, and average JSON size in bytes.
struct TableIIRow {
  const char* name;
  int jsonpath_count;
  int property_count;
  int nesting_level;
  int avg_json_bytes;
};

constexpr TableIIRow kTableII[] = {
    {"Q1", 11, 11, 1, 408},   {"Q2", 10, 17, 1, 655},
    {"Q3", 10, 206, 4, 4830}, {"Q4", 1, 215, 4, 4736},
    {"Q5", 12, 26, 3, 582},   {"Q6", 29, 107, 5, 2031},
    {"Q7", 3, 12, 2, 252},    {"Q8", 5, 17, 1, 368},
    {"Q9", 1, 319, 3, 21459}, {"Q10", 8, 90, 1, 8692},
};

std::string PathExpr(const std::string& column, const std::string& path,
                     const std::string& alias) {
  return "get_json_object(" + column + ", '" + path + "') AS " + alias;
}

}  // namespace

std::vector<BenchmarkQuery> MakeTableIIQueries(
    const BenchmarkSuiteOptions& options) {
  std::vector<BenchmarkQuery> queries;
  int query_index = 0;
  for (const TableIIRow& row : kTableII) {
    BenchmarkQuery q;
    q.name = row.name;
    q.table_spec.database = "bench";
    q.table_spec.table = "T" + std::to_string(query_index + 1);
    q.table_spec.num_properties = row.property_count;
    q.table_spec.nesting_level = row.nesting_level;
    q.table_spec.avg_json_bytes = row.avg_json_bytes;
    q.table_spec.rows_per_file = options.rows_per_file;
    q.table_spec.rows_per_group = options.rows_per_group;
    q.table_spec.seed = options.seed + static_cast<uint64_t>(query_index);
    // Q6's dataset is the schema-stable one in the paper ("the JSON pattern
    // has little change"), favoring Mison; give the large-document tables
    // (Q9, Q10) some schema variability instead.
    if (q.name == "Q9" || q.name == "Q10") {
      q.table_spec.schema_variability = 0.4;
    } else if (q.name == "Q3" || q.name == "Q4") {
      q.table_spec.schema_variability = 0.2;
    }
    // Row count: fixed byte budget per table, capped.
    q.table_spec.rows = std::max<uint64_t>(
        2000, std::min<uint64_t>(options.max_rows,
                                 options.bytes_per_table /
                                     static_cast<uint64_t>(
                                         std::max(1, row.avg_json_bytes))));

    // Build the JSONPath list: the first `jsonpath_count` scalar fields,
    // skipping nested container slots (f3..f3+nested-1 hold objects when
    // nesting > 1). Field f0 is numeric, f1 categorical, f2 numeric.
    const int nested_fields =
        row.nesting_level > 1 ? std::max(1, row.property_count / 6) : 0;
    std::vector<std::string> scalar_fields;
    for (int f = 0; f < row.property_count &&
                    static_cast<int>(scalar_fields.size()) <
                        row.jsonpath_count + 3;
         ++f) {
      const bool is_nested_slot =
          nested_fields > 0 && f > 2 && f <= 2 + nested_fields;
      if (!is_nested_slot) {
        scalar_fields.push_back("f" + std::to_string(f));
      }
    }
    // For deep tables, include one nested leaf path to exercise nesting.
    std::vector<std::string> chosen_paths;
    for (int i = 0;
         i < row.jsonpath_count && i < static_cast<int>(scalar_fields.size());
         ++i) {
      chosen_paths.push_back("$." + scalar_fields[static_cast<size_t>(i)]);
    }
    if (row.nesting_level > 1 && chosen_paths.size() > 1) {
      std::string nested_path = "$.f3";
      for (int d = 0; d < row.nesting_level - 1; ++d) {
        nested_path += ".n" + std::to_string(d);
      }
      // Replace the last path with a deep one so nesting matters. (Queries
      // with a single JSONPath keep their scalar path: Q9 filters and
      // projects the same path, the Fig. 12 pushdown scenario.)
      chosen_paths.back() = nested_path + ".leaf";
    }

    // SQL text.
    std::string select_list = "id";
    int alias_id = 0;
    for (const std::string& path : chosen_paths) {
      std::string alias = "p" + std::to_string(alias_id++);
      select_list += ", " + PathExpr("payload", path, alias);
      JsonPathLocation loc;
      loc.database = q.table_spec.database;
      loc.table = q.table_spec.table;
      loc.column = "payload";
      loc.path = path;
      q.paths.push_back(std::move(loc));
    }

    const std::string from = q.table_spec.database + "." + q.table_spec.table;
    if (q.name == "Q2") {
      // COUNT + GROUP BY with a JSON predicate (Fig. 12 pushdown target).
      q.sql = "SELECT get_json_object(payload, '$.f1') AS category, "
              "COUNT(*) AS cnt" +
              std::string(", sum(to_int(get_json_object(payload, '$.f2'))) "
                          "AS metric") +
              " FROM " + from +
              " WHERE to_int(get_json_object(payload, '$.f0')) > " +
              std::to_string(q.table_spec.rows * 3 / 4) +
              " GROUP BY get_json_object(payload, '$.f1') ORDER BY cnt DESC";
      q.has_json_predicate = true;
    } else if (q.name == "Q9") {
      // Single huge-document path, projected and filtered (selective JSON
      // predicate -> cache-table pushdown skips most row groups).
      q.sql = "SELECT id, " + PathExpr("payload", chosen_paths[0], "p0") +
              " FROM " + from +
              " WHERE to_int(get_json_object(payload, '" + chosen_paths[0] +
              "')) > " + std::to_string(q.table_spec.rows * 9 / 10);
      q.has_json_predicate = true;
    } else if (q.name == "Q1") {
      q.sql = "SELECT " + select_list + " FROM " + from +
              " WHERE date BETWEEN 20190101 AND 20190102 "
              "ORDER BY to_int(get_json_object(payload, '$.f2')) DESC LIMIT 10";
    } else {
      q.sql = "SELECT " + select_list + " FROM " + from +
              " WHERE date BETWEEN 20190101 AND 20190102";
    }
    queries.push_back(std::move(q));
    ++query_index;
  }
  return queries;
}

Status GenerateBenchmarkTables(const std::vector<BenchmarkQuery>& queries,
                               const std::string& warehouse_dir,
                               const BenchmarkSuiteOptions& options,
                               catalog::Catalog* catalog) {
  for (const BenchmarkQuery& q : queries) {
    MAXSON_ASSIGN_OR_RETURN(
        GeneratedTable table,
        GenerateJsonTable(q.table_spec, warehouse_dir, options.date_days,
                          catalog));
    (void)table;
  }
  return Status::Ok();
}

}  // namespace maxson::workload
