#include "workload/data_generator.h"

#include <algorithm>
#include <cmath>

#include "json/json_writer.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::workload {

using storage::Schema;
using storage::TypeKind;
using storage::Value;

namespace {

/// Deterministic per-row generator state.
Rng RowRng(uint64_t seed, uint64_t row_id) {
  return Rng(seed * 0x9E3779B97F4A7C15ULL + row_id * 0xC2B2AE3D27D4EB4FULL +
             1);
}

std::string RandomWord(Rng* rng, size_t len) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->NextBounded(26)]);
  }
  return s;
}

}  // namespace

std::string GenerateJsonRecord(const JsonTableSpec& spec, uint64_t row_id) {
  Rng rng = RowRng(spec.seed, row_id);

  // Budget: aim at avg_json_bytes by padding one filler string. Base fields
  // cost roughly 18 bytes each ("\"fNN\":\"wordword\",").
  const int props = std::max(2, spec.num_properties);
  const int base_cost_per_field = 18;
  const int filler = std::max(
      0, spec.avg_json_bytes - props * base_cost_per_field);

  // Field ordering: stable by default; permuted for schema-variable tables.
  std::vector<int> order(static_cast<size_t>(props));
  for (int i = 0; i < props; ++i) order[static_cast<size_t>(i)] = i;
  const bool vary = rng.NextBool(spec.schema_variability);
  if (vary) rng.Shuffle(&order);

  // Fields beyond the first few can be dropped in variable-schema records.
  std::string out;
  out.reserve(static_cast<size_t>(spec.avg_json_bytes) + 64);
  out.push_back('{');
  bool first = true;
  auto append_field = [&](const std::string& name, const std::string& value,
                          bool quote) {
    if (!first) out.push_back(',');
    first = false;
    json::AppendEscapedString(name, &out);
    out.push_back(':');
    if (quote) {
      json::AppendEscapedString(value, &out);
    } else {
      out.append(value);
    }
  };

  // How many top-level slots are nested containers.
  const int nested_fields =
      spec.nesting_level > 1 ? std::max(1, props / 6) : 0;

  for (int slot = 0; slot < props; ++slot) {
    const int f = order[static_cast<size_t>(slot)];
    const std::string name = "f" + std::to_string(f);
    if (vary && f >= 4 && rng.NextBool(0.3)) continue;  // drop optional field
    if (f == 0) {
      // Monotone row counter: predicates on $.f0 have known selectivity.
      append_field(name, std::to_string(row_id), false);
    } else if (f == 1) {
      // Low-cardinality category for GROUP BY.
      append_field(name, "cat" + std::to_string(row_id % 10), true);
    } else if (f == 2) {
      // Numeric metric (e.g. turnover).
      append_field(name, std::to_string((row_id * 7 + f) % 1000), false);
    } else if (nested_fields > 0 && f > 2 && f <= 2 + nested_fields) {
      // Nested object, depth = spec.nesting_level.
      std::string nested;
      int depth = spec.nesting_level - 1;
      for (int d = 0; d < depth; ++d) {
        nested += "{\"n" + std::to_string(d) + "\":";
      }
      nested += "{\"leaf\":" + std::to_string(rng.NextBounded(100)) + "}";
      for (int d = 0; d < depth; ++d) nested.push_back('}');
      append_field(name, nested, false);
    } else {
      switch (rng.NextBounded(3)) {
        case 0:
          append_field(name, std::to_string(rng.NextInt(0, 100000)), false);
          break;
        case 1: {
          char buf[24];
          std::snprintf(buf, sizeof(buf), "%.3f", rng.NextDouble() * 100.0);
          append_field(name, buf, false);
          break;
        }
        default:
          append_field(name, RandomWord(&rng, 6 + rng.NextBounded(6)), true);
      }
    }
  }
  if (filler > 0) {
    // Pad with one long blob field so the average size hits the target.
    const size_t pad = static_cast<size_t>(
        std::max<int>(0, filler - 12 + static_cast<int>(rng.NextBounded(9)) -
                             4));
    append_field("blob", RandomWord(&rng, pad), true);
  }
  out.push_back('}');
  return out;
}

Result<GeneratedTable> GenerateJsonTable(const JsonTableSpec& spec,
                                         const std::string& warehouse_dir,
                                         int date_days,
                                         catalog::Catalog* catalog) {
  GeneratedTable result;
  const std::string dir =
      warehouse_dir + "/" + spec.database + "/" + spec.table;
  MAXSON_RETURN_NOT_OK(storage::FileSystem::RemoveAll(dir));
  MAXSON_RETURN_NOT_OK(storage::FileSystem::MakeDirs(dir));

  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("date", TypeKind::kInt64);
  schema.AddField("payload", TypeKind::kString);

  uint64_t row = 0;
  size_t file_index = 0;
  while (row < spec.rows) {
    const uint64_t rows_this_file =
        std::min<uint64_t>(spec.rows_per_file, spec.rows - row);
    storage::CorcWriterOptions options;
    options.rows_per_group = spec.rows_per_group;
    storage::CorcWriter writer(
        dir + "/" + storage::FileSystem::PartFileName(file_index), schema,
        options);
    MAXSON_RETURN_NOT_OK(writer.Open());
    for (uint64_t i = 0; i < rows_this_file; ++i, ++row) {
      const std::string payload = GenerateJsonRecord(spec, row);
      result.total_json_bytes += payload.size();
      const int64_t date =
          20190101 + static_cast<int64_t>(row % static_cast<uint64_t>(
                                                    std::max(1, date_days)));
      MAXSON_RETURN_NOT_OK(
          writer.AppendRow({Value::Int64(static_cast<int64_t>(row)),
                            Value::Int64(date), Value::String(payload)}));
    }
    MAXSON_RETURN_NOT_OK(writer.Close());
    ++file_index;
  }

  if (catalog != nullptr) {
    if (!catalog->HasDatabase(spec.database)) {
      MAXSON_RETURN_NOT_OK(catalog->CreateDatabase(spec.database));
    }
    if (catalog->HasTable(spec.database, spec.table)) {
      MAXSON_RETURN_NOT_OK(catalog->DropTable(spec.database, spec.table));
    }
    catalog::TableInfo info;
    info.database = spec.database;
    info.name = spec.table;
    info.schema = schema;
    info.location = dir;
    info.last_modified = 0;
    MAXSON_RETURN_NOT_OK(catalog->CreateTable(std::move(info)));
  }

  result.location = dir;
  result.rows = spec.rows;
  result.avg_json_bytes = spec.rows == 0
                              ? 0.0
                              : static_cast<double>(result.total_json_bytes) /
                                    static_cast<double>(spec.rows);
  for (int f = 0; f < spec.num_properties; ++f) {
    result.field_names.push_back("f" + std::to_string(f));
  }
  return result;
}

}  // namespace maxson::workload
