#include "workload/trace.h"

namespace maxson::workload {

DailyPathCounts CollectDailyCounts(const Trace& trace) {
  DailyPathCounts counts;
  for (const QueryRecord& query : trace.queries) {
    for (const JsonPathLocation& path : query.paths) {
      std::vector<int>& days = counts[path.Key()];
      if (days.empty()) days.resize(trace.num_days, 0);
      if (query.date >= 0 && query.date < trace.num_days) {
        ++days[query.date];
      }
    }
  }
  return counts;
}

}  // namespace maxson::workload
