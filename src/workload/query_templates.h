#ifndef MAXSON_WORKLOAD_QUERY_TEMPLATES_H_
#define MAXSON_WORKLOAD_QUERY_TEMPLATES_H_

#include <string>
#include <vector>

#include "workload/data_generator.h"
#include "workload/trace.h"

namespace maxson::workload {

/// One of the ten benchmark queries of the paper's Table II: its table
/// specification (JSON shape), the SQL text, and the JSONPaths it parses.
struct BenchmarkQuery {
  std::string name;  // "Q1" ... "Q10"
  JsonTableSpec table_spec;
  std::string sql;
  std::vector<JsonPathLocation> paths;
  /// True when the query filters on a JSON property (Q2, Q9 in Fig. 12 —
  /// the pushdown-eligible ones).
  bool has_json_predicate = false;
};

/// Scaling options for the Table II suite. The paper ran 20M rows/table on
/// a 22-node cluster; `bytes_per_table` scales each table so laptop runs
/// stay minutes-long while preserving the relative cost structure (row
/// counts derive from each table's average JSON size).
struct BenchmarkSuiteOptions {
  uint64_t bytes_per_table = 8ull << 20;  // ~8 MiB of JSON per table
  uint64_t max_rows = 40000;
  uint64_t rows_per_file = 10000;
  uint32_t rows_per_group = 1000;
  int date_days = 3;
  uint64_t seed = 99;
};

/// Builds the ten Table II queries. Table shapes follow the paper's Table
/// II columns (JSONPath count, property count, nesting level, average JSON
/// size); query shapes are representative: projections of the listed
/// number of JSONPaths, with a group-by for Q2, a JSON predicate for Q2 and
/// Q9, and an ORDER BY ... LIMIT for Q1.
std::vector<BenchmarkQuery> MakeTableIIQueries(
    const BenchmarkSuiteOptions& options);

/// Generates the data for every query's table into `warehouse_dir` and
/// registers the tables in `catalog`.
Status GenerateBenchmarkTables(const std::vector<BenchmarkQuery>& queries,
                               const std::string& warehouse_dir,
                               const BenchmarkSuiteOptions& options,
                               catalog::Catalog* catalog);

}  // namespace maxson::workload

#endif  // MAXSON_WORKLOAD_QUERY_TEMPLATES_H_
