#include "catalog/catalog.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "json/dom_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"

namespace maxson::catalog {

using json::JsonValue;

Status Catalog::CreateDatabase(const std::string& name) {
  if (HasDatabase(name)) {
    return Status::AlreadyExists("database " + name + " exists");
  }
  databases_.push_back(name);
  return Status::Ok();
}

bool Catalog::HasDatabase(const std::string& name) const {
  return std::find(databases_.begin(), databases_.end(), name) !=
         databases_.end();
}

Status Catalog::CreateTable(TableInfo info) {
  if (!HasDatabase(info.database)) {
    return Status::NotFound("database " + info.database + " not found");
  }
  const std::string key = Key(info.database, info.name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table " + key + " exists");
  }
  tables_.emplace(key, std::move(info));
  return Status::Ok();
}

Status Catalog::DropTable(const std::string& database,
                          const std::string& name) {
  if (tables_.erase(Key(database, name)) == 0) {
    return Status::NotFound("table " + Key(database, name) + " not found");
  }
  return Status::Ok();
}

Result<const TableInfo*> Catalog::GetTable(const std::string& database,
                                           const std::string& name) const {
  auto it = tables_.find(Key(database, name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + Key(database, name) + " not found");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& database,
                       const std::string& name) const {
  return tables_.count(Key(database, name)) != 0;
}

Status Catalog::TouchTable(const std::string& database,
                           const std::string& name, int64_t timestamp) {
  auto it = tables_.find(Key(database, name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + Key(database, name) + " not found");
  }
  it->second.last_modified = timestamp;
  return Status::Ok();
}

std::vector<const TableInfo*> Catalog::ListTables(
    const std::string& database) const {
  std::vector<const TableInfo*> out;
  for (const auto& [key, info] : tables_) {
    if (info.database == database) out.push_back(&info);
  }
  return out;
}

std::vector<std::string> Catalog::ListDatabases() const { return databases_; }

std::string Catalog::ToJson() const {
  JsonValue root = JsonValue::Object();
  JsonValue dbs = JsonValue::Array();
  for (const std::string& db : databases_) dbs.Append(JsonValue::String(db));
  root.Set("databases", std::move(dbs));

  JsonValue tables = JsonValue::Array();
  for (const auto& [key, info] : tables_) {
    JsonValue tj = JsonValue::Object();
    tj.Set("database", JsonValue::String(info.database));
    tj.Set("name", JsonValue::String(info.name));
    tj.Set("location", JsonValue::String(info.location));
    tj.Set("last_modified", JsonValue::Int(info.last_modified));
    JsonValue fields = JsonValue::Array();
    for (const storage::Field& f : info.schema.fields()) {
      JsonValue fj = JsonValue::Object();
      fj.Set("name", JsonValue::String(f.name));
      fj.Set("type", JsonValue::Int(static_cast<int>(f.type)));
      fields.Append(std::move(fj));
    }
    tj.Set("fields", std::move(fields));
    tables.Append(std::move(tj));
  }
  root.Set("tables", std::move(tables));
  return json::WriteJson(root);
}

Result<Catalog> Catalog::FromJson(const std::string& text) {
  MAXSON_ASSIGN_OR_RETURN(JsonValue root, json::ParseJson(text));
  if (!root.is_object()) return Status::ParseError("catalog not an object");
  Catalog catalog;
  const JsonValue* dbs = root.Find("databases");
  if (dbs == nullptr || !dbs->is_array()) {
    return Status::ParseError("catalog missing databases");
  }
  for (const JsonValue& db : dbs->elements()) {
    catalog.databases_.push_back(db.string_value());
  }
  const JsonValue* tables = root.Find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return Status::ParseError("catalog missing tables");
  }
  for (const JsonValue& tj : tables->elements()) {
    TableInfo info;
    const JsonValue* database = tj.Find("database");
    const JsonValue* name = tj.Find("name");
    const JsonValue* location = tj.Find("location");
    const JsonValue* modified = tj.Find("last_modified");
    const JsonValue* fields = tj.Find("fields");
    if (database == nullptr || name == nullptr || location == nullptr ||
        modified == nullptr || fields == nullptr || !fields->is_array()) {
      return Status::ParseError("bad table entry in catalog");
    }
    info.database = database->string_value();
    info.name = name->string_value();
    info.location = location->string_value();
    info.last_modified = modified->int_value();
    for (const JsonValue& fj : fields->elements()) {
      const JsonValue* fname = fj.Find("name");
      const JsonValue* ftype = fj.Find("type");
      if (fname == nullptr || ftype == nullptr) {
        return Status::ParseError("bad field entry in catalog");
      }
      info.schema.AddField(fname->string_value(),
                           static_cast<storage::TypeKind>(ftype->int_value()));
    }
    catalog.tables_.emplace(Key(info.database, info.name), std::move(info));
  }
  return catalog;
}

Status Catalog::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  out << ToJson();
  out.close();
  if (out.fail()) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

Result<Catalog> Catalog::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

}  // namespace maxson::catalog
