#ifndef MAXSON_CATALOG_CATALOG_H_
#define MAXSON_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_util.h"
#include "storage/schema.h"

namespace maxson::catalog {

/// Metadata of one warehouse table. Tables live in CORC format at
/// `location` (a directory of part files). `last_modified` is the logical
/// timestamp the cache-validity check of Algorithm 1 compares against.
struct TableInfo {
  std::string database;
  std::string name;
  storage::Schema schema;
  std::string location;
  /// Logical modification clock: ticks whenever data is appended. Compared
  /// against CacheEntry::cache_time in MaxsonParser's validity check.
  int64_t last_modified = 0;

  std::string QualifiedName() const { return database + "." + name; }
};

/// In-process Hive-metastore stand-in: databases and tables with schemas,
/// locations and modification times, persisted as JSON so that a warehouse
/// directory can be reopened across runs.
class Catalog {
 public:
  Catalog() = default;

  Status CreateDatabase(const std::string& name);
  bool HasDatabase(const std::string& name) const;

  /// Registers a table. Fails with kAlreadyExists on duplicates.
  Status CreateTable(TableInfo info);

  /// Drops a table; missing table is an error.
  Status DropTable(const std::string& database, const std::string& name);

  /// Looks up a table; the pointer is valid until the catalog is mutated.
  Result<const TableInfo*> GetTable(const std::string& database,
                                    const std::string& name) const;

  bool HasTable(const std::string& database, const std::string& name) const;

  /// Advances a table's logical modification time to `timestamp`.
  Status TouchTable(const std::string& database, const std::string& name,
                    int64_t timestamp);

  std::vector<const TableInfo*> ListTables(const std::string& database) const;
  std::vector<std::string> ListDatabases() const;

  /// Serializes the whole catalog to JSON text / restores from it.
  std::string ToJson() const;
  static Result<Catalog> FromJson(const std::string& text);

  /// Saves to / loads from `path`.
  Status Save(const std::string& path) const;
  static Result<Catalog> Load(const std::string& path);

 private:
  static std::string Key(const std::string& database, const std::string& name) {
    return database + "." + name;
  }

  std::vector<std::string> databases_;
  std::map<std::string, TableInfo> tables_;  // key = "db.table"
};

}  // namespace maxson::catalog

#endif  // MAXSON_CATALOG_CATALOG_H_
