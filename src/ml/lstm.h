#ifndef MAXSON_ML_LSTM_H_
#define MAXSON_ML_LSTM_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "json/json_value.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace maxson::ml {

/// Hyperparameters of the sequence models (Uni-LSTM and LSTM+CRF).
struct LstmConfig {
  int hidden_size = 24;
  int epochs = 30;
  double learning_rate = 0.05;
  double clip = 5.0;  // per-element gradient clip
  uint64_t seed = 13;
};

/// Single-layer unidirectional LSTM emitting per-step 2-class logits.
///
/// This is both the paper's Uni-LSTM baseline (trained with per-step
/// softmax cross-entropy; prediction = argmax at the final step) and the
/// emission layer of the LSTM+CRF hybrid (which replaces the loss with a
/// CRF negative log-likelihood; see lstm_crf.h).
class LstmTagger {
 public:
  static constexpr int kNumLabels = 2;

  /// Per-step cached activations of one forward pass, retained for BPTT.
  struct Trace {
    std::vector<std::vector<double>> inputs;   // x_t
    std::vector<std::vector<double>> i_gate;
    std::vector<std::vector<double>> f_gate;
    std::vector<std::vector<double>> o_gate;
    std::vector<std::vector<double>> g_cand;
    std::vector<std::vector<double>> cell;     // c_t
    std::vector<std::vector<double>> hidden;   // h_t
    std::vector<std::vector<double>> logits;   // per-step emissions
  };

  /// Accumulated gradients mirroring the parameter set.
  struct Gradients;

  void Initialize(int input_size, const LstmConfig& config);

  /// Runs the recurrence over `steps` and fills `trace`.
  void Forward(const std::vector<std::vector<double>>& steps,
               Trace* trace) const;

  /// Backpropagates given dLoss/dlogits per step (same length as the
  /// sequence), accumulating into `grads`.
  void Backward(const Trace& trace,
                const std::vector<std::vector<double>>& dlogits,
                Gradients* grads) const;

  /// Applies accumulated gradients with clipping, then zeroes them.
  void ApplyGradients(Gradients* grads, double lr, double clip);

  /// Trains with per-step softmax cross-entropy (the Uni-LSTM baseline).
  void Fit(const std::vector<Sample>& samples, const LstmConfig& config);

  /// Predicts the final step's label by per-step argmax.
  int Predict(const Sample& sample) const;

  /// Emission logits for every step (used by the CRF layer).
  std::vector<std::vector<double>> Emissions(
      const std::vector<std::vector<double>>& steps) const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

  /// Parameter access, for serialization and for gradient-check tests.
  Matrix& w_i() { return w_i_; }
  Matrix& w_f() { return w_f_; }
  Matrix& w_o() { return w_o_; }
  Matrix& w_g() { return w_g_; }
  Matrix& w_y() { return w_y_; }
  std::vector<double>& b_i() { return b_i_; }
  std::vector<double>& b_f() { return b_f_; }
  std::vector<double>& b_o() { return b_o_; }
  std::vector<double>& b_g() { return b_g_; }
  std::vector<double>& b_y() { return b_y_; }

  /// Weight (de)serialization; FromJson restores a fully usable tagger.
  json::JsonValue ToJson() const;
  static Result<LstmTagger> FromJson(const json::JsonValue& j);

  struct Gradients {
    Matrix w_i, w_f, w_o, w_g, w_y;
    std::vector<double> b_i, b_f, b_o, b_g, b_y;
    void Initialize(int input_size, int hidden_size);
    void Clear();
  };

 private:
  int input_size_ = 0;
  int hidden_size_ = 0;
  // Gate weights operate on z = [h_prev ; x ] (size hidden+input).
  Matrix w_i_, w_f_, w_o_, w_g_;
  std::vector<double> b_i_, b_f_, b_o_, b_g_;
  // Output projection hidden -> kNumLabels.
  Matrix w_y_;
  std::vector<double> b_y_;
};

}  // namespace maxson::ml

#endif  // MAXSON_ML_LSTM_H_
