#ifndef MAXSON_ML_SERIALIZE_H_
#define MAXSON_ML_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "json/json_value.h"
#include "ml/matrix.h"

namespace maxson::ml {

/// JSON (de)serialization helpers for model parameters. Models store their
/// weights as JSON objects — human-inspectable and free of endianness
/// concerns; the matrices involved are small (predictor-scale, not
/// deep-learning-scale).

/// {"rows": R, "cols": C, "data": [ ... R*C doubles ... ]}
json::JsonValue MatrixToJson(const Matrix& m);
Result<Matrix> MatrixFromJson(const json::JsonValue& j);

json::JsonValue VectorToJson(const std::vector<double>& v);
Result<std::vector<double>> VectorFromJson(const json::JsonValue& j);

}  // namespace maxson::ml

#endif  // MAXSON_ML_SERIALIZE_H_
