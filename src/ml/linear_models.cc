#include "ml/linear_models.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "ml/matrix.h"

namespace maxson::ml {

namespace {

double Dot(const std::vector<double>& w, const std::vector<double>& x,
           double bias) {
  double acc = bias;
  const size_t n = std::min(w.size(), x.size());
  for (size_t i = 0; i < n; ++i) acc += w[i] * x[i];
  return acc;
}

}  // namespace

void LogisticRegression::Fit(const std::vector<Sample>& samples,
                             const LinearTrainConfig& config) {
  MAXSON_CHECK(!samples.empty());
  const size_t dim = samples[0].static_features.size();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  Rng rng(config.seed);
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr =
        config.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t i : order) {
      const Sample& s = samples[i];
      const double y = s.final_label();
      const double p = Sigmoid(Dot(weights_, s.static_features, bias_));
      const double err = p - y;  // d(CE)/d(logit)
      for (size_t d = 0; d < dim; ++d) {
        weights_[d] -= lr * (err * s.static_features[d] +
                             config.l2 * weights_[d]);
      }
      bias_ -= lr * err;
    }
  }
}

double LogisticRegression::PredictProba(const Sample& sample) const {
  return Sigmoid(Dot(weights_, sample.static_features, bias_));
}

void LinearSvm::Fit(const std::vector<Sample>& samples,
                    const LinearTrainConfig& config) {
  MAXSON_CHECK(!samples.empty());
  const size_t dim = samples[0].static_features.size();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  Rng rng(config.seed);
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr =
        config.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t i : order) {
      const Sample& s = samples[i];
      const double y = s.final_label() == 1 ? 1.0 : -1.0;
      const double margin = y * Dot(weights_, s.static_features, bias_);
      // Hinge subgradient: only violated margins contribute.
      if (margin < 1.0) {
        for (size_t d = 0; d < dim; ++d) {
          weights_[d] -= lr * (-y * s.static_features[d] +
                               config.l2 * weights_[d]);
        }
        bias_ += lr * y;
      } else {
        for (size_t d = 0; d < dim; ++d) {
          weights_[d] -= lr * config.l2 * weights_[d];
        }
      }
    }
  }
}

double LinearSvm::Margin(const Sample& sample) const {
  return Dot(weights_, sample.static_features, bias_);
}

}  // namespace maxson::ml
