#ifndef MAXSON_ML_LINEAR_MODELS_H_
#define MAXSON_ML_LINEAR_MODELS_H_

#include <vector>

#include "common/random.h"
#include "ml/dataset.h"

namespace maxson::ml {

/// Shared SGD hyperparameters for the static (non-sequence) baselines.
struct LinearTrainConfig {
  int epochs = 40;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  uint64_t seed = 7;
};

/// Binary logistic regression over Sample::static_features — the paper's LR
/// baseline. Predicts 1 when the positive-class probability exceeds 0.5.
class LogisticRegression {
 public:
  void Fit(const std::vector<Sample>& samples, const LinearTrainConfig& config);

  /// Probability of class 1.
  double PredictProba(const Sample& sample) const;
  int Predict(const Sample& sample) const {
    return PredictProba(sample) > 0.5 ? 1 : 0;
  }

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Linear SVM trained with hinge loss — the paper's SVM baseline.
class LinearSvm {
 public:
  void Fit(const std::vector<Sample>& samples, const LinearTrainConfig& config);

  /// Signed margin; Predict thresholds at 0.
  double Margin(const Sample& sample) const;
  int Predict(const Sample& sample) const {
    return Margin(sample) > 0.0 ? 1 : 0;
  }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace maxson::ml

#endif  // MAXSON_ML_LINEAR_MODELS_H_
