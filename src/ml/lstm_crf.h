#ifndef MAXSON_ML_LSTM_CRF_H_
#define MAXSON_ML_LSTM_CRF_H_

#include <vector>

#include "ml/crf.h"
#include "ml/dataset.h"
#include "ml/lstm.h"

namespace maxson::ml {

/// The paper's hybrid predictor: an LSTM produces per-step label emissions
/// which a linear-chain CRF layer scores jointly, learning the transition
/// rules between MPJP / non-MPJP labels. Training minimizes the CRF
/// negative log-likelihood end-to-end (the CRF's emission gradients are
/// backpropagated through the LSTM); inference runs Viterbi and takes the
/// final step's label as "MPJP tomorrow".
class LstmCrf {
 public:
  void Fit(const std::vector<Sample>& samples, const LstmConfig& config);

  /// Viterbi-decoded label of the final step.
  int Predict(const Sample& sample) const;

  /// Full decoded sequence (diagnostics / tests).
  std::vector<int> DecodeSequence(const Sample& sample) const;

  const LinearChainCrf& crf() const { return crf_; }

  /// Parameter (de)serialization of both layers.
  json::JsonValue ToJson() const;
  static Result<LstmCrf> FromJson(const json::JsonValue& j);

 private:
  LstmTagger lstm_;
  LinearChainCrf crf_;
};

}  // namespace maxson::ml

#endif  // MAXSON_ML_LSTM_CRF_H_
