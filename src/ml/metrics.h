#ifndef MAXSON_ML_METRICS_H_
#define MAXSON_ML_METRICS_H_

#include <cstdint>

namespace maxson::ml {

/// Binary-classification confusion counts with the derived scores the
/// paper's Tables III/IV report.
struct BinaryMetrics {
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t fn = 0;
  uint64_t tn = 0;

  void Add(int predicted, int actual) {
    if (predicted == 1 && actual == 1) {
      ++tp;
    } else if (predicted == 1 && actual == 0) {
      ++fp;
    } else if (predicted == 0 && actual == 1) {
      ++fn;
    } else {
      ++tn;
    }
  }

  double Precision() const {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fn);
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const {
    const uint64_t total = tp + fp + fn + tn;
    return total == 0 ? 0.0
                      : static_cast<double>(tp + tn) /
                            static_cast<double>(total);
  }
};

}  // namespace maxson::ml

#endif  // MAXSON_ML_METRICS_H_
