#include "ml/crf.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "ml/matrix.h"

namespace maxson::ml {

LinearChainCrf::LinearChainCrf() {
  std::memset(trans_, 0, sizeof(trans_));
  std::memset(start_, 0, sizeof(start_));
  std::memset(dtrans_, 0, sizeof(dtrans_));
  std::memset(dstart_, 0, sizeof(dstart_));
}

double LinearChainCrf::NegLogLikelihood(
    const std::vector<std::vector<double>>& emissions,
    const std::vector<int>& labels,
    std::vector<std::vector<double>>* demissions) {
  const size_t seq = emissions.size();
  MAXSON_CHECK(seq > 0);
  MAXSON_CHECK(labels.size() == seq);

  // Forward (alpha) and backward (beta) log-messages.
  std::vector<std::vector<double>> alpha(seq,
                                         std::vector<double>(kNumLabels));
  std::vector<std::vector<double>> beta(seq, std::vector<double>(kNumLabels));

  for (int k = 0; k < kNumLabels; ++k) {
    alpha[0][k] = start_[k] + emissions[0][k];
  }
  for (size_t t = 1; t < seq; ++t) {
    for (int k = 0; k < kNumLabels; ++k) {
      std::vector<double> terms(kNumLabels);
      for (int j = 0; j < kNumLabels; ++j) {
        terms[j] = alpha[t - 1][j] + trans_[j][k];
      }
      alpha[t][k] = LogSumExp(terms) + emissions[t][k];
    }
  }
  const double log_z = LogSumExp(alpha[seq - 1]);

  for (int k = 0; k < kNumLabels; ++k) beta[seq - 1][k] = 0.0;
  for (size_t t = seq - 1; t-- > 0;) {
    for (int j = 0; j < kNumLabels; ++j) {
      std::vector<double> terms(kNumLabels);
      for (int k = 0; k < kNumLabels; ++k) {
        terms[k] = trans_[j][k] + emissions[t + 1][k] + beta[t + 1][k];
      }
      beta[t][j] = LogSumExp(terms);
    }
  }

  // Gold score.
  double gold = start_[labels[0]] + emissions[0][labels[0]];
  for (size_t t = 1; t < seq; ++t) {
    gold += trans_[labels[t - 1]][labels[t]] + emissions[t][labels[t]];
  }
  const double nll = log_z - gold;

  // Unary marginals -> emission gradients (and start gradient).
  if (demissions != nullptr) {
    demissions->assign(seq, std::vector<double>(kNumLabels, 0.0));
  }
  for (size_t t = 0; t < seq; ++t) {
    for (int k = 0; k < kNumLabels; ++k) {
      const double marginal = std::exp(alpha[t][k] + beta[t][k] - log_z);
      const double grad = marginal - (labels[t] == k ? 1.0 : 0.0);
      if (demissions != nullptr) (*demissions)[t][k] = grad;
      if (t == 0) dstart_[k] += grad;
    }
  }
  // Pairwise marginals -> transition gradients.
  for (size_t t = 1; t < seq; ++t) {
    for (int j = 0; j < kNumLabels; ++j) {
      for (int k = 0; k < kNumLabels; ++k) {
        const double pair = std::exp(alpha[t - 1][j] + trans_[j][k] +
                                     emissions[t][k] + beta[t][k] - log_z);
        double grad = pair;
        if (labels[t - 1] == j && labels[t] == k) grad -= 1.0;
        dtrans_[j][k] += grad;
      }
    }
  }
  return nll;
}

void LinearChainCrf::ApplyGradients(double lr, double clip) {
  auto clamp = [clip](double v) { return std::max(-clip, std::min(clip, v)); };
  for (int j = 0; j < kNumLabels; ++j) {
    for (int k = 0; k < kNumLabels; ++k) {
      trans_[j][k] -= lr * clamp(dtrans_[j][k]);
      dtrans_[j][k] = 0.0;
    }
    start_[j] -= lr * clamp(dstart_[j]);
    dstart_[j] = 0.0;
  }
}

json::JsonValue LinearChainCrf::ToJson() const {
  using json::JsonValue;
  JsonValue out = JsonValue::Object();
  JsonValue trans = JsonValue::Array();
  for (int j = 0; j < kNumLabels; ++j) {
    for (int k = 0; k < kNumLabels; ++k) {
      trans.Append(JsonValue::Double(trans_[j][k]));
    }
  }
  out.Set("transitions", std::move(trans));
  JsonValue start = JsonValue::Array();
  for (int k = 0; k < kNumLabels; ++k) {
    start.Append(JsonValue::Double(start_[k]));
  }
  out.Set("start", std::move(start));
  return out;
}

Result<LinearChainCrf> LinearChainCrf::FromJson(const json::JsonValue& j) {
  if (!j.is_object()) return Status::ParseError("CRF JSON not an object");
  const json::JsonValue* trans = j.Find("transitions");
  const json::JsonValue* start = j.Find("start");
  if (trans == nullptr || !trans->is_array() ||
      trans->elements().size() != kNumLabels * kNumLabels ||
      start == nullptr || !start->is_array() ||
      start->elements().size() != kNumLabels) {
    return Status::ParseError("CRF JSON missing/malformed fields");
  }
  LinearChainCrf crf;
  for (int a = 0; a < kNumLabels; ++a) {
    for (int b = 0; b < kNumLabels; ++b) {
      crf.trans_[a][b] = trans->At(static_cast<size_t>(a * kNumLabels + b))
                             .double_value();
    }
    crf.start_[a] = start->At(static_cast<size_t>(a)).double_value();
  }
  return crf;
}

std::vector<int> LinearChainCrf::Decode(
    const std::vector<std::vector<double>>& emissions) const {
  const size_t seq = emissions.size();
  MAXSON_CHECK(seq > 0);
  std::vector<std::vector<double>> best(seq, std::vector<double>(kNumLabels));
  std::vector<std::vector<int>> backptr(seq, std::vector<int>(kNumLabels, 0));

  for (int k = 0; k < kNumLabels; ++k) {
    best[0][k] = start_[k] + emissions[0][k];
  }
  for (size_t t = 1; t < seq; ++t) {
    for (int k = 0; k < kNumLabels; ++k) {
      double best_score = best[t - 1][0] + trans_[0][k];
      int best_prev = 0;
      for (int j = 1; j < kNumLabels; ++j) {
        const double score = best[t - 1][j] + trans_[j][k];
        if (score > best_score) {
          best_score = score;
          best_prev = j;
        }
      }
      best[t][k] = best_score + emissions[t][k];
      backptr[t][k] = best_prev;
    }
  }
  std::vector<int> path(seq);
  path[seq - 1] =
      best[seq - 1][1] > best[seq - 1][0] ? 1 : 0;
  for (size_t t = seq - 1; t-- > 0;) {
    path[t] = backptr[t + 1][path[t + 1]];
  }
  return path;
}

}  // namespace maxson::ml
