#ifndef MAXSON_ML_CRF_H_
#define MAXSON_ML_CRF_H_

#include <vector>

#include "common/result.h"
#include "json/json_value.h"

namespace maxson::ml {

/// Linear-chain conditional random field over binary labels (MPJP /
/// non-MPJP), layered on top of per-step emission scores.
///
/// Scores a label sequence y for emissions e as
///   score(y) = start[y_0] + sum_t e_t[y_t] + sum_t trans[y_{t-1}][y_t]
/// and models P(y|e) = exp(score(y)) / Z. Training minimizes the negative
/// log-likelihood; the gradient w.r.t. emissions (unary marginals minus the
/// gold one-hot) is returned so an upstream LSTM can backpropagate through
/// the CRF layer. Decoding uses the Viterbi algorithm, as in the paper.
class LinearChainCrf {
 public:
  static constexpr int kNumLabels = 2;

  LinearChainCrf();

  /// Negative log-likelihood of `labels` under `emissions`, with gradients:
  /// `demissions` gets dNLL/de_t[k]; the CRF's own transition/start
  /// gradients are accumulated internally and applied by ApplyGradients.
  double NegLogLikelihood(const std::vector<std::vector<double>>& emissions,
                          const std::vector<int>& labels,
                          std::vector<std::vector<double>>* demissions);

  /// SGD step on the accumulated transition gradients (clears them).
  void ApplyGradients(double lr, double clip);

  /// Viterbi decode: most probable label sequence.
  std::vector<int> Decode(
      const std::vector<std::vector<double>>& emissions) const;

  const double* transitions() const { return &trans_[0][0]; }

  /// Parameter (de)serialization.
  json::JsonValue ToJson() const;
  static Result<LinearChainCrf> FromJson(const json::JsonValue& j);

 private:
  double trans_[kNumLabels][kNumLabels];   // trans_[from][to]
  double start_[kNumLabels];
  double dtrans_[kNumLabels][kNumLabels];
  double dstart_[kNumLabels];
};

}  // namespace maxson::ml

#endif  // MAXSON_ML_CRF_H_
