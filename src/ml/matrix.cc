#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace maxson::ml {

Matrix Matrix::Random(size_t rows, size_t cols, double scale, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = (2.0 * rng->NextDouble() - 1.0) * scale;
  return m;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  MAXSON_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::TransposeMatVec(
    const std::vector<double>& x) const {
  MAXSON_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::AddOuter(const std::vector<double>& a,
                      const std::vector<double>& b, double scale) {
  MAXSON_CHECK(a.size() == rows_);
  MAXSON_CHECK(b.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = &data_[r * cols_];
    const double ar = a[r] * scale;
    for (size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  MAXSON_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double LogSumExp(const std::vector<double>& xs) {
  double max = xs[0];
  for (double x : xs) max = std::max(max, x);
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max);
  return max + std::log(sum);
}

void SoftmaxInPlace(std::vector<double>* xs) {
  double max = (*xs)[0];
  for (double x : *xs) max = std::max(max, x);
  double sum = 0.0;
  for (double& x : *xs) {
    x = std::exp(x - max);
    sum += x;
  }
  for (double& x : *xs) x /= sum;
}

}  // namespace maxson::ml
