#ifndef MAXSON_ML_MLP_H_
#define MAXSON_ML_MLP_H_

#include <vector>

#include "common/random.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace maxson::ml {

/// Hyperparameters for the MLP baseline; defaults mirror the paper's
/// hidden_layer_sizes=(50, 10, 2)-style configuration.
struct MlpConfig {
  std::vector<int> hidden_sizes = {50, 10};
  int epochs = 60;
  double learning_rate = 0.02;
  double l2 = 1e-5;
  uint64_t seed = 11;
};

/// Feed-forward network with ReLU hidden layers and a sigmoid output over
/// Sample::static_features — the paper's MLPClassifier baseline.
class MlpClassifier {
 public:
  void Fit(const std::vector<Sample>& samples, const MlpConfig& config);

  double PredictProba(const Sample& sample) const;
  int Predict(const Sample& sample) const {
    return PredictProba(sample) > 0.5 ? 1 : 0;
  }

 private:
  struct Layer {
    Matrix weights;             // out x in
    std::vector<double> bias;   // out
  };

  /// Forward pass storing per-layer pre-activations; returns the final
  /// probability.
  double Forward(const std::vector<double>& x,
                 std::vector<std::vector<double>>* activations) const;

  std::vector<Layer> layers_;
};

}  // namespace maxson::ml

#endif  // MAXSON_ML_MLP_H_
