#include "ml/lstm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "ml/serialize.h"

namespace maxson::ml {

namespace {

double ClipValue(double v, double clip) {
  return std::max(-clip, std::min(clip, v));
}

void ClipApply(Matrix* param, const Matrix& grad, double lr, double clip) {
  auto& p = param->data();
  const auto& g = grad.data();
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] -= lr * ClipValue(g[i], clip);
  }
}

void ClipApplyVec(std::vector<double>* param, const std::vector<double>& grad,
                  double lr, double clip) {
  for (size_t i = 0; i < param->size(); ++i) {
    (*param)[i] -= lr * ClipValue(grad[i], clip);
  }
}

}  // namespace

void LstmTagger::Gradients::Initialize(int input_size, int hidden_size) {
  const size_t z = static_cast<size_t>(hidden_size + input_size);
  const size_t h = static_cast<size_t>(hidden_size);
  w_i = Matrix::Zeros(h, z);
  w_f = Matrix::Zeros(h, z);
  w_o = Matrix::Zeros(h, z);
  w_g = Matrix::Zeros(h, z);
  w_y = Matrix::Zeros(kNumLabels, h);
  b_i.assign(h, 0.0);
  b_f.assign(h, 0.0);
  b_o.assign(h, 0.0);
  b_g.assign(h, 0.0);
  b_y.assign(kNumLabels, 0.0);
}

void LstmTagger::Gradients::Clear() {
  w_i.Fill(0.0);
  w_f.Fill(0.0);
  w_o.Fill(0.0);
  w_g.Fill(0.0);
  w_y.Fill(0.0);
  b_i.assign(b_i.size(), 0.0);
  b_f.assign(b_f.size(), 0.0);
  b_o.assign(b_o.size(), 0.0);
  b_g.assign(b_g.size(), 0.0);
  b_y.assign(b_y.size(), 0.0);
}

void LstmTagger::Initialize(int input_size, const LstmConfig& config) {
  input_size_ = input_size;
  hidden_size_ = config.hidden_size;
  Rng rng(config.seed);
  const size_t z = static_cast<size_t>(hidden_size_ + input_size_);
  const size_t h = static_cast<size_t>(hidden_size_);
  const double scale = std::sqrt(1.0 / static_cast<double>(z));
  w_i_ = Matrix::Random(h, z, scale, &rng);
  w_f_ = Matrix::Random(h, z, scale, &rng);
  w_o_ = Matrix::Random(h, z, scale, &rng);
  w_g_ = Matrix::Random(h, z, scale, &rng);
  b_i_.assign(h, 0.0);
  // Forget-gate bias starts positive so early training retains memory.
  b_f_.assign(h, 1.0);
  b_o_.assign(h, 0.0);
  b_g_.assign(h, 0.0);
  w_y_ = Matrix::Random(kNumLabels, h,
                        std::sqrt(1.0 / static_cast<double>(h)), &rng);
  b_y_.assign(kNumLabels, 0.0);
}

void LstmTagger::Forward(const std::vector<std::vector<double>>& steps,
                         Trace* trace) const {
  const size_t h = static_cast<size_t>(hidden_size_);
  std::vector<double> h_prev(h, 0.0);
  std::vector<double> c_prev(h, 0.0);

  trace->inputs = steps;
  const size_t seq = steps.size();
  trace->i_gate.resize(seq);
  trace->f_gate.resize(seq);
  trace->o_gate.resize(seq);
  trace->g_cand.resize(seq);
  trace->cell.resize(seq);
  trace->hidden.resize(seq);
  trace->logits.resize(seq);

  for (size_t t = 0; t < seq; ++t) {
    MAXSON_CHECK(steps[t].size() == static_cast<size_t>(input_size_));
    std::vector<double> z(h + steps[t].size());
    std::copy(h_prev.begin(), h_prev.end(), z.begin());
    std::copy(steps[t].begin(), steps[t].end(), z.begin() + h);

    std::vector<double> i = w_i_.MatVec(z);
    std::vector<double> f = w_f_.MatVec(z);
    std::vector<double> o = w_o_.MatVec(z);
    std::vector<double> g = w_g_.MatVec(z);
    for (size_t k = 0; k < h; ++k) {
      i[k] = Sigmoid(i[k] + b_i_[k]);
      f[k] = Sigmoid(f[k] + b_f_[k]);
      o[k] = Sigmoid(o[k] + b_o_[k]);
      g[k] = std::tanh(g[k] + b_g_[k]);
    }
    std::vector<double> c(h);
    std::vector<double> hidden(h);
    for (size_t k = 0; k < h; ++k) {
      c[k] = f[k] * c_prev[k] + i[k] * g[k];
      hidden[k] = o[k] * std::tanh(c[k]);
    }
    std::vector<double> logits = w_y_.MatVec(hidden);
    for (int k = 0; k < kNumLabels; ++k) logits[k] += b_y_[k];

    trace->i_gate[t] = std::move(i);
    trace->f_gate[t] = std::move(f);
    trace->o_gate[t] = std::move(o);
    trace->g_cand[t] = std::move(g);
    trace->cell[t] = c;
    trace->hidden[t] = hidden;
    trace->logits[t] = std::move(logits);
    h_prev = std::move(hidden);
    c_prev = std::move(c);
  }
}

void LstmTagger::Backward(const Trace& trace,
                          const std::vector<std::vector<double>>& dlogits,
                          Gradients* grads) const {
  const size_t h = static_cast<size_t>(hidden_size_);
  const size_t seq = trace.inputs.size();
  MAXSON_CHECK(dlogits.size() == seq);

  std::vector<double> dh_next(h, 0.0);
  std::vector<double> dc_next(h, 0.0);

  for (size_t t = seq; t-- > 0;) {
    // Output layer.
    grads->w_y.AddOuter(dlogits[t], trace.hidden[t], 1.0);
    for (int k = 0; k < kNumLabels; ++k) grads->b_y[k] += dlogits[t][k];
    std::vector<double> dh = w_y_.TransposeMatVec(dlogits[t]);
    for (size_t k = 0; k < h; ++k) dh[k] += dh_next[k];

    const std::vector<double>& c = trace.cell[t];
    const std::vector<double>& c_prev =
        t > 0 ? trace.cell[t - 1] : std::vector<double>(h, 0.0);
    const std::vector<double>& h_prev =
        t > 0 ? trace.hidden[t - 1] : std::vector<double>(h, 0.0);

    std::vector<double> di(h);
    std::vector<double> df(h);
    std::vector<double> do_(h);
    std::vector<double> dg(h);
    std::vector<double> dc(h);
    for (size_t k = 0; k < h; ++k) {
      const double tanh_c = std::tanh(c[k]);
      do_[k] = dh[k] * tanh_c;
      dc[k] = dh[k] * trace.o_gate[t][k] * (1.0 - tanh_c * tanh_c) +
              dc_next[k];
      di[k] = dc[k] * trace.g_cand[t][k];
      df[k] = dc[k] * c_prev[k];
      dg[k] = dc[k] * trace.i_gate[t][k];
      // Through the activation derivatives.
      di[k] *= trace.i_gate[t][k] * (1.0 - trace.i_gate[t][k]);
      df[k] *= trace.f_gate[t][k] * (1.0 - trace.f_gate[t][k]);
      do_[k] *= trace.o_gate[t][k] * (1.0 - trace.o_gate[t][k]);
      dg[k] *= (1.0 - trace.g_cand[t][k] * trace.g_cand[t][k]);
    }

    std::vector<double> z(h + trace.inputs[t].size());
    std::copy(h_prev.begin(), h_prev.end(), z.begin());
    std::copy(trace.inputs[t].begin(), trace.inputs[t].end(), z.begin() + h);

    grads->w_i.AddOuter(di, z, 1.0);
    grads->w_f.AddOuter(df, z, 1.0);
    grads->w_o.AddOuter(do_, z, 1.0);
    grads->w_g.AddOuter(dg, z, 1.0);
    for (size_t k = 0; k < h; ++k) {
      grads->b_i[k] += di[k];
      grads->b_f[k] += df[k];
      grads->b_o[k] += do_[k];
      grads->b_g[k] += dg[k];
    }

    // Accumulate gradient w.r.t. z, then split into dh_prev.
    std::vector<double> dz = w_i_.TransposeMatVec(di);
    const std::vector<double> dzf = w_f_.TransposeMatVec(df);
    const std::vector<double> dzo = w_o_.TransposeMatVec(do_);
    const std::vector<double> dzg = w_g_.TransposeMatVec(dg);
    for (size_t k = 0; k < dz.size(); ++k) dz[k] += dzf[k] + dzo[k] + dzg[k];

    for (size_t k = 0; k < h; ++k) {
      dh_next[k] = dz[k];
      dc_next[k] = dc[k] * trace.f_gate[t][k];
    }
  }
}

void LstmTagger::ApplyGradients(Gradients* grads, double lr, double clip) {
  ClipApply(&w_i_, grads->w_i, lr, clip);
  ClipApply(&w_f_, grads->w_f, lr, clip);
  ClipApply(&w_o_, grads->w_o, lr, clip);
  ClipApply(&w_g_, grads->w_g, lr, clip);
  ClipApply(&w_y_, grads->w_y, lr, clip);
  ClipApplyVec(&b_i_, grads->b_i, lr, clip);
  ClipApplyVec(&b_f_, grads->b_f, lr, clip);
  ClipApplyVec(&b_o_, grads->b_o, lr, clip);
  ClipApplyVec(&b_g_, grads->b_g, lr, clip);
  ClipApplyVec(&b_y_, grads->b_y, lr, clip);
  grads->Clear();
}

void LstmTagger::Fit(const std::vector<Sample>& samples,
                     const LstmConfig& config) {
  MAXSON_CHECK(!samples.empty());
  MAXSON_CHECK(!samples[0].steps.empty());
  Initialize(static_cast<int>(samples[0].steps[0].size()), config);

  Gradients grads;
  grads.Initialize(input_size_, hidden_size_);
  Rng rng(config.seed + 1);
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr =
        config.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const Sample& s = samples[idx];
      Trace trace;
      Forward(s.steps, &trace);
      // Per-step softmax cross-entropy.
      std::vector<std::vector<double>> dlogits(s.steps.size());
      for (size_t t = 0; t < s.steps.size(); ++t) {
        std::vector<double> probs = trace.logits[t];
        SoftmaxInPlace(&probs);
        probs[static_cast<size_t>(s.labels[t])] -= 1.0;
        dlogits[t] = std::move(probs);
      }
      Backward(trace, dlogits, &grads);
      ApplyGradients(&grads, lr, config.clip);
    }
  }
}

int LstmTagger::Predict(const Sample& sample) const {
  Trace trace;
  Forward(sample.steps, &trace);
  const std::vector<double>& last = trace.logits.back();
  return last[1] > last[0] ? 1 : 0;
}

std::vector<std::vector<double>> LstmTagger::Emissions(
    const std::vector<std::vector<double>>& steps) const {
  Trace trace;
  Forward(steps, &trace);
  return trace.logits;
}

json::JsonValue LstmTagger::ToJson() const {
  using json::JsonValue;
  JsonValue out = JsonValue::Object();
  out.Set("input_size", JsonValue::Int(input_size_));
  out.Set("hidden_size", JsonValue::Int(hidden_size_));
  out.Set("w_i", MatrixToJson(w_i_));
  out.Set("w_f", MatrixToJson(w_f_));
  out.Set("w_o", MatrixToJson(w_o_));
  out.Set("w_g", MatrixToJson(w_g_));
  out.Set("w_y", MatrixToJson(w_y_));
  out.Set("b_i", VectorToJson(b_i_));
  out.Set("b_f", VectorToJson(b_f_));
  out.Set("b_o", VectorToJson(b_o_));
  out.Set("b_g", VectorToJson(b_g_));
  out.Set("b_y", VectorToJson(b_y_));
  return out;
}

Result<LstmTagger> LstmTagger::FromJson(const json::JsonValue& j) {
  if (!j.is_object()) return Status::ParseError("LSTM JSON not an object");
  const json::JsonValue* input_size = j.Find("input_size");
  const json::JsonValue* hidden_size = j.Find("hidden_size");
  if (input_size == nullptr || hidden_size == nullptr) {
    return Status::ParseError("LSTM JSON missing sizes");
  }
  LstmTagger lstm;
  lstm.input_size_ = static_cast<int>(input_size->int_value());
  lstm.hidden_size_ = static_cast<int>(hidden_size->int_value());
  auto matrix = [&](const char* name, Matrix* out) -> Status {
    const json::JsonValue* field = j.Find(name);
    if (field == nullptr) {
      return Status::ParseError(std::string("LSTM JSON missing ") + name);
    }
    MAXSON_ASSIGN_OR_RETURN(*out, MatrixFromJson(*field));
    return Status::Ok();
  };
  auto vector = [&](const char* name, std::vector<double>* out) -> Status {
    const json::JsonValue* field = j.Find(name);
    if (field == nullptr) {
      return Status::ParseError(std::string("LSTM JSON missing ") + name);
    }
    MAXSON_ASSIGN_OR_RETURN(*out, VectorFromJson(*field));
    return Status::Ok();
  };
  MAXSON_RETURN_NOT_OK(matrix("w_i", &lstm.w_i_));
  MAXSON_RETURN_NOT_OK(matrix("w_f", &lstm.w_f_));
  MAXSON_RETURN_NOT_OK(matrix("w_o", &lstm.w_o_));
  MAXSON_RETURN_NOT_OK(matrix("w_g", &lstm.w_g_));
  MAXSON_RETURN_NOT_OK(matrix("w_y", &lstm.w_y_));
  MAXSON_RETURN_NOT_OK(vector("b_i", &lstm.b_i_));
  MAXSON_RETURN_NOT_OK(vector("b_f", &lstm.b_f_));
  MAXSON_RETURN_NOT_OK(vector("b_o", &lstm.b_o_));
  MAXSON_RETURN_NOT_OK(vector("b_g", &lstm.b_g_));
  MAXSON_RETURN_NOT_OK(vector("b_y", &lstm.b_y_));
  if (lstm.b_i_.size() != static_cast<size_t>(lstm.hidden_size_) ||
      lstm.w_i_.cols() !=
          static_cast<size_t>(lstm.hidden_size_ + lstm.input_size_)) {
    return Status::ParseError("LSTM JSON shape mismatch");
  }
  return lstm;
}

}  // namespace maxson::ml
