#include "ml/serialize.h"

namespace maxson::ml {

using json::JsonValue;

JsonValue MatrixToJson(const Matrix& m) {
  JsonValue out = JsonValue::Object();
  out.Set("rows", JsonValue::Int(static_cast<int64_t>(m.rows())));
  out.Set("cols", JsonValue::Int(static_cast<int64_t>(m.cols())));
  JsonValue data = JsonValue::Array();
  for (double v : m.data()) data.Append(JsonValue::Double(v));
  out.Set("data", std::move(data));
  return out;
}

Result<Matrix> MatrixFromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::ParseError("matrix JSON not an object");
  const JsonValue* rows = j.Find("rows");
  const JsonValue* cols = j.Find("cols");
  const JsonValue* data = j.Find("data");
  if (rows == nullptr || cols == nullptr || data == nullptr ||
      !data->is_array()) {
    return Status::ParseError("matrix JSON missing fields");
  }
  Matrix m(static_cast<size_t>(rows->int_value()),
           static_cast<size_t>(cols->int_value()));
  if (data->elements().size() != m.rows() * m.cols()) {
    return Status::ParseError("matrix JSON data size mismatch");
  }
  for (size_t i = 0; i < data->elements().size(); ++i) {
    m.data()[i] = data->At(i).double_value();
  }
  return m;
}

JsonValue VectorToJson(const std::vector<double>& v) {
  JsonValue out = JsonValue::Array();
  for (double x : v) out.Append(JsonValue::Double(x));
  return out;
}

Result<std::vector<double>> VectorFromJson(const JsonValue& j) {
  if (!j.is_array()) return Status::ParseError("vector JSON not an array");
  std::vector<double> out;
  out.reserve(j.elements().size());
  for (const JsonValue& x : j.elements()) out.push_back(x.double_value());
  return out;
}

}  // namespace maxson::ml
