#ifndef MAXSON_ML_MATRIX_H_
#define MAXSON_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace maxson::ml {

/// Dense row-major matrix of doubles; the only linear-algebra primitive the
/// ml/ models need. Deliberately minimal: shapes are asserted, storage is a
/// flat vector, and all hot loops live in the models themselves.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot-style uniform initialization in [-scale, scale].
  static Matrix Random(size_t rows, size_t cols, double scale, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = this * x (matrix-vector product). x.size() must equal cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = this^T * x. x.size() must equal rows().
  std::vector<double> TransposeMatVec(const std::vector<double>& x) const;

  /// this += scale * (a outer b), where a.size()==rows, b.size()==cols.
  /// The rank-1 update at the heart of every SGD weight gradient here.
  void AddOuter(const std::vector<double>& a, const std::vector<double>& b,
                double scale);

  /// this += scale * other (shapes must match).
  void AddScaled(const Matrix& other, double scale);

  void Fill(double v) { data_.assign(data_.size(), v); }

  /// Largest absolute entry (used for gradient-clipping decisions).
  double MaxAbs() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Numerically stable helpers shared by the models.
double Sigmoid(double x);
double LogSumExp(const std::vector<double>& xs);
void SoftmaxInPlace(std::vector<double>* xs);

}  // namespace maxson::ml

#endif  // MAXSON_ML_MATRIX_H_
