#include "ml/lstm_crf.h"

#include <numeric>

#include "common/logging.h"

namespace maxson::ml {

void LstmCrf::Fit(const std::vector<Sample>& samples,
                  const LstmConfig& config) {
  MAXSON_CHECK(!samples.empty());
  MAXSON_CHECK(!samples[0].steps.empty());
  lstm_.Initialize(static_cast<int>(samples[0].steps[0].size()), config);

  LstmTagger::Gradients grads;
  grads.Initialize(lstm_.input_size(), lstm_.hidden_size());
  Rng rng(config.seed + 2);
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr =
        config.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const Sample& s = samples[idx];
      LstmTagger::Trace trace;
      lstm_.Forward(s.steps, &trace);
      std::vector<std::vector<double>> demissions;
      crf_.NegLogLikelihood(trace.logits, s.labels, &demissions);
      lstm_.Backward(trace, demissions, &grads);
      lstm_.ApplyGradients(&grads, lr, config.clip);
      crf_.ApplyGradients(lr, config.clip);
    }
  }
}

int LstmCrf::Predict(const Sample& sample) const {
  return DecodeSequence(sample).back();
}

std::vector<int> LstmCrf::DecodeSequence(const Sample& sample) const {
  const std::vector<std::vector<double>> emissions =
      lstm_.Emissions(sample.steps);
  return crf_.Decode(emissions);
}

json::JsonValue LstmCrf::ToJson() const {
  json::JsonValue out = json::JsonValue::Object();
  out.Set("lstm", lstm_.ToJson());
  out.Set("crf", crf_.ToJson());
  return out;
}

Result<LstmCrf> LstmCrf::FromJson(const json::JsonValue& j) {
  if (!j.is_object()) return Status::ParseError("LSTM+CRF JSON not an object");
  const json::JsonValue* lstm = j.Find("lstm");
  const json::JsonValue* crf = j.Find("crf");
  if (lstm == nullptr || crf == nullptr) {
    return Status::ParseError("LSTM+CRF JSON missing layers");
  }
  LstmCrf model;
  MAXSON_ASSIGN_OR_RETURN(model.lstm_, LstmTagger::FromJson(*lstm));
  MAXSON_ASSIGN_OR_RETURN(model.crf_, LinearChainCrf::FromJson(*crf));
  return model;
}

}  // namespace maxson::ml
