#ifndef MAXSON_ML_DATASET_H_
#define MAXSON_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace maxson::ml {

/// One training/evaluation example for the MPJP predictor: a window of
/// per-day observations of one JSONPath plus its location features.
///
/// * `steps[t]` is the feature vector of day t within the window (count,
///   datediff, and any per-step encodings) — consumed by sequence models.
/// * `labels[t]` is 1 when the JSONPath is an MPJP on day t+1 (i.e. each
///   step is labeled with the *next* day's status, so the final step's
///   label is exactly "is this path an MPJP tomorrow?").
/// * `static_features` encode the location (database/table/column hashes)
///   and orderless aggregates of the window — what a model that cannot see
///   date sequences gets to work with.
struct Sample {
  std::vector<std::vector<double>> steps;
  std::vector<int> labels;
  std::vector<double> static_features;

  int final_label() const { return labels.empty() ? 0 : labels.back(); }
};

/// Deterministic shuffled split into train/validation/test partitions
/// (70/20/10 in the paper's evaluation).
struct DatasetSplit {
  std::vector<Sample> train;
  std::vector<Sample> validation;
  std::vector<Sample> test;
};

inline DatasetSplit SplitDataset(std::vector<Sample> samples,
                                 double train_fraction,
                                 double validation_fraction, Rng* rng) {
  rng->Shuffle(&samples);
  DatasetSplit split;
  const size_t n = samples.size();
  const size_t train_n = static_cast<size_t>(n * train_fraction);
  const size_t val_n = static_cast<size_t>(n * validation_fraction);
  for (size_t i = 0; i < n; ++i) {
    if (i < train_n) {
      split.train.push_back(std::move(samples[i]));
    } else if (i < train_n + val_n) {
      split.validation.push_back(std::move(samples[i]));
    } else {
      split.test.push_back(std::move(samples[i]));
    }
  }
  return split;
}

}  // namespace maxson::ml

#endif  // MAXSON_ML_DATASET_H_
