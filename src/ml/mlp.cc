#include "ml/mlp.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace maxson::ml {

double MlpClassifier::Forward(
    const std::vector<double>& x,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> current = x;
  if (activations != nullptr) activations->push_back(current);
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> z = layers_[l].weights.MatVec(current);
    for (size_t i = 0; i < z.size(); ++i) z[i] += layers_[l].bias[i];
    const bool is_output = l + 1 == layers_.size();
    if (!is_output) {
      for (double& v : z) v = v > 0.0 ? v : 0.0;  // ReLU
    }
    current = std::move(z);
    if (activations != nullptr) activations->push_back(current);
  }
  return Sigmoid(current[0]);
}

void MlpClassifier::Fit(const std::vector<Sample>& samples,
                        const MlpConfig& config) {
  MAXSON_CHECK(!samples.empty());
  const size_t input_dim = samples[0].static_features.size();
  Rng rng(config.seed);

  layers_.clear();
  size_t prev = input_dim;
  for (int hidden : config.hidden_sizes) {
    Layer layer;
    const double scale = std::sqrt(6.0 / static_cast<double>(prev + hidden));
    layer.weights = Matrix::Random(hidden, prev, scale, &rng);
    layer.bias.assign(hidden, 0.0);
    layers_.push_back(std::move(layer));
    prev = static_cast<size_t>(hidden);
  }
  Layer out;
  out.weights = Matrix::Random(1, prev, std::sqrt(6.0 / (prev + 1.0)), &rng);
  out.bias.assign(1, 0.0);
  layers_.push_back(std::move(out));

  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr =
        config.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const Sample& s = samples[idx];
      std::vector<std::vector<double>> activations;
      const double p = Forward(s.static_features, &activations);
      const double y = s.final_label();
      // dLoss/dlogit for sigmoid+CE.
      std::vector<double> delta = {p - y};
      for (size_t l = layers_.size(); l-- > 0;) {
        const std::vector<double>& input = activations[l];
        // Gradient w.r.t. this layer's input, before applying ReLU mask.
        std::vector<double> prev_delta =
            layers_[l].weights.TransposeMatVec(delta);
        // Weight update.
        layers_[l].weights.AddOuter(delta, input, -lr);
        if (config.l2 > 0.0) {
          layers_[l].weights.AddScaled(layers_[l].weights, -lr * config.l2);
        }
        for (size_t i = 0; i < delta.size(); ++i) {
          layers_[l].bias[i] -= lr * delta[i];
        }
        if (l > 0) {
          // ReLU derivative: zero where the previous layer's output was
          // clamped (post-ReLU activation <= 0).
          for (size_t i = 0; i < prev_delta.size(); ++i) {
            if (activations[l][i] <= 0.0) prev_delta[i] = 0.0;
          }
          delta = std::move(prev_delta);
        }
      }
    }
  }
}

double MlpClassifier::PredictProba(const Sample& sample) const {
  return Forward(sample.static_features, nullptr);
}

}  // namespace maxson::ml
