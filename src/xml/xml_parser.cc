#include "xml/xml_parser.h"

#include <cctype>
#include <cstdlib>

namespace maxson::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<XmlElement>> Parse() {
    SkipProlog();
    MAXSON_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement(0));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after root element");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool StartsWithHere(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// Skips the XML declaration, comments, PIs and whitespace before (and
  /// after) the root element.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (StartsWithHere("<?")) {
        const size_t end = text_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 2;
      } else if (StartsWithHere("<!--")) {
        const size_t end = text_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
      } else if (StartsWithHere("<!DOCTYPE")) {
        const size_t end = text_.find('>', pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }
  void SkipMisc() { SkipProlog(); }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Decodes entities in `raw` into `out`.
  Status DecodeText(std::string_view raw, std::string* out) const {
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out->push_back('<');
      } else if (entity == "gt") {
        out->push_back('>');
      } else if (entity == "amp") {
        out->push_back('&');
      } else if (entity == "apos") {
        out->push_back('\'');
      } else if (entity == "quot") {
        out->push_back('"');
      } else if (!entity.empty() && entity[0] == '#') {
        const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        const long code = std::strtol(
            std::string(entity.substr(hex ? 2 : 1)).c_str(), nullptr,
            hex ? 16 : 10);
        // Encode as UTF-8.
        const uint32_t cp = static_cast<uint32_t>(code);
        if (cp < 0x80) {
          out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
      } else {
        return Status::ParseError("unknown entity &" + std::string(entity) +
                                  ";");
      }
      i = semi + 1;
    }
    return Status::Ok();
  }

  Result<std::unique_ptr<XmlElement>> ParseElement(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    ++pos_;
    MAXSON_ASSIGN_OR_RETURN(std::string tag, ParseName());
    auto element = std::make_unique<XmlElement>(std::move(tag));

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || StartsWithHere("/>")) break;
      MAXSON_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '='");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      const char quote = Peek();
      ++pos_;
      const size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value;
      MAXSON_RETURN_NOT_OK(
          DecodeText(text_.substr(start, pos_ - start), &value));
      ++pos_;
      element->AddAttribute(std::move(name), std::move(value));
    }

    if (StartsWithHere("/>")) {
      pos_ += 2;
      return element;
    }
    ++pos_;  // '>'

    // Content: text, children, comments, CDATA, until the end tag.
    while (true) {
      if (AtEnd()) return Error("unterminated element <" + element->tag() + ">");
      if (StartsWithHere("</")) {
        pos_ += 2;
        MAXSON_ASSIGN_OR_RETURN(std::string end_tag, ParseName());
        if (end_tag != element->tag()) {
          return Error("mismatched end tag </" + end_tag + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
        ++pos_;
        return element;
      }
      if (StartsWithHere("<!--")) {
        const size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (StartsWithHere("<![CDATA[")) {
        const size_t start = pos_ + 9;
        const size_t end = text_.find("]]>", start);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        element->AppendText(text_.substr(start, end - start));
        pos_ = end + 3;
        continue;
      }
      if (Peek() == '<') {
        MAXSON_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                                ParseElement(depth + 1));
        // Transfer ownership into the parent.
        XmlElement* slot = element->AddChild(child->tag());
        *slot = std::move(*child);
        continue;
      }
      const size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      std::string decoded;
      MAXSON_RETURN_NOT_OK(
          DecodeText(text_.substr(start, pos_ - start), &decoded));
      // Trim pure-whitespace runs between elements but keep real text.
      bool all_space = true;
      for (char c : decoded) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) element->AppendText(decoded);
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void EscapeInto(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void WriteElement(const XmlElement& element, std::string* out) {
  out->push_back('<');
  out->append(element.tag());
  for (const auto& [name, value] : element.attributes()) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    EscapeInto(value, out);
    out->push_back('"');
  }
  if (element.text().empty() && element.children().empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  EscapeInto(element.text(), out);
  for (const auto& child : element.children()) {
    WriteElement(*child, out);
  }
  out->append("</");
  out->append(element.tag());
  out->push_back('>');
}

}  // namespace

Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

std::string WriteXml(const XmlElement& root) {
  std::string out;
  WriteElement(root, &out);
  return out;
}

}  // namespace maxson::xml
