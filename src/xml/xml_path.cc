#include "xml/xml_path.h"

#include <cctype>

#include "xml/xml_parser.h"

namespace maxson::xml {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

Result<XmlPath> XmlPath::Parse(std::string_view text) {
  if (text.empty() || text[0] != '/') {
    return Status::ParseError("XPath must start with '/': " +
                              std::string(text));
  }
  std::vector<XmlPathStep> steps;
  size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] != '/') {
      return Status::ParseError("expected '/' in XPath: " + std::string(text));
    }
    ++pos;
    if (pos < text.size() && text[pos] == '@') {
      ++pos;
      const size_t start = pos;
      while (pos < text.size() && IsNameChar(text[pos])) ++pos;
      if (pos == start || pos != text.size()) {
        return Status::ParseError("attribute step must be last: " +
                                  std::string(text));
      }
      XmlPathStep step;
      step.kind = XmlPathStep::Kind::kAttribute;
      step.name = std::string(text.substr(start, pos - start));
      steps.push_back(std::move(step));
      break;
    }
    const size_t start = pos;
    while (pos < text.size() && IsNameChar(text[pos])) ++pos;
    if (pos == start) {
      return Status::ParseError("empty element name in XPath: " +
                                std::string(text));
    }
    XmlPathStep step;
    step.name = std::string(text.substr(start, pos - start));
    if (pos < text.size() && text[pos] == '[') {
      ++pos;
      const size_t digits = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      if (pos == digits || pos >= text.size() || text[pos] != ']') {
        return Status::ParseError("bad positional predicate in XPath");
      }
      const int64_t one_based =
          std::stoll(std::string(text.substr(digits, pos - digits)));
      if (one_based < 1) {
        return Status::ParseError("XPath positions are 1-based");
      }
      step.index = one_based - 1;
      ++pos;
    }
    steps.push_back(std::move(step));
  }
  if (steps.empty()) return Status::ParseError("empty XPath");
  return XmlPath(std::move(steps));
}

std::string XmlPath::ToString() const {
  std::string out;
  for (const XmlPathStep& step : steps_) {
    out.push_back('/');
    if (step.kind == XmlPathStep::Kind::kAttribute) {
      out.push_back('@');
      out.append(step.name);
    } else {
      out.append(step.name);
      if (step.index > 0) {
        out.push_back('[');
        out.append(std::to_string(step.index + 1));
        out.push_back(']');
      }
    }
  }
  return out;
}

Result<std::string> XmlPath::Evaluate(const XmlElement& root) const {
  if (steps_.empty()) return Status::NotFound("empty XPath");
  // First step names the document root.
  if (steps_[0].kind != XmlPathStep::Kind::kElement ||
      steps_[0].name != root.tag() || steps_[0].index != 0) {
    return Status::NotFound("root element mismatch for " + ToString());
  }
  const XmlElement* current = &root;
  for (size_t i = 1; i < steps_.size(); ++i) {
    const XmlPathStep& step = steps_[i];
    if (step.kind == XmlPathStep::Kind::kAttribute) {
      const std::string* value = current->FindAttribute(step.name);
      if (value == nullptr) {
        return Status::NotFound("attribute @" + step.name + " not present");
      }
      return *value;
    }
    const XmlElement* child =
        current->FindChild(step.name, static_cast<size_t>(step.index));
    if (child == nullptr) {
      return Status::NotFound("element " + step.name + " not present in " +
                              ToString());
    }
    current = child;
  }
  return current->text();
}

Result<std::string> GetXmlObject(std::string_view xml_text,
                                 const XmlPath& path) {
  MAXSON_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root,
                          ParseXml(xml_text));
  return path.Evaluate(*root);
}

}  // namespace maxson::xml
