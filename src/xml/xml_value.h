#ifndef MAXSON_XML_XML_VALUE_H_
#define MAXSON_XML_XML_VALUE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace maxson::xml {

/// One element of an XML document tree: tag, attributes, text content
/// (concatenated character data directly under this element), and child
/// elements in document order.
///
/// This is the substrate for the paper's future-work claim that "Maxson's
/// pre-caching technique can also be applied to other data formats, such
/// as XML": the cacher and plan rewriter treat XPath-addressed values
/// exactly like JSONPath-addressed ones.
class XmlElement {
 public:
  XmlElement() = default;
  explicit XmlElement(std::string tag) : tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }
  void set_tag(std::string tag) { tag_ = std::move(tag); }

  const std::string& text() const { return text_; }
  void AppendText(std::string_view text) { text_.append(text); }

  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  void AddAttribute(std::string name, std::string value) {
    attributes_.emplace_back(std::move(name), std::move(value));
  }
  /// Returns nullptr when the attribute is absent.
  const std::string* FindAttribute(std::string_view name) const {
    for (const auto& [attr, value] : attributes_) {
      if (attr == name) return &value;
    }
    return nullptr;
  }

  const std::vector<std::unique_ptr<XmlElement>>& children() const {
    return children_;
  }
  XmlElement* AddChild(std::string tag) {
    children_.push_back(std::make_unique<XmlElement>(std::move(tag)));
    return children_.back().get();
  }

  /// The i-th (0-based) child with the given tag, or nullptr.
  const XmlElement* FindChild(std::string_view tag, size_t index = 0) const {
    size_t seen = 0;
    for (const auto& child : children_) {
      if (child->tag() == tag) {
        if (seen == index) return child.get();
        ++seen;
      }
    }
    return nullptr;
  }

 private:
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlElement>> children_;
};

}  // namespace maxson::xml

#endif  // MAXSON_XML_XML_VALUE_H_
