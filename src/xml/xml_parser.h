#ifndef MAXSON_XML_XML_PARSER_H_
#define MAXSON_XML_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xml/xml_value.h"

namespace maxson::xml {

/// Parses one XML document into an element tree.
///
/// Supported: elements with attributes (single- or double-quoted),
/// self-closing tags, character data, the five predefined entities
/// (&lt; &gt; &amp; &apos; &quot;) plus numeric character references,
/// comments, CDATA sections, processing instructions and an XML
/// declaration (both skipped). Out of scope (not needed for data records):
/// DTDs and namespaces-aware validation — prefixes are kept verbatim in
/// tag names.
Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view text);

/// Serializes an element tree back to XML text (escaping as needed).
std::string WriteXml(const XmlElement& root);

}  // namespace maxson::xml

#endif  // MAXSON_XML_XML_PARSER_H_
