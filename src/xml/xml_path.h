#ifndef MAXSON_XML_XML_PATH_H_
#define MAXSON_XML_XML_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/xml_value.h"

namespace maxson::xml {

/// One step of an XPath-lite expression.
struct XmlPathStep {
  enum class Kind { kElement, kAttribute };
  Kind kind = Kind::kElement;
  std::string name;
  /// 0-based ordinal among same-tag siblings; from `tag[N]` (1-based in the
  /// textual form, per XPath convention).
  int64_t index = 0;
};

/// Absolute, downward-only XPath subset mirroring what JsonPath covers for
/// JSON: `/root/child[2]/leaf/@attr`. Steps select child elements by tag
/// (optionally with a 1-based positional predicate); a final `@name` step
/// selects an attribute. Evaluation returns the element's text content or
/// the attribute value — the same "scalar extraction" contract as
/// get_json_object.
class XmlPath {
 public:
  XmlPath() = default;
  explicit XmlPath(std::vector<XmlPathStep> steps) : steps_(std::move(steps)) {}

  static Result<XmlPath> Parse(std::string_view text);

  const std::vector<XmlPathStep>& steps() const { return steps_; }

  std::string ToString() const;

  /// Evaluates against a parsed document. `root` is the document's root
  /// element; the first step must match its tag. Returns kNotFound when
  /// any step fails to resolve.
  Result<std::string> Evaluate(const XmlElement& root) const;

 private:
  std::vector<XmlPathStep> steps_;
};

/// One-shot helper: parse `xml_text` and extract `path` (get_xml_object).
Result<std::string> GetXmlObject(std::string_view xml_text,
                                 const XmlPath& path);

/// Heuristic used by the format-agnostic caching layer: XPaths start with
/// '/', JSONPaths with '$'.
inline bool IsXmlPathText(std::string_view path) {
  return !path.empty() && path[0] == '/';
}

}  // namespace maxson::xml

#endif  // MAXSON_XML_XML_PATH_H_
