#ifndef MAXSON_JSON_JSON_VALUE_H_
#define MAXSON_JSON_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace maxson::json {

/// Runtime type tag of a JsonValue.
enum class JsonType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kArray,
  kObject,
};

const char* JsonTypeName(JsonType type);

/// Owned JSON document tree (DOM). Objects preserve insertion order of keys,
/// matching how parsers and generators emit fields; lookups are linear scans,
/// which is the right trade-off for the small objects typical of log records.
class JsonValue {
 public:
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(JsonType::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = JsonType::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.type_ = JsonType::kInt;
    v.int_ = i;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v;
    v.type_ = JsonType::kDouble;
    v.double_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.type_ = JsonType::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = JsonType::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = JsonType::kObject;
    return v;
  }

  JsonType type() const { return type_; }
  bool is_null() const { return type_ == JsonType::kNull; }
  bool is_bool() const { return type_ == JsonType::kBool; }
  bool is_int() const { return type_ == JsonType::kInt; }
  bool is_double() const { return type_ == JsonType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == JsonType::kString; }
  bool is_array() const { return type_ == JsonType::kArray; }
  bool is_object() const { return type_ == JsonType::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  /// Array accessors; valid only when is_array().
  size_t size() const {
    return is_array() ? elements_.size() : members_.size();
  }
  const JsonValue& At(size_t i) const { return elements_[i]; }
  void Append(JsonValue v) { elements_.push_back(std::move(v)); }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Object accessors; valid only when is_object().
  const std::vector<Member>& members() const { return members_; }
  /// Returns nullptr when `key` is absent (or this is not an object).
  const JsonValue* Find(std::string_view key) const;
  /// Inserts or overwrites a member.
  void Set(std::string key, JsonValue v);

  /// Structural equality (ints and doubles compare as distinct types).
  bool operator==(const JsonValue& other) const;

 private:
  JsonType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<Member> members_;
};

}  // namespace maxson::json

#endif  // MAXSON_JSON_JSON_VALUE_H_
