#ifndef MAXSON_JSON_JSON_WRITER_H_
#define MAXSON_JSON_JSON_WRITER_H_

#include <string>
#include <string_view>

#include "json/json_value.h"

namespace maxson::json {

/// Serializes a JsonValue to compact JSON text (no insignificant whitespace).
std::string WriteJson(const JsonValue& value);

/// Appends the JSON-escaped form of `s` (including surrounding quotes) to
/// `*out`. Exposed for the raw-generation paths in workload/data_generator.
void AppendEscapedString(std::string_view s, std::string* out);

/// Shortest decimal string that parses back to exactly `d` ("16.307", not
/// "16.306999999999999"). Both get_json_object backends render doubles
/// through this so their outputs are textually identical.
std::string ShortestDoubleString(double d);

}  // namespace maxson::json

#endif  // MAXSON_JSON_JSON_WRITER_H_
