#include "json/raw_filter.h"

#include <cctype>

#include "common/logging.h"
#include "simd/kernels.h"

namespace maxson::json {

RawFilter::RawFilter(std::string needle) : needle_(std::move(needle)) {
  MAXSON_CHECK(!needle_.empty());
}

bool RawFilter::MightMatch(std::string_view record) const {
  return simd::FindSubstring(record.data(), record.size(), needle_.data(),
                             needle_.size()) != simd::kNpos;
}

bool IsRawFilterableLiteral(std::string_view literal) {
  if (literal.size() < 3) return false;  // too unselective to pay off
  for (char c : literal) {
    const unsigned char u = static_cast<unsigned char>(c);
    const bool safe = std::isalnum(u) || c == '_' || c == '-' || c == '.' ||
                      c == ' ' || c == ':' || c == '/';
    if (!safe) return false;
  }
  return true;
}

}  // namespace maxson::json
