#include "json/raw_filter.h"

#include <cctype>

#include "common/logging.h"

namespace maxson::json {

RawFilter::RawFilter(std::string needle) : needle_(std::move(needle)) {
  MAXSON_CHECK(!needle_.empty());
  const size_t m = needle_.size();
  for (size_t i = 0; i < 256; ++i) shift_[i] = m;
  for (size_t i = 0; i + 1 < m; ++i) {
    shift_[static_cast<unsigned char>(needle_[i])] = m - 1 - i;
  }
}

bool RawFilter::MightMatch(std::string_view record) const {
  const size_t m = needle_.size();
  const size_t n = record.size();
  if (m > n) return false;
  size_t pos = 0;
  while (pos + m <= n) {
    size_t i = m;
    while (i > 0 && record[pos + i - 1] == needle_[i - 1]) --i;
    if (i == 0) return true;
    pos += shift_[static_cast<unsigned char>(record[pos + m - 1])];
  }
  return false;
}

bool IsRawFilterableLiteral(std::string_view literal) {
  if (literal.size() < 3) return false;  // too unselective to pay off
  for (char c : literal) {
    const unsigned char u = static_cast<unsigned char>(c);
    const bool safe = std::isalnum(u) || c == '_' || c == '-' || c == '.' ||
                      c == ' ' || c == ':' || c == '/';
    if (!safe) return false;
  }
  return true;
}

}  // namespace maxson::json
