#ifndef MAXSON_JSON_ONDEMAND_PARSER_H_
#define MAXSON_JSON_ONDEMAND_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/json_path.h"
#include "json/ondemand_tape.h"

namespace maxson::json {

/// Forward-only, lazily-materializing JSON parser in the spirit of
/// On-Demand (Keiser & Lemire): one SIMD classification pass
/// (simd::ClassifyJsonFull) builds a per-record tape of structural
/// positions, and JSONPaths are resolved by cursoring through the tape —
/// sibling subtrees the query never asked for are skipped via the tape's
/// open/close match links without token-parsing their bytes.
///
/// Contract vs the DOM baseline (json::GetJsonObject):
///   - Identical rendering: requested values are materialized by running
///     the DOM parser on exactly the extracted span and rendering with
///     RenderGetJsonObjectResult, so successful extractions are
///     byte-identical to the DOM path by construction. Duplicate keys
///     resolve to the last occurrence, matching JsonValue::Set overwrite.
///   - Typed errors: structural malformation visible in the index
///     (unterminated strings, unbalanced containers, nesting past the DOM
///     depth cap, trailing garbage) and malformed requested values return
///     ParseError; missing paths return the same NotFound the DOM path
///     produces. The engine falls back to the DOM parser per record on any
///     error, so query results never depend on this tier.
///   - Documented divergence: token-level garbage confined to a subtree
///     the query skips is not detected (the bytes are never touched) —
///     the one case where on-demand succeeds and DOM errors.
class OndemandParser {
 public:
  OndemandParser() = default;

  /// Resolves `path` within `json`, rendered get_json_object-style.
  /// Records with a non-container root (scalar documents) are delegated to
  /// the DOM evaluator — there is nothing to skip.
  Result<std::string> Extract(std::string_view json, const JsonPath& path);

  /// Resolves every path in `paths` over one shared tape (one
  /// classification pass per record, however many columns a scan derives
  /// from it). Appends one Result per path to `*out` in order. Returns
  /// non-OK only for record-level failures (structural malformation), in
  /// which case `*out` is untouched and the caller should fall back to the
  /// DOM parser for the whole record.
  Status ExtractAll(std::string_view json, const std::vector<JsonPath>& paths,
                    std::vector<Result<std::string>>* out);

  /// Telemetry across all Extract/ExtractAll calls: records that got a
  /// tape, and bytes the cursor skipped past without token-parsing
  /// (record size minus materialized value spans and compared keys).
  uint64_t records_indexed() const { return records_indexed_; }
  uint64_t skipped_bytes() const { return skipped_bytes_; }

  /// Adds another parser's telemetry to this one; same merge discipline as
  /// MisonParser::AbsorbTelemetry (one parser per worker, folded in order).
  void AbsorbTelemetry(const OndemandParser& other) {
    records_indexed_ += other.records_indexed_;
    skipped_bytes_ += other.skipped_bytes_;
  }

 private:
  ondemand_internal::StructuralTape tape_;
  uint64_t records_indexed_ = 0;
  uint64_t skipped_bytes_ = 0;
};

}  // namespace maxson::json

#endif  // MAXSON_JSON_ONDEMAND_PARSER_H_
