#ifndef MAXSON_JSON_MISON_PARSER_H_
#define MAXSON_JSON_MISON_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "json/json_path.h"

namespace maxson::json {

/// Word-parallel structural index over one JSON record, after Mison
/// (Li et al., VLDB 2017).
///
/// Construction builds, with 64-bit bitwise operations (the scalar analogue
/// of Mison's SIMD phase):
///   1. backslash / quote bitmaps with escaped-quote removal,
///   2. the string mask via prefix-XOR over quote bits,
///   3. colon / brace bitmaps masked to structural (non-string) positions,
///   4. per-colon nesting levels from a single ordered walk of the braces.
///
/// Queries then locate a field's value without deserializing the record:
/// given an object span and level, the colons inside it are candidates; the
/// key preceding each candidate colon is compared against the queried field.
class StructuralIndex {
 public:
  /// Builds the index. `text` must outlive the index.
  explicit StructuralIndex(std::string_view text);

  std::string_view text() const { return text_; }

  /// Position of every structural colon, ascending, with its nesting level
  /// (level 1 = colon of a top-level object member).
  struct Colon {
    uint32_t pos;
    uint32_t level;
  };
  const std::vector<Colon>& colons() const { return colons_; }

  /// Finds the colon of member `field` directly inside the object spanning
  /// [span_begin, span_end) at nesting level `level`. `speculative_ordinal`,
  /// when >= 0, is tried first (pattern memoization); on key mismatch the
  /// query falls back to a full scan. Returns the colon index into colons(),
  /// or -1 when absent. `*used_speculation` reports whether the fast path
  /// hit (used by benchmarks to count speculation success).
  int64_t FindField(size_t span_begin, size_t span_end, uint32_t level,
                    std::string_view field, int64_t speculative_ordinal,
                    bool* used_speculation) const;

  /// Key text (unescaped content between quotes) preceding colon `ci`.
  std::string_view KeyBefore(size_t ci) const;

  /// Raw text span of the value following colon `ci`, trimmed of whitespace:
  /// from after the colon to the enclosing comma/brace at the same level.
  std::string_view RawValueAfter(size_t ci) const;

  /// True when the record contains structural errors (unbalanced braces or
  /// an unterminated string); queries on a malformed index return -1.
  bool malformed() const { return malformed_; }

 private:
  std::string_view text_;
  std::vector<Colon> colons_;
  bool malformed_ = false;
};

/// Projection-only JSON parser in the spirit of Mison/Pikkr: extracts the
/// values of requested JSONPaths from the raw byte stream via a structural
/// index, with speculative field-position memoization across records.
///
/// When the dataset's JSON pattern is stable the speculation hits and
/// extraction touches only the queried fields; when the schema varies the
/// speculation misses force full scans, which is the degradation the paper
/// observes for Mison on schema-variable data (Fig. 15 discussion).
class MisonParser {
 public:
  MisonParser() = default;

  /// Returns the raw value text (still JSON-encoded) of `path` within
  /// `json`, or kNotFound when the path does not resolve. Array subscripts
  /// are resolved by streaming over the raw array span.
  Result<std::string> ExtractRaw(std::string_view json, const JsonPath& path);

  /// Like ExtractRaw but renders in get_json_object style (strings
  /// unquoted, scalars as text).
  Result<std::string> Extract(std::string_view json, const JsonPath& path);

  /// Speculation telemetry across all Extract calls.
  uint64_t speculation_hits() const { return speculation_hits_; }
  uint64_t speculation_misses() const { return speculation_misses_; }
  uint64_t records_indexed() const { return records_indexed_; }

  /// Adds another parser's telemetry to this one. The engine extracts with
  /// a private parser per row chunk (speculation state is mutable and must
  /// not be shared across workers) and folds their counters back into its
  /// long-lived parser after each query.
  void AbsorbTelemetry(const MisonParser& other) {
    speculation_hits_ += other.speculation_hits_;
    speculation_misses_ += other.speculation_misses_;
    records_indexed_ += other.records_indexed_;
  }

 private:
  struct SpeculationKey {
    uint32_t level;
    std::string field;
    bool operator==(const SpeculationKey& o) const {
      return level == o.level && field == o.field;
    }
  };
  struct SpeculationKeyHash {
    size_t operator()(const SpeculationKey& k) const {
      return std::hash<std::string>()(k.field) * 1315423911u ^ k.level;
    }
  };

  // Memoized ordinal (index among the colons of the enclosing span/level)
  // where each field was last found.
  std::unordered_map<SpeculationKey, int64_t, SpeculationKeyHash> pattern_;
  uint64_t speculation_hits_ = 0;
  uint64_t speculation_misses_ = 0;
  uint64_t records_indexed_ = 0;
};

/// Renders a raw JSON value span in get_json_object style: quoted strings
/// are unescaped, scalars/objects/arrays returned as their raw text.
Result<std::string> RenderRawJsonScalar(std::string_view raw);

}  // namespace maxson::json

#endif  // MAXSON_JSON_MISON_PARSER_H_
