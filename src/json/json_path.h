#ifndef MAXSON_JSON_JSON_PATH_H_
#define MAXSON_JSON_JSON_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/json_value.h"

namespace maxson::json {

/// One step of a JSONPath: either a field name ("$.turnover" -> field
/// "turnover") or an array index ("$.items[3]" -> index 3).
struct JsonPathStep {
  enum class Kind { kField, kIndex };
  Kind kind = Kind::kField;
  std::string field;
  int64_t index = 0;

  bool operator==(const JsonPathStep& other) const {
    return kind == other.kind && field == other.field && index == other.index;
  }
};

/// A parsed JSONPath such as `$.sale_logs.items[0].name`.
///
/// The supported grammar matches what `get_json_object` accepts in the paper's
/// workload: `$` root, `.field` steps (also `['field']` bracket form), and
/// non-negative `[N]` array subscripts. Wildcards/filters are out of scope —
/// the Alibaba workload drives scalar extraction only.
class JsonPath {
 public:
  JsonPath() = default;
  explicit JsonPath(std::vector<JsonPathStep> steps)
      : steps_(std::move(steps)) {}

  /// Parses textual form. Returns ParseError on malformed input.
  static Result<JsonPath> Parse(std::string_view text);

  const std::vector<JsonPathStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Canonical textual form ("$.a.b[2]").
  std::string ToString() const;

  /// Evaluates against a parsed DOM. Returns nullptr when the path does not
  /// resolve (missing field, index out of range, or type mismatch).
  const JsonValue* Evaluate(const JsonValue& root) const;

  bool operator==(const JsonPath& other) const {
    return steps_ == other.steps_;
  }

 private:
  std::vector<JsonPathStep> steps_;
};

/// Evaluates `path` against raw JSON text using full DOM parsing and returns
/// the result rendered the way Hive/Spark's get_json_object renders it:
/// scalars unquoted, objects/arrays re-serialized, missing -> std::nullopt
/// encoded as an error status with code kNotFound.
Result<std::string> GetJsonObject(std::string_view json_text,
                                  const JsonPath& path);

/// Renders an already-evaluated DOM node in get_json_object style.
std::string RenderGetJsonObjectResult(const JsonValue& value);

}  // namespace maxson::json

#endif  // MAXSON_JSON_JSON_PATH_H_
