#include "json/mison_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "json/dom_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"
#include "simd/kernels.h"

namespace maxson::json {

namespace {

constexpr size_t kWordBits = simd::kWordBits;

}  // namespace

StructuralIndex::StructuralIndex(std::string_view text) : text_(text) {
  const size_t n = text.size();
  const size_t words = simd::BitmapWords(n);
  if (words == 0) {
    malformed_ = true;
    return;
  }

  // Phase 1 (dispatched kernel): bitmaps of quotes, backslashes, and the
  // merged ':' '{' '}' structural candidates — Mison's SIMD comparison
  // phase. Escaped quotes (preceded by an odd backslash run) are content,
  // not structure, so they are cleared with the word-parallel odd-run
  // detector before the string mask is built.
  std::vector<uint64_t> quote(words, 0);
  std::vector<uint64_t> backslash(words, 0);
  std::vector<uint64_t> structural(words, 0);
  simd::ClassifyJson(text.data(), n, quote.data(), backslash.data(),
                     structural.data());
  {
    uint64_t escape_carry = 0;
    for (size_t w = 0; w < words; ++w) {
      quote[w] &= ~simd::EscapedPositions(backslash[w], &escape_carry);
    }
  }

  // Phase 2 (word-parallel): string mask via prefix XOR over quote bits.
  // Bit i of `in_string` is 1 iff byte i lies inside a string literal
  // (opening quote inside, closing quote outside — sufficient because
  // structural characters are never quotes).
  std::vector<uint64_t> in_string(words, 0);
  {
    uint64_t parity = 0;  // parity of quotes seen so far
    for (size_t w = 0; w < words; ++w) {
      in_string[w] = simd::StringMaskWord(quote[w], &parity);
    }
    if (parity != 0) {
      malformed_ = true;  // unterminated string literal
      return;
    }
  }

  // Phase 3: walk only the structural bits outside strings (count-trailing-
  // zeros iteration), assigning a nesting level to every colon. Brackets do
  // not affect object member levels; array elements are handled by raw span
  // streaming at extraction time.
  uint32_t level = 0;
  colons_.reserve(16);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = structural[w] & ~in_string[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t i = w * kWordBits + static_cast<size_t>(bit);
      switch (text[i]) {
        case '{':
          ++level;
          break;
        case '}':
          if (level == 0) {
            malformed_ = true;
            return;
          }
          --level;
          break;
        default:  // ':'
          colons_.push_back(Colon{static_cast<uint32_t>(i), level});
      }
    }
  }
  if (level != 0) malformed_ = true;
}

std::string_view StructuralIndex::KeyBefore(size_t ci) const {
  const size_t colon_pos = colons_[ci].pos;
  // Scan back over whitespace to the closing quote of the key, then to its
  // opening quote (skipping escaped quotes).
  size_t p = colon_pos;
  while (p > 0 && std::isspace(static_cast<unsigned char>(text_[p - 1]))) --p;
  if (p == 0 || text_[p - 1] != '"') return {};
  const size_t key_end = p - 1;
  size_t q = key_end;
  while (q > 0) {
    --q;
    if (text_[q] == '"') {
      // Count preceding backslashes to detect an escaped quote.
      size_t backslashes = 0;
      size_t b = q;
      while (b > 0 && text_[b - 1] == '\\') {
        ++backslashes;
        --b;
      }
      if (backslashes % 2 == 0) {
        return text_.substr(q + 1, key_end - q - 1);
      }
    }
  }
  return {};
}

std::string_view StructuralIndex::RawValueAfter(size_t ci) const {
  const uint32_t level = colons_[ci].level;
  size_t begin = colons_[ci].pos + 1;
  while (begin < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[begin]))) {
    ++begin;
  }
  // The value ends at the next comma at the same level or the brace closing
  // the enclosing object, whichever comes first; track strings and nesting.
  size_t end = begin;
  uint32_t depth = 0;  // relative {}/[] depth inside the value
  bool in_str = false;
  while (end < text_.size()) {
    const char c = text_[end];
    if (in_str) {
      if (c == '\\') {
        end += 2;
        continue;
      }
      if (c == '"') in_str = false;
      ++end;
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) break;  // closing brace of the enclosing container
      --depth;
    } else if (c == ',' && depth == 0) {
      break;
    }
    ++end;
  }
  // Trim trailing whitespace.
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text_[end - 1]))) {
    --end;
  }
  (void)level;
  return text_.substr(begin, end - begin);
}

int64_t StructuralIndex::FindField(size_t span_begin, size_t span_end,
                                   uint32_t level, std::string_view field,
                                   int64_t speculative_ordinal,
                                   bool* used_speculation) const {
  if (used_speculation != nullptr) *used_speculation = false;
  if (malformed_) return -1;
  // Candidate colons: those inside the span at the requested level. Colons
  // are sorted by position, so locate the range with binary search.
  auto lo = std::lower_bound(
      colons_.begin(), colons_.end(), span_begin,
      [](const Colon& c, size_t pos) { return c.pos < pos; });
  auto hi = std::lower_bound(
      colons_.begin(), colons_.end(), span_end,
      [](const Colon& c, size_t pos) { return c.pos < pos; });

  // Speculative probe: ordinal among same-level colons in the span.
  if (speculative_ordinal >= 0) {
    int64_t ordinal = 0;
    for (auto it = lo; it != hi; ++it) {
      if (it->level != level) continue;
      if (ordinal == speculative_ordinal) {
        const size_t ci = static_cast<size_t>(it - colons_.begin());
        if (KeyBefore(ci) == field) {
          if (used_speculation != nullptr) *used_speculation = true;
          return static_cast<int64_t>(ci);
        }
        break;  // speculation failed; fall back to the scan
      }
      ++ordinal;
    }
  }

  for (auto it = lo; it != hi; ++it) {
    if (it->level != level) continue;
    const size_t ci = static_cast<size_t>(it - colons_.begin());
    if (KeyBefore(ci) == field) return static_cast<int64_t>(ci);
  }
  return -1;
}

namespace {

/// Returns the ordinal of colon index `ci` among same-level colons within
/// [span_begin, span_end).
int64_t OrdinalOf(const StructuralIndex& index, size_t ci, size_t span_begin,
                  size_t span_end) {
  const auto& colons = index.colons();
  const uint32_t level = colons[ci].level;
  int64_t ordinal = 0;
  for (size_t i = 0; i < colons.size(); ++i) {
    if (colons[i].pos < span_begin || colons[i].pos >= span_end) continue;
    if (colons[i].level != level) continue;
    if (i == ci) return ordinal;
    ++ordinal;
  }
  return -1;
}

/// Streams over a raw JSON array span and returns the raw text of element
/// `want` (0-based), or empty when out of range.
std::string_view ArrayElementRaw(std::string_view raw, int64_t want) {
  if (raw.empty() || raw.front() != '[') return {};
  size_t p = 1;
  int64_t idx = 0;
  while (p < raw.size()) {
    while (p < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[p]))) {
      ++p;
    }
    if (p >= raw.size() || raw[p] == ']') return {};
    const size_t elem_begin = p;
    uint32_t depth = 0;
    bool in_str = false;
    while (p < raw.size()) {
      const char c = raw[p];
      if (in_str) {
        if (c == '\\') {
          p += 2;
          continue;
        }
        if (c == '"') in_str = false;
        ++p;
        continue;
      }
      if (c == '"') {
        in_str = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++p;
    }
    size_t elem_end = p;
    while (elem_end > elem_begin &&
           std::isspace(static_cast<unsigned char>(raw[elem_end - 1]))) {
      --elem_end;
    }
    if (idx == want) return raw.substr(elem_begin, elem_end - elem_begin);
    ++idx;
    if (p < raw.size() && raw[p] == ',') ++p;
    if (p < raw.size() && raw[p] == ']') return {};
  }
  return {};
}

}  // namespace

Result<std::string> MisonParser::ExtractRaw(std::string_view json,
                                            const JsonPath& path) {
  StructuralIndex index(json);
  ++records_indexed_;
  if (index.malformed()) {
    return Status::ParseError("malformed JSON record");
  }

  // Walk the path. `span` is the raw text of the current container relative
  // to the original record; `span_offset` its offset within `json` so that
  // colon positions remain comparable.
  std::string_view span = json;
  size_t span_offset = 0;
  uint32_t level = 1;  // members of the top-level object are at level 1

  for (size_t si = 0; si < path.steps().size(); ++si) {
    const JsonPathStep& step = path.steps()[si];
    if (step.kind == JsonPathStep::Kind::kField) {
      SpeculationKey key{level, step.field};
      int64_t speculative = -1;
      if (auto it = pattern_.find(key); it != pattern_.end()) {
        speculative = it->second;
      }
      bool used_speculation = false;
      const int64_t ci = index.FindField(span_offset, span_offset + span.size(),
                                         level, step.field, speculative,
                                         &used_speculation);
      if (used_speculation) {
        ++speculation_hits_;
      } else if (speculative >= 0) {
        ++speculation_misses_;
      }
      if (ci < 0) {
        return Status::NotFound("field '" + step.field + "' not present");
      }
      pattern_[key] = OrdinalOf(index, static_cast<size_t>(ci), span_offset,
                                span_offset + span.size());
      std::string_view raw = index.RawValueAfter(static_cast<size_t>(ci));
      span_offset = static_cast<size_t>(raw.data() - json.data());
      span = raw;
      if (!raw.empty() && raw.front() == '{') ++level;
    } else {
      std::string_view elem = ArrayElementRaw(span, step.index);
      if (elem.empty()) {
        return Status::NotFound("array index out of range in " +
                                path.ToString());
      }
      span_offset = static_cast<size_t>(elem.data() - json.data());
      span = elem;
      if (!elem.empty() && elem.front() == '{') ++level;
      // Note: element levels stay consistent because the structural index
      // counts only brace nesting, which we mirrored above.
    }
  }
  return std::string(span);
}

Result<std::string> RenderRawJsonScalar(std::string_view raw) {
  if (raw.empty()) return Status::NotFound("empty raw value");
  if (raw.front() == '"') {
    // Unescape through the DOM string parser for correctness.
    MAXSON_ASSIGN_OR_RETURN(JsonValue v, ParseJson(raw));
    return v.string_value();
  }
  // Non-integral numbers are canonicalized so both get_json_object backends
  // render the same text ("38.06" whether the raw was "38.060" or not).
  const bool looks_numeric =
      raw.front() == '-' || (raw.front() >= '0' && raw.front() <= '9');
  if (looks_numeric &&
      raw.find_first_of(".eE") != std::string_view::npos) {
    const std::string token(raw);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == token.c_str() + token.size()) {
      return json::ShortestDoubleString(d);
    }
  }
  return std::string(raw);
}

Result<std::string> MisonParser::Extract(std::string_view json,
                                         const JsonPath& path) {
  MAXSON_ASSIGN_OR_RETURN(std::string raw, ExtractRaw(json, path));
  return RenderRawJsonScalar(raw);
}

}  // namespace maxson::json
