#ifndef MAXSON_JSON_DOM_PARSER_H_
#define MAXSON_JSON_DOM_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "json/json_value.h"

namespace maxson::json {

/// Full-deserialization recursive-descent JSON parser.
///
/// This is the repository's stand-in for Jackson, the default JSON parser in
/// SparkSQL: it materializes the complete DOM for every record, which is what
/// makes parsing dominate query time in the paper's Fig. 3 baseline.
///
/// Accepts standard JSON: objects, arrays, strings with escapes (including
/// \uXXXX with surrogate pairs encoded to UTF-8), integers, doubles,
/// true/false/null. Rejects trailing garbage.
Result<JsonValue> ParseJson(std::string_view text);

/// Parser statistics counter shared by all parsers, used by the engine's
/// metrics plumbing to attribute time to the "Parse" phase.
struct ParseStats {
  uint64_t records_parsed = 0;
  uint64_t bytes_parsed = 0;

  void Add(const ParseStats& other) {
    records_parsed += other.records_parsed;
    bytes_parsed += other.bytes_parsed;
  }
};

}  // namespace maxson::json

#endif  // MAXSON_JSON_DOM_PARSER_H_
