#include "json/dom_parser.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "simd/kernels.h"

namespace maxson::json {

namespace {

/// Single-pass cursor over the input text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    MAXSON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    pos_ = simd::SkipWhitespace(text_.data(), text_.size(), pos_);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MAXSON_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(std::string_view literal, JsonValue value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return value;
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // consume '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      MAXSON_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':'");
      ++pos_;
      SkipWhitespace();
      MAXSON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return obj;
      }
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // consume '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWhitespace();
      MAXSON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return arr;
      }
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (true) {
      // Bulk-copy the run of plain bytes up to the next quote or backslash.
      const size_t next =
          simd::FindStringSpecial(text_.data(), text_.size(), pos_);
      out.append(text_.data() + pos_, next - pos_);
      pos_ = next;
      if (AtEnd()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      // c == '\\': decode the escape.
      if (AtEnd()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          MAXSON_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            MAXSON_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) return Error("invalid surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    bool any_digit = false;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      ++pos_;
      any_digit = true;
    }
    if (!any_digit) return Error("invalid number");
    bool is_double = false;
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos_;
      bool frac_digit = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
        frac_digit = true;
      }
      if (!frac_digit) return Error("invalid fraction");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      bool exp_digit = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
        exp_digit = true;
      }
      if (!exp_digit) return Error("invalid exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::Int(v);
      }
      // Fall through: out-of-range integer becomes a double.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return JsonValue::Double(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace maxson::json
