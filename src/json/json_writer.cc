#include "json/json_writer.h"

#include <cmath>
#include <cstdio>

namespace maxson::json {

namespace {

void WriteValue(const JsonValue& v, std::string* out);

void AppendDouble(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null like most permissive serializers.
    out->append("null");
    return;
  }
  out->append(ShortestDoubleString(d));
}

void WriteValue(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonType::kNull:
      out->append("null");
      break;
    case JsonType::kBool:
      out->append(v.bool_value() ? "true" : "false");
      break;
    case JsonType::kInt: {
      char buf[24];
      int n = std::snprintf(buf, sizeof(buf), "%lld",
                            static_cast<long long>(v.int_value()));
      out->append(buf, static_cast<size_t>(n));
      break;
    }
    case JsonType::kDouble:
      AppendDouble(v.double_value(), out);
      break;
    case JsonType::kString:
      AppendEscapedString(v.string_value(), out);
      break;
    case JsonType::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < v.elements().size(); ++i) {
        if (i > 0) out->push_back(',');
        WriteValue(v.elements()[i], out);
      }
      out->push_back(']');
      break;
    }
    case JsonType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscapedString(key, out);
        out->push_back(':');
        WriteValue(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string ShortestDoubleString(double d) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    const int n = std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    char* end = nullptr;
    if (std::strtod(buf, &end) == d && end == buf + n) {
      return std::string(buf, static_cast<size_t>(n));
    }
  }
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
  return std::string(buf, static_cast<size_t>(n));
}

void AppendEscapedString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace maxson::json
