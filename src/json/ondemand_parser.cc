#include "json/ondemand_parser.h"

#include <algorithm>

#include "json/dom_parser.h"
#include "simd/kernels.h"

namespace maxson::json {

namespace ondemand_internal {

Status StructuralTape::Build(std::string_view record) {
  text = record;
  entries.clear();
  strings.clear();
  stack.clear();
  root_is_container = false;
  root_entry = 0;

  const size_t n = record.size();
  const size_t first = simd::SkipWhitespace(record.data(), n, 0);
  if (first >= n) return Status::ParseError("unexpected end of input");
  const char root = record[first];
  if (root != '{' && root != '[') return Status::Ok();  // scalar root
  root_is_container = true;

  const size_t words = simd::BitmapWords(n);
  quotes.resize(words);
  backslashes.resize(words);
  structurals.resize(words);
  string_mask.resize(words);
  simd::ClassifyJsonFull(record.data(), n, quotes.data(), backslashes.data(),
                         structurals.data());

  // Phase 2: drop escaped quotes, derive the string mask, and collect the
  // string spans (ascending by construction — quote pairs alternate
  // open/close left to right, threading across bitmap words).
  uint64_t carry = 0;
  uint64_t parity = 0;
  bool in_string = false;
  uint32_t open_quote = 0;
  for (size_t w = 0; w < words; ++w) {
    const uint64_t escaped = simd::EscapedPositions(backslashes[w], &carry);
    uint64_t q = quotes[w] & ~escaped;
    string_mask[w] = simd::StringMaskWord(q, &parity);
    while (q != 0) {
      const uint32_t pos = static_cast<uint32_t>(
          w * simd::kWordBits + static_cast<size_t>(__builtin_ctzll(q)));
      q &= q - 1;
      if (!in_string) {
        open_quote = pos;
        in_string = true;
      } else {
        strings.push_back({open_quote, pos});
        in_string = false;
      }
    }
  }
  if (in_string) return Status::ParseError("unterminated string literal");

  // Phase 3: walk the structural positions outside strings in order,
  // linking every container open to its close. The link is what lets the
  // cursor hop over an entire sibling subtree in one step.
  bool root_closed = false;
  uint32_t root_close_pos = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t s = structurals[w] & ~string_mask[w];
    while (s != 0) {
      const size_t pos =
          w * simd::kWordBits + static_cast<size_t>(__builtin_ctzll(s));
      s &= s - 1;
      if (root_closed) {
        return Status::ParseError("trailing characters after JSON value");
      }
      const char c = record[pos];
      TapeEntry e{static_cast<uint32_t>(pos), 0, c};
      switch (c) {
        case '{':
        case '[':
          // A container's depth is the open-stack size when it begins;
          // the cap matches dom_parser.cc so both reject the same docs.
          if (stack.size() > static_cast<size_t>(kMaxDepth)) {
            return Status::ParseError("nesting too deep");
          }
          stack.push_back(static_cast<uint32_t>(entries.size()));
          break;
        case '}':
        case ']': {
          if (stack.empty()) {
            return Status::ParseError("unbalanced container close");
          }
          const uint32_t oi = stack.back();
          stack.pop_back();
          if ((c == '}') != (entries[oi].kind == '{')) {
            return Status::ParseError("mismatched container close");
          }
          entries[oi].match = static_cast<uint32_t>(entries.size());
          e.match = oi;
          if (stack.empty()) {
            root_closed = true;
            root_close_pos = static_cast<uint32_t>(pos);
          }
          break;
        }
        default:
          break;  // ':' and ',' are plain tape entries
      }
      entries.push_back(e);
    }
  }
  if (!root_closed) return Status::ParseError("unexpected end of input");
  const size_t after =
      simd::SkipWhitespace(record.data(), n, root_close_pos + 1);
  if (after != n) {
    return Status::ParseError("trailing characters after JSON value");
  }
  // Whitespace is the only thing before the root character, so the root
  // open is always the first tape entry.
  root_entry = 0;
  return Status::Ok();
}

}  // namespace ondemand_internal

namespace {

using ondemand_internal::StringSpan;
using ondemand_internal::StructuralTape;
using ondemand_internal::TapeEntry;

constexpr size_t kNone = ~size_t{0};

/// Cursor node: a container (tape index of its open entry) or a terminal
/// span; `begin`/`end` always bound the node's raw bytes.
struct Node {
  size_t open = kNone;
  size_t begin = 0;
  size_t end = 0;
};

/// Compares the string literal `key` (offsets of its quotes) against the
/// queried field. Unescaped keys compare raw; escaped keys decode through
/// the DOM string parser so escape semantics (including \uXXXX) match the
/// baseline exactly.
Result<bool> KeyEquals(const StructuralTape& t, const StringSpan& key,
                       std::string_view field, uint64_t* touched) {
  const std::string_view raw =
      t.text.substr(key.begin + 1, key.end - key.begin - 1);
  *touched += raw.size();
  if (raw.find('\\') == std::string_view::npos) {
    return raw == field;
  }
  MAXSON_ASSIGN_OR_RETURN(
      const JsonValue decoded,
      ParseJson(t.text.substr(key.begin, key.end - key.begin + 1)));
  return decoded.is_string() && decoded.string_value() == field;
}

/// The value node of member `field` directly inside the object whose open
/// entry is `open`. Every member is scanned and the LAST key match wins,
/// replicating the DOM's duplicate-key overwrite (JsonValue::Set).
/// NotFound (empty message — the caller owns the path text) when absent.
Result<Node> FindMember(const StructuralTape& t, size_t open,
                        std::string_view field, uint64_t* touched) {
  const std::vector<TapeEntry>& es = t.entries;
  const size_t close = es[open].match;
  size_t i = open + 1;
  size_t segment_start = es[open].pos + 1;
  Node found;
  bool have = false;
  while (i < close) {
    if (es[i].kind != ':') {
      return Status::ParseError("expected ':' in object");
    }
    const uint32_t colon_pos = es[i].pos;
    // The member's key is the last string span before its colon. A string
    // overlapping the colon is impossible — the colon would be masked —
    // so only the segment-start bound needs checking.
    auto it = std::lower_bound(
        t.strings.begin(), t.strings.end(), colon_pos,
        [](const StringSpan& s, uint32_t p) { return s.begin < p; });
    if (it == t.strings.begin()) {
      return Status::ParseError("expected object key");
    }
    --it;
    if (it->begin < segment_start) {
      return Status::ParseError("expected object key");
    }
    // Value: a container hops to its close link; an atom/string runs to
    // the next structural entry, which is this level's ',' or close.
    Node val;
    size_t next_i;
    if (es[i + 1].kind == '{' || es[i + 1].kind == '[') {
      val.open = i + 1;
      val.begin = es[i + 1].pos;
      val.end = es[es[i + 1].match].pos + 1;
      next_i = es[i + 1].match + 1;
    } else {
      val.begin = colon_pos + 1;
      val.end = es[i + 1].pos;
      next_i = i + 1;
    }
    MAXSON_ASSIGN_OR_RETURN(const bool eq, KeyEquals(t, *it, field, touched));
    if (eq) {
      found = val;
      have = true;
    }
    if (next_i == close) break;
    if (es[next_i].kind != ',') {
      return Status::ParseError("expected ',' in object");
    }
    segment_start = es[next_i].pos + 1;
    i = next_i + 1;
  }
  if (!have) return Status::NotFound("");
  return found;
}

/// The value node of element `index` inside the array whose open entry is
/// `open`. NotFound (empty message) when the index is out of range.
Result<Node> FindElement(const StructuralTape& t, size_t open, int64_t index) {
  const std::vector<TapeEntry>& es = t.entries;
  const size_t close = es[open].match;
  size_t i = open + 1;
  size_t elem_begin = es[open].pos + 1;
  int64_t idx = 0;
  while (true) {
    Node val;
    size_t sep_i;
    if (i < close && (es[i].kind == '{' || es[i].kind == '[')) {
      val.open = i;
      val.begin = es[i].pos;
      val.end = es[es[i].match].pos + 1;
      sep_i = es[i].match + 1;
    } else {
      val.begin = elem_begin;
      sep_i = i;
      val.end = es[sep_i].pos;
    }
    if (sep_i != close && es[sep_i].kind != ',') {
      return Status::ParseError("expected ',' in array");
    }
    if (idx == 0 && sep_i == close && val.open == kNone) {
      // Sole "element" running straight to the close: an empty array when
      // it is all whitespace.
      const size_t nonws =
          simd::SkipWhitespace(t.text.data(), val.end, val.begin);
      if (nonws >= val.end) return Status::NotFound("");
    }
    if (idx == index) return val;
    if (sep_i == close) return Status::NotFound("");
    elem_begin = es[sep_i].pos + 1;
    i = sep_i + 1;
    ++idx;
  }
}

/// Cursors `path` through the tape and materializes the requested value:
/// the DOM parser runs on exactly the extracted span, so rendering (and
/// validation of the requested subtree) is byte-identical to the baseline.
Result<std::string> ResolveOnTape(const StructuralTape& t,
                                  const JsonPath& path, uint64_t* touched) {
  const std::vector<TapeEntry>& es = t.entries;
  Node node;
  node.open = t.root_entry;
  node.begin = es[t.root_entry].pos;
  node.end = es[es[t.root_entry].match].pos + 1;
  for (const JsonPathStep& step : path.steps()) {
    if (node.open == kNone) return Status::NotFound("");  // scalar mid-path
    const char kind = es[node.open].kind;
    if (step.kind == JsonPathStep::Kind::kField) {
      if (kind != '{') return Status::NotFound("");
      MAXSON_ASSIGN_OR_RETURN(node,
                              FindMember(t, node.open, step.field, touched));
    } else {
      if (kind != '[') return Status::NotFound("");
      MAXSON_ASSIGN_OR_RETURN(node, FindElement(t, node.open, step.index));
    }
  }
  const std::string_view span =
      t.text.substr(node.begin, node.end - node.begin);
  *touched += span.size();
  MAXSON_ASSIGN_OR_RETURN(const JsonValue value, ParseJson(span));
  return RenderGetJsonObjectResult(value);
}

/// Rewrites the internal empty-message NotFound into the exact message the
/// DOM path (GetJsonObject) produces, so both tiers are indistinguishable
/// to callers.
Result<std::string> WithPathMessage(Result<std::string> r,
                                    const JsonPath& path) {
  if (!r.ok() && r.status().code() == StatusCode::kNotFound) {
    return Status::NotFound("JSONPath " + path.ToString() + " not present");
  }
  return r;
}

}  // namespace

Result<std::string> OndemandParser::Extract(std::string_view json,
                                            const JsonPath& path) {
  Status built = tape_.Build(json);
  if (!built.ok()) return built;
  if (!tape_.root_is_container) {
    // Scalar root: nothing to skip — the DOM path is already optimal.
    return GetJsonObject(json, path);
  }
  ++records_indexed_;
  uint64_t touched = 0;
  Result<std::string> r = WithPathMessage(ResolveOnTape(tape_, path, &touched), path);
  if (json.size() > touched) skipped_bytes_ += json.size() - touched;
  return r;
}

Status OndemandParser::ExtractAll(std::string_view json,
                                  const std::vector<JsonPath>& paths,
                                  std::vector<Result<std::string>>* out) {
  Status built = tape_.Build(json);
  if (!built.ok()) return built;
  if (!tape_.root_is_container) {
    // Scalar root: one DOM parse serves every path.
    Result<JsonValue> root = ParseJson(json);
    if (!root.ok()) return root.status();
    for (const JsonPath& path : paths) {
      const JsonValue* node = path.Evaluate(*root);
      if (node == nullptr) {
        out->push_back(Status::NotFound("JSONPath " + path.ToString() +
                                        " not present"));
      } else {
        out->push_back(RenderGetJsonObjectResult(*node));
      }
    }
    return Status::Ok();
  }
  ++records_indexed_;
  uint64_t touched = 0;
  for (const JsonPath& path : paths) {
    out->push_back(WithPathMessage(ResolveOnTape(tape_, path, &touched), path));
  }
  if (json.size() > touched) skipped_bytes_ += json.size() - touched;
  return Status::Ok();
}

}  // namespace maxson::json
