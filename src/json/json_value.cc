#include "json/json_value.h"

namespace maxson::json {

const char* JsonTypeName(JsonType type) {
  switch (type) {
    case JsonType::kNull:
      return "null";
    case JsonType::kBool:
      return "bool";
    case JsonType::kInt:
      return "int";
    case JsonType::kDouble:
      return "double";
    case JsonType::kString:
      return "string";
    case JsonType::kArray:
      return "array";
    case JsonType::kObject:
      return "object";
  }
  return "?";
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case JsonType::kNull:
      return true;
    case JsonType::kBool:
      return bool_ == other.bool_;
    case JsonType::kInt:
      return int_ == other.int_;
    case JsonType::kDouble:
      return double_ == other.double_;
    case JsonType::kString:
      return string_ == other.string_;
    case JsonType::kArray:
      return elements_ == other.elements_;
    case JsonType::kObject:
      return members_ == other.members_;
  }
  return false;
}

}  // namespace maxson::json
