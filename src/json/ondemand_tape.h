#ifndef MAXSON_JSON_ONDEMAND_TAPE_H_
#define MAXSON_JSON_ONDEMAND_TAPE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"

// Internal tape representation of the on-demand parsing tier. Only
// src/json/ may include this header (tools/lint.py, ondemand-layering
// rule): the tape entry layout is a private contract between the builder
// and the cursor in ondemand_parser.cc, and leaking it would freeze it.
// Everything else goes through json/ondemand_parser.h.

namespace maxson::json::ondemand_internal {

/// Depth cap shared with the DOM parser (dom_parser.cc) so both reject the
/// same documents: a container at nesting depth > kMaxDepth is an error.
inline constexpr int kMaxDepth = 256;

/// One structural position outside any string literal: ':' ',' '{' '}'
/// '[' ']'. Container entries carry the tape index of their partner, which
/// is what makes skipping a sibling subtree O(1).
struct TapeEntry {
  uint32_t pos;    // byte offset in the record
  uint32_t match;  // open<->close partner tape index; unused for ':' ','
  char kind;       // the structural character itself
};

/// A string literal: byte offsets of its opening and closing quotes.
struct StringSpan {
  uint32_t begin;
  uint32_t end;
};

/// Reusable per-record scratch for the on-demand tier: the classification
/// bitmaps, the structural tape, and the string spans (ascending by
/// `begin`; key lookup binary-searches them). One instance per worker —
/// Build clears and refills, so the vectors' capacity amortizes across the
/// records of a scan split.
struct StructuralTape {
  std::string_view text;
  std::vector<uint64_t> quotes;
  std::vector<uint64_t> backslashes;
  std::vector<uint64_t> structurals;
  std::vector<uint64_t> string_mask;
  std::vector<TapeEntry> entries;
  std::vector<StringSpan> strings;
  std::vector<uint32_t> stack;     // open-container work stack for Build
  bool root_is_container = false;  // false: scalar root, tape unused
  uint32_t root_entry = 0;         // tape index of the root '{' or '['

  /// Builds the tape over `text` (which must outlive it). Returns a typed
  /// ParseError for structural malformation visible in the index:
  /// unterminated strings, unbalanced or mismatched containers, nesting
  /// past kMaxDepth, truncation, trailing garbage. Token-level errors
  /// inside atoms are NOT detected here — the cursor validates the atoms
  /// it materializes, and skipped subtrees stay unvalidated by design
  /// (DESIGN.md, "On-demand parsing tier").
  Status Build(std::string_view text);
};

}  // namespace maxson::json::ondemand_internal

#endif  // MAXSON_JSON_ONDEMAND_TAPE_H_
