#ifndef MAXSON_JSON_RAW_FILTER_H_
#define MAXSON_JSON_RAW_FILTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace maxson::json {

/// Sparser-style raw-byte prefilter (Palkar et al., VLDB 2018): before
/// paying to parse a JSON record, reject it when a byte substring that any
/// matching record must contain is absent. Absence of the needle proves
/// the predicate false for standard-encoded JSON; presence means "maybe",
/// and the real predicate still runs after parsing, so false positives
/// only cost time.
///
/// Caveat (shared with Sparser): JSON may legally encode any character as
/// a \uXXXX escape, in which case the needle would not appear literally.
/// Callers therefore only build filters for literals the engine's own
/// writers never escape (plain ASCII alphanumerics and safe punctuation),
/// and the feature is opt-in (EngineConfig::enable_raw_filter).
class RawFilter {
 public:
  /// `needle` must be non-empty.
  explicit RawFilter(std::string needle);

  /// True when `record` may satisfy the predicate (needle found). The scan
  /// runs through the dispatched substring kernel: vector ISA levels use a
  /// first/last-byte broadcast prefilter with an exact confirm, so results
  /// match the scalar search byte for byte.
  bool MightMatch(std::string_view record) const;

  const std::string& needle() const { return needle_; }

 private:
  std::string needle_;
};

/// True when `literal` is safe to search for literally in raw JSON bytes:
/// long enough to be selective and made only of characters JSON encoders
/// do not escape.
bool IsRawFilterableLiteral(std::string_view literal);

}  // namespace maxson::json

#endif  // MAXSON_JSON_RAW_FILTER_H_
