#include "json/json_path.h"

#include <cctype>

#include "json/dom_parser.h"
#include "json/json_writer.h"

namespace maxson::json {

namespace {

bool IsFieldChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<JsonPath> JsonPath::Parse(std::string_view text) {
  if (text.empty() || text[0] != '$') {
    return Status::ParseError("JSONPath must start with '$': " +
                              std::string(text));
  }
  std::vector<JsonPathStep> steps;
  size_t pos = 1;
  while (pos < text.size()) {
    if (text[pos] == '.') {
      ++pos;
      size_t start = pos;
      while (pos < text.size() && IsFieldChar(text[pos])) ++pos;
      if (pos == start) {
        return Status::ParseError("empty field name in JSONPath: " +
                                  std::string(text));
      }
      JsonPathStep step;
      step.kind = JsonPathStep::Kind::kField;
      step.field = std::string(text.substr(start, pos - start));
      steps.push_back(std::move(step));
    } else if (text[pos] == '[') {
      ++pos;
      if (pos < text.size() && text[pos] == '\'') {
        // Bracketed field form: ['field name'].
        ++pos;
        size_t start = pos;
        while (pos < text.size() && text[pos] != '\'') ++pos;
        if (pos >= text.size()) {
          return Status::ParseError("unterminated ['...'] in JSONPath");
        }
        JsonPathStep step;
        step.kind = JsonPathStep::Kind::kField;
        step.field = std::string(text.substr(start, pos - start));
        ++pos;  // closing quote
        if (pos >= text.size() || text[pos] != ']') {
          return Status::ParseError("expected ']' in JSONPath");
        }
        ++pos;
        steps.push_back(std::move(step));
      } else {
        size_t start = pos;
        while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
          ++pos;
        }
        if (pos == start || pos >= text.size() || text[pos] != ']') {
          return Status::ParseError("invalid array subscript in JSONPath: " +
                                    std::string(text));
        }
        JsonPathStep step;
        step.kind = JsonPathStep::Kind::kIndex;
        step.index = std::stoll(std::string(text.substr(start, pos - start)));
        ++pos;
        steps.push_back(std::move(step));
      }
    } else {
      return Status::ParseError("unexpected character in JSONPath: " +
                                std::string(text));
    }
  }
  return JsonPath(std::move(steps));
}

std::string JsonPath::ToString() const {
  std::string out = "$";
  for (const JsonPathStep& step : steps_) {
    if (step.kind == JsonPathStep::Kind::kField) {
      out.push_back('.');
      out.append(step.field);
    } else {
      out.push_back('[');
      out.append(std::to_string(step.index));
      out.push_back(']');
    }
  }
  return out;
}

const JsonValue* JsonPath::Evaluate(const JsonValue& root) const {
  const JsonValue* cur = &root;
  for (const JsonPathStep& step : steps_) {
    if (step.kind == JsonPathStep::Kind::kField) {
      if (!cur->is_object()) return nullptr;
      cur = cur->Find(step.field);
      if (cur == nullptr) return nullptr;
    } else {
      if (!cur->is_array()) return nullptr;
      if (step.index < 0 ||
          static_cast<size_t>(step.index) >= cur->elements().size()) {
        return nullptr;
      }
      cur = &cur->At(static_cast<size_t>(step.index));
    }
  }
  return cur;
}

std::string RenderGetJsonObjectResult(const JsonValue& value) {
  switch (value.type()) {
    case JsonType::kString:
      return value.string_value();  // scalars are rendered unquoted
    case JsonType::kNull:
      return "null";
    case JsonType::kBool:
      return value.bool_value() ? "true" : "false";
    case JsonType::kInt:
      return std::to_string(value.int_value());
    case JsonType::kDouble:
    case JsonType::kArray:
    case JsonType::kObject:
      return WriteJson(value);
  }
  return "";
}

Result<std::string> GetJsonObject(std::string_view json_text,
                                  const JsonPath& path) {
  MAXSON_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json_text));
  const JsonValue* node = path.Evaluate(root);
  if (node == nullptr) {
    return Status::NotFound("JSONPath " + path.ToString() + " not present");
  }
  return RenderGetJsonObjectResult(*node);
}

}  // namespace maxson::json
