#include "common/logging.h"

#include <atomic>

#include "common/thread_annotations.h"

namespace maxson {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes sink writes so concurrent MAXSON_LOG records never interleave
// mid-line. Each record is formatted into its LogMessage's private buffer
// first; the lock covers only the final write.
Mutex& SinkMutex() {
  static Mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to make records compact.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  {
    MutexLock lock(SinkMutex());
    std::cerr << stream_.str();
    if (level_ == LogLevel::kFatal) std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace maxson
