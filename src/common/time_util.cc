#include "common/time_util.h"

#include <cstdio>

namespace maxson {

namespace {
constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
}  // namespace

std::string FormatDate(DateId date) {
  if (date < 0) return "unknown";
  // Synthetic calendar starting 2019-01-01 (non-leap-year arithmetic is fine
  // for presentation purposes; dates are only labels).
  int year = 2019;
  int day_of_year = date;
  while (day_of_year >= 365) {
    day_of_year -= 365;
    ++year;
  }
  int month = 0;
  while (day_of_year >= kDaysInMonth[month]) {
    day_of_year -= kDaysInMonth[month];
    ++month;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month + 1,
                day_of_year + 1);
  return buf;
}

}  // namespace maxson
