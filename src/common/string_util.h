#ifndef MAXSON_COMMON_STRING_UTIL_H_
#define MAXSON_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace maxson {

/// Splits `input` on each occurrence of `sep`; empty pieces are kept.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Renders a byte count as a human-readable string ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace maxson

#endif  // MAXSON_COMMON_STRING_UTIL_H_
