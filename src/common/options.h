#ifndef MAXSON_COMMON_OPTIONS_H_
#define MAXSON_COMMON_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace maxson {

/// Value type of a runtime option. The registry parses raw text to the
/// declared type before the setter runs, so every setter receives a typed,
/// well-formed value and malformed input is rejected with one uniform
/// error shape instead of per-call-site ad-hoc parsing.
enum class OptionType { kBool, kUint64, kString };

const char* OptionTypeName(OptionType type);

/// A typed registry of runtime knobs ("set KNOB VALUE" surfaces): each
/// layer registers its options with a name, a type, a value-syntax string
/// for messages, and a setter; frontends (the shell, tests) dispatch
/// generically through Set. Collapses what used to be three copies of the
/// same parse-validate-apply switch (EngineConfig construction, session
/// UpdateConfig, the shell's `set` handler) into one table.
///
/// Not thread-safe: register everything up front, then Set from one
/// driver thread (setters themselves may do their own locking).
class OptionRegistry {
 public:
  struct Option {
    std::string name;
    OptionType type = OptionType::kString;
    /// Human-readable value syntax, e.g. "on|off" or "BYTES"; embedded in
    /// error and usage messages.
    std::string value_syntax;
    std::function<Status(bool)> set_bool;
    std::function<Status(uint64_t)> set_uint64;
    std::function<Status(const std::string&)> set_string;
  };

  /// Registration. Names are lower-case by convention; re-registering a
  /// name replaces the previous entry (last writer wins), which lets a
  /// frontend shadow a default.
  void RegisterBool(const std::string& name, const std::string& value_syntax,
                    std::function<Status(bool)> setter);
  void RegisterUint64(const std::string& name, const std::string& value_syntax,
                      std::function<Status(uint64_t)> setter);
  void RegisterString(const std::string& name, const std::string& value_syntax,
                      std::function<Status(const std::string&)> setter);

  /// Parses `value` per the option's declared type and runs its setter.
  /// Unknown names and malformed values fail with kInvalidArgument and a
  /// message naming the option and its expected syntax; the setter's own
  /// status (e.g. an unsupported ISA level) passes through unchanged.
  Status Set(const std::string& name, const std::string& value) const;

  /// nullptr when `name` is not registered.
  const Option* Find(const std::string& name) const;

  /// All options in name order (stable for help output).
  std::vector<const Option*> List() const;

  /// One-line usage summary: "set a SYNTAX | set b SYNTAX | ...".
  std::string Usage() const;

  /// Strict scalar parsers (also used directly by flag parsing). Bool
  /// accepts on|off|true|false|1|0; uint64 accepts decimal digits only and
  /// rejects overflow — std::strtoul's garbage-to-0 mapping is exactly the
  /// failure mode this registry exists to prevent.
  static bool ParseBool(const std::string& text, bool* out);
  static bool ParseUint64(const std::string& text, uint64_t* out);

 private:
  std::map<std::string, Option> options_;
};

}  // namespace maxson

#endif  // MAXSON_COMMON_OPTIONS_H_
