#include "common/status.h"

namespace maxson {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace maxson
