#ifndef MAXSON_COMMON_STATUS_H_
#define MAXSON_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace maxson {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kParseError,
  kUnimplemented,
  kInternal,
  /// Stored data failed a structural or checksum validation (bad magic,
  /// malformed footer, CRC mismatch). Distinct from kIoError — the bytes
  /// were read fine but cannot be trusted — so readers of redundant data
  /// (cache tables mirroring raw tables) can degrade instead of failing.
  kCorruption,
  /// A capacity limit (admission slots, bounded queue) was hit. The request
  /// was rejected without side effects and may be retried later; callers use
  /// this to shed load instead of queueing without bound.
  kResourceExhausted,
  /// The caller asked for the operation to stop (ScanSubscription::Cancel,
  /// an ExecContext cancel flag). Cooperative: work already completed for
  /// co-subscribers of a shared pass is kept, the cancelled caller's own
  /// result is abandoned.
  kCancelled,
};

/// Returns the canonical lowercase name of a status code (e.g. "parse error").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
///
/// Library code never throws; every operation that can fail returns a Status
/// (or a Result<T>, see result.h). The default-constructed Status is OK.
///
/// [[nodiscard]]: silently dropping a returned Status hides real failures
/// (tools/lint.py guards the attribute; src/ builds with -Werror). Callers
/// that genuinely cannot act on an error must still inspect and report it.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace maxson

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define MAXSON_RETURN_NOT_OK(expr)                    \
  do {                                                \
    ::maxson::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (false)

#endif  // MAXSON_COMMON_STATUS_H_
