#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace maxson {

Rng::Rng(uint64_t seed) {
  // splitmix64 to spread the seed over both words of state.
  auto splitmix = [](uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be nonzero
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  MAXSON_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MAXSON_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return mean + stddev * u * mul;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  MAXSON_CHECK(n >= 1);
  MAXSON_CHECK(s > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t r) const {
  MAXSON_CHECK(r < cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace maxson
