#ifndef MAXSON_COMMON_RESULT_H_
#define MAXSON_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace maxson {

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// The value accessors assert on misuse in debug builds; callers must check
/// `ok()` (or use MAXSON_ASSIGN_OR_RETURN) before dereferencing.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error (tools/lint.py guards the attribute).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return value;` inside a Result-returning
  /// function is the common success path.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status: lets error factories flow through.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace maxson

/// Evaluates `expr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define MAXSON_ASSIGN_OR_RETURN(lhs, expr)            \
  MAXSON_ASSIGN_OR_RETURN_IMPL(                       \
      MAXSON_CONCAT_NAME(_maxson_result_, __LINE__), lhs, expr)

#define MAXSON_CONCAT_NAME_INNER(x, y) x##y
#define MAXSON_CONCAT_NAME(x, y) MAXSON_CONCAT_NAME_INNER(x, y)
#define MAXSON_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // MAXSON_COMMON_RESULT_H_
