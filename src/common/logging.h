#ifndef MAXSON_COMMON_LOGGING_H_
#define MAXSON_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace maxson {

/// Severity of a log record; kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum level below which log records are dropped.
/// Defaults to kInfo; tests may lower it to kDebug.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Streams one log record and flushes it (with file:line prefix) at scope
/// exit. Used only through the MAXSON_LOG macro. Thread-safe: each record
/// builds in a private buffer and the single sink write is serialized by a
/// process-wide mutex, so records from concurrent workers never interleave
/// within a line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the record is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace maxson

#define MAXSON_LOG(level)                                                   \
  (::maxson::LogLevel::k##level < ::maxson::GetLogLevel())                  \
      ? void(0)                                                             \
      : ::maxson::internal_logging::LogVoidify() &                          \
            ::maxson::internal_logging::LogMessage(                         \
                ::maxson::LogLevel::k##level, __FILE__, __LINE__)           \
                .stream()

namespace maxson::internal_logging {
/// Helper giving MAXSON_LOG a void type so it composes with `?:` above.
struct LogVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace maxson::internal_logging

/// Aborts with a message when `cond` is false. Active in all build types:
/// used for programmer-error invariants, not data-dependent failures.
#define MAXSON_CHECK(cond)                                                  \
  (cond) ? void(0)                                                          \
         : ::maxson::internal_logging::LogVoidify() &                       \
               ::maxson::internal_logging::LogMessage(                      \
                   ::maxson::LogLevel::kFatal, __FILE__, __LINE__)          \
                   .stream()                                                \
               << "check failed: " #cond " "

#endif  // MAXSON_COMMON_LOGGING_H_
