#include "common/options.h"

#include <cctype>
#include <cstdint>
#include <utility>

namespace maxson {

const char* OptionTypeName(OptionType type) {
  switch (type) {
    case OptionType::kBool:
      return "bool";
    case OptionType::kUint64:
      return "uint64";
    case OptionType::kString:
      return "string";
  }
  return "unknown";
}

void OptionRegistry::RegisterBool(const std::string& name,
                                  const std::string& value_syntax,
                                  std::function<Status(bool)> setter) {
  Option option;
  option.name = name;
  option.type = OptionType::kBool;
  option.value_syntax = value_syntax;
  option.set_bool = std::move(setter);
  options_[name] = std::move(option);
}

void OptionRegistry::RegisterUint64(const std::string& name,
                                    const std::string& value_syntax,
                                    std::function<Status(uint64_t)> setter) {
  Option option;
  option.name = name;
  option.type = OptionType::kUint64;
  option.value_syntax = value_syntax;
  option.set_uint64 = std::move(setter);
  options_[name] = std::move(option);
}

void OptionRegistry::RegisterString(
    const std::string& name, const std::string& value_syntax,
    std::function<Status(const std::string&)> setter) {
  Option option;
  option.name = name;
  option.type = OptionType::kString;
  option.value_syntax = value_syntax;
  option.set_string = std::move(setter);
  options_[name] = std::move(option);
}

Status OptionRegistry::Set(const std::string& name,
                           const std::string& value) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    std::string known;
    for (const auto& [known_name, option] : options_) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    return Status::InvalidArgument("unknown option '" + name +
                                   "' (known: " + known + ")");
  }
  const Option& option = it->second;
  switch (option.type) {
    case OptionType::kBool: {
      bool parsed = false;
      if (!ParseBool(value, &parsed)) {
        return Status::InvalidArgument("option '" + name + "' expects " +
                                       option.value_syntax + ", got '" +
                                       value + "'");
      }
      return option.set_bool(parsed);
    }
    case OptionType::kUint64: {
      uint64_t parsed = 0;
      if (!ParseUint64(value, &parsed)) {
        return Status::InvalidArgument("option '" + name + "' expects " +
                                       option.value_syntax + ", got '" +
                                       value + "'");
      }
      return option.set_uint64(parsed);
    }
    case OptionType::kString: {
      if (value.empty()) {
        return Status::InvalidArgument("option '" + name + "' expects " +
                                       option.value_syntax);
      }
      return option.set_string(value);
    }
  }
  return Status::Internal("option '" + name + "' has an unknown type");
}

const OptionRegistry::Option* OptionRegistry::Find(
    const std::string& name) const {
  const auto it = options_.find(name);
  return it == options_.end() ? nullptr : &it->second;
}

std::vector<const OptionRegistry::Option*> OptionRegistry::List() const {
  std::vector<const Option*> out;
  out.reserve(options_.size());
  for (const auto& [name, option] : options_) out.push_back(&option);
  return out;
}

std::string OptionRegistry::Usage() const {
  std::string usage;
  for (const auto& [name, option] : options_) {
    if (!usage.empty()) usage += " | ";
    usage += "set " + name + " " + option.value_syntax;
  }
  return usage;
}

bool OptionRegistry::ParseBool(const std::string& text, bool* out) {
  if (text == "on" || text == "1" || text == "true") {
    *out = true;
    return true;
  }
  if (text == "off" || text == "0" || text == "false") {
    *out = false;
    return true;
  }
  return false;
}

bool OptionRegistry::ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace maxson
