#ifndef MAXSON_COMMON_TIME_UTIL_H_
#define MAXSON_COMMON_TIME_UTIL_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace maxson {

/// Dates in this repository are day indexes relative to an arbitrary epoch
/// (the first day of a generated trace is day 0). A DateId of -1 means
/// "unknown / not set".
using DateId = int32_t;

/// Formats a day index as "day N" plus an ISO-like synthetic date string
/// ("2019-01-01" + N days) so printed experiment output resembles the paper.
std::string FormatDate(DateId date);

/// The one clock every timing site in src/ reads. tools/lint.py bans direct
/// std::chrono clock calls outside this header so elapsed-time measurements
/// share a single monotonic clock and never silently mix in wall time.
using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;

inline MonotonicTime MonotonicNow() { return MonotonicClock::now(); }

/// Microseconds from `since` to `until`, saturating at 0 for reversed pairs.
inline uint64_t ElapsedMicros(MonotonicTime since, MonotonicTime until) {
  if (until < since) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(until - since)
          .count());
}

/// Monotonic stopwatch used by the engine's metrics and the benches.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNow()) {}

  void Reset() { start_ = MonotonicNow(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(MonotonicNow() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  MonotonicTime start_;
};

}  // namespace maxson

#endif  // MAXSON_COMMON_TIME_UTIL_H_
