#ifndef MAXSON_COMMON_TIME_UTIL_H_
#define MAXSON_COMMON_TIME_UTIL_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace maxson {

/// Dates in this repository are day indexes relative to an arbitrary epoch
/// (the first day of a generated trace is day 0). A DateId of -1 means
/// "unknown / not set".
using DateId = int32_t;

/// Formats a day index as "day N" plus an ISO-like synthetic date string
/// ("2019-01-01" + N days) so printed experiment output resembles the paper.
std::string FormatDate(DateId date);

/// Monotonic stopwatch used by the engine's metrics and the benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace maxson

#endif  // MAXSON_COMMON_TIME_UTIL_H_
