#ifndef MAXSON_COMMON_THREAD_ANNOTATIONS_H_
#define MAXSON_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis for the whole codebase (see DESIGN.md,
/// "Static analysis & concurrency discipline").
///
/// Every mutex-protected field carries MAXSON_GUARDED_BY, every
/// hold-the-lock helper carries MAXSON_REQUIRES, and all locking goes
/// through the annotated Mutex/SharedMutex wrappers below, so
/// `clang++ -Wthread-safety -Werror` proves the locking discipline at
/// compile time — what a TSan run can only sample. tools/ci.sh runs that
/// build when clang is available; tools/lint.py additionally parses these
/// annotations into a cross-TU lock-acquisition graph and enforces the
/// declared lock hierarchy (lock-order rule).
///
/// On non-Clang compilers every macro expands to nothing and the wrappers
/// reduce to the plain standard-library primitives they hold, so GCC
/// builds are byte-for-byte unaffected.
#if defined(__clang__)
#define MAXSON_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MAXSON_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define MAXSON_CAPABILITY(x) MAXSON_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define MAXSON_SCOPED_CAPABILITY MAXSON_THREAD_ANNOTATION_(scoped_lockable)

/// Field may be read/written only while holding `x` (exclusively for
/// writes, at least shared for reads).
#define MAXSON_GUARDED_BY(x) MAXSON_THREAD_ANNOTATION_(guarded_by(x))

/// The data *pointed to* by this field is guarded by `x`.
#define MAXSON_PT_GUARDED_BY(x) MAXSON_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may be called only while holding the named capabilities
/// exclusively / shared. Also the analyzer's (tools/lint.py lock-order)
/// source of held-lock context for cross-TU edges.
#define MAXSON_REQUIRES(...) \
  MAXSON_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MAXSON_REQUIRES_SHARED(...) \
  MAXSON_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it on
/// return.
#define MAXSON_ACQUIRE(...) \
  MAXSON_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MAXSON_ACQUIRE_SHARED(...) \
  MAXSON_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (any mode for the bare form — the
/// generic release also matches shared holds, which is what the scoped
/// lock destructors rely on).
#define MAXSON_RELEASE(...) \
  MAXSON_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MAXSON_RELEASE_SHARED(...) \
  MAXSON_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value meaning success.
#define MAXSON_TRY_ACQUIRE(...) \
  MAXSON_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT holding the named capabilities (guards
/// against self-deadlock on non-recursive mutexes).
#define MAXSON_EXCLUDES(...) MAXSON_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declared acquisition order between two capabilities.
#define MAXSON_ACQUIRED_BEFORE(...) \
  MAXSON_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MAXSON_ACQUIRED_AFTER(...) \
  MAXSON_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability `x`.
#define MAXSON_RETURN_CAPABILITY(x) MAXSON_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for functions whose safety argument the analysis cannot
/// express (e.g. CacheRegistry's move operations, which lock two instances
/// at once and require the moved-from registry to be otherwise idle).
/// Every use carries a comment saying why it is safe.
#define MAXSON_NO_THREAD_SAFETY_ANALYSIS \
  MAXSON_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace maxson {

/// Annotated exclusive mutex. Exactly std::mutex plus the capability
/// attribute; native() exposes the wrapped mutex for
/// std::condition_variable waits (through MutexLock::native()).
class MAXSON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MAXSON_ACQUIRE() { mu_.lock(); }
  void unlock() MAXSON_RELEASE() { mu_.unlock(); }
  bool try_lock() MAXSON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated reader/writer mutex over std::shared_mutex.
class MAXSON_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MAXSON_ACQUIRE() { mu_.lock(); }
  void unlock() MAXSON_RELEASE() { mu_.unlock(); }
  bool try_lock() MAXSON_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() MAXSON_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MAXSON_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() MAXSON_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement). Condition-variable waits go through
/// native(): the analysis treats the capability as held across the wait,
/// which matches the caller-visible contract (the predicate re-checks
/// under the lock).
class MAXSON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MAXSON_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() MAXSON_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class MAXSON_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) MAXSON_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~WriterMutexLock() MAXSON_RELEASE() {}

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// RAII shared (reader) lock on a SharedMutex.
class MAXSON_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) MAXSON_ACQUIRE_SHARED(mu)
      : lock_(mu.native()) {}
  ~SharedMutexLock() MAXSON_RELEASE() {}

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

}  // namespace maxson

#endif  // MAXSON_COMMON_THREAD_ANNOTATIONS_H_
