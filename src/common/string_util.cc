#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace maxson {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace maxson
