#ifndef MAXSON_COMMON_RANDOM_H_
#define MAXSON_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace maxson {

/// Deterministic xorshift128+ generator. Every stochastic component in the
/// repository (trace generation, data generation, model init) draws from a
/// seeded Rng so experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Gaussian sample via Box-Muller.
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability p.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1}: rank r is
/// drawn with probability proportional to 1/(r+1)^s. Used to reproduce the
/// paper's power-law JSONPath popularity (89% of traffic on 27% of paths).
class ZipfSampler {
 public:
  /// `n` must be >= 1 and `s` > 0.
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;

  /// Probability mass of rank r.
  double Pmf(size_t r) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.0
};

}  // namespace maxson

#endif  // MAXSON_COMMON_RANDOM_H_
