#ifndef MAXSON_SERVE_RESULT_CACHE_H_
#define MAXSON_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/plan.h"
#include "serve/canonicalizer.h"
#include "storage/record_batch.h"

namespace maxson::serve {

/// Bounds for the semantic result cache; both limits apply together.
struct ResultCacheConfig {
  size_t max_entries = 256;
  uint64_t max_bytes = 64ull << 20;
};

/// Snapshot of everything a cached result's correctness depends on, taken
/// BEFORE the producing execution starts: the cache registry's version
/// (the same counter the PR 3 binding snapshots key on — every Put /
/// Invalidate / Clear bumps it) plus the catalog's logical modification
/// clock of each table the query reads, in CanonicalQuery::tables order.
/// A hit requires exact equality with the lookup-time snapshot; any drift
/// — a midnight recache mid-execution included — turns the entry stale.
struct ResultValidity {
  uint64_t registry_version = 0;
  std::vector<int64_t> table_clocks;

  bool operator==(const ResultValidity& other) const {
    return registry_version == other.registry_version &&
           table_clocks == other.table_clocks;
  }
};

/// Semantic result cache: canonical-form SELECT -> materialized result.
/// Keyed by CanonicalQuery::cache_key (projection-order-insensitive); a
/// hit whose projection order differs from the stored one is served by
/// permuting the stored columns, which is sound because equal canonical
/// item text means equal expression AND equal derived column name.
/// Entries are LRU-evicted past the entry/byte budget and invalidated by
/// comparing ResultValidity snapshots. Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheConfig config) : config_(config) {}

  /// Returns the cached batch in `query`'s projection order when a fresh
  /// entry exists; a stale entry is erased and counted as an
  /// invalidation + miss.
  std::optional<storage::RecordBatch> Lookup(const CanonicalQuery& query,
                                             const ResultValidity& current)
      MAXSON_EXCLUDES(mutex_);

  /// Stores `batch` (the result of executing `query`) recorded as valid
  /// for `at`, which the caller snapshotted before execution began.
  /// Results larger than the whole byte budget are not cached.
  void Insert(const CanonicalQuery& query, const storage::RecordBatch& batch,
              const ResultValidity& at) MAXSON_EXCLUDES(mutex_);

  void Clear() MAXSON_EXCLUDES(mutex_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    size_t entries = 0;
    uint64_t bytes = 0;
  };
  Stats GetStats() const MAXSON_EXCLUDES(mutex_);

 private:
  struct Entry {
    storage::RecordBatch batch;
    std::vector<std::string> projections;  // stored column order
    ResultValidity validity;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void EvictWhileOverBudgetLocked() MAXSON_REQUIRES(mutex_);

  mutable Mutex mutex_;
  const ResultCacheConfig config_;
  std::unordered_map<std::string, Entry> entries_ MAXSON_GUARDED_BY(mutex_);
  /// Front = most recently used.
  std::list<std::string> lru_ MAXSON_GUARDED_BY(mutex_);
  uint64_t bytes_ MAXSON_GUARDED_BY(mutex_) = 0;
  Stats stats_ MAXSON_GUARDED_BY(mutex_);
};

}  // namespace maxson::serve

#endif  // MAXSON_SERVE_RESULT_CACHE_H_
