#include "serve/server.h"

#include <optional>

#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace maxson::serve {

Result<ClientSession::Outcome> ClientSession::Execute(const std::string& sql) {
  return server_->ExecuteForTenant(tenant_, sql);
}

MaxsonServer::MaxsonServer(core::MaxsonSession* session,
                           const catalog::Catalog* catalog,
                           ServeOptions options)
    : session_(session),
      catalog_(catalog),
      options_(options),
      admission_(options.default_limits),
      result_cache_(options.result_cache),
      result_cache_enabled_(options.enable_result_cache) {
  // The serving layer is the concurrent-identical-scan workload shared
  // scans target, so the server decides the session-wide sharing default.
  // Routed through UpdateConfig like every other session mutation.
  core::SessionUpdate update;
  update.shared_scan = options_.enable_shared_scan;
  // A bool toggle cannot fail validation; the cast documents that.
  (void)session_->UpdateConfig(update);
}

ClientSession MaxsonServer::Connect(const std::string& tenant) {
  return ClientSession(this, tenant);
}

void MaxsonServer::SetTenantLimits(const std::string& tenant,
                                   TenantLimits limits) {
  admission_.SetTenantLimits(tenant, limits);
}

void MaxsonServer::EnableResultCache(bool enabled) {
  MutexLock lock(options_mutex_);
  if (result_cache_enabled_ && !enabled) result_cache_.Clear();
  result_cache_enabled_ = enabled;
}

bool MaxsonServer::result_cache_enabled() const {
  MutexLock lock(options_mutex_);
  return result_cache_enabled_;
}

void MaxsonServer::InvalidateResultCache() { result_cache_.Clear(); }

void MaxsonServer::Shutdown() { admission_.Shutdown(); }

ResultValidity MaxsonServer::CurrentValidity(
    const CanonicalQuery& query) const {
  ResultValidity validity;
  validity.registry_version = session_->registry().version();
  validity.table_clocks.reserve(query.tables.size());
  for (const auto& [database, table] : query.tables) {
    const std::string& db = database.empty()
                                ? session_->config().engine.default_database
                                : database;
    int64_t clock = -1;  // missing table: stays -1 until it appears
    if (catalog_ != nullptr) {
      Result<const catalog::TableInfo*> info = catalog_->GetTable(db, table);
      if (info.ok()) clock = (*info)->last_modified;
    }
    validity.table_clocks.push_back(clock);
  }
  return validity;
}

void MaxsonServer::PublishAdmissionGauges(const std::string& tenant) {
  obs::MetricsRegistry& metrics = session_->metrics();
  const AdmissionController::TenantSnapshot snap =
      admission_.Snapshot(tenant);
  metrics.GetGauge(obs::kServeQueueDepth, {{"tenant", tenant}})
      ->Set(static_cast<double>(snap.queued));
  metrics.GetGauge(obs::kServeInFlight, {{"tenant", tenant}})
      ->Set(static_cast<double>(snap.in_flight));
}

Result<ClientSession::Outcome> MaxsonServer::ExecuteForTenant(
    const std::string& tenant, const std::string& sql) {
  obs::MetricsRegistry& metrics = session_->metrics();
  metrics.GetCounter(obs::kServeQueries, {{"tenant", tenant}})
      ->Increment();

  Result<AdmissionTicket> ticket = admission_.Admit(tenant);
  PublishAdmissionGauges(tenant);
  if (!ticket.ok()) {
    metrics.GetCounter(obs::kServeRejected, {{"tenant", tenant}})
        ->Increment();
    return ticket.status();
  }

  ClientSession::Outcome outcome;

  // Only plain SELECTs participate in the result cache: EXPLAIN variants
  // and anything the canonicalizer cannot render exactly pass through.
  std::optional<CanonicalQuery> canonical;
  if (result_cache_enabled()) {
    Result<CanonicalQuery> c = Canonicalize(sql);
    if (c.ok()) canonical = std::move(*c);
  }

  if (canonical.has_value()) {
    std::optional<storage::RecordBatch> hit =
        result_cache_.Lookup(*canonical, CurrentValidity(*canonical));
    if (hit.has_value()) {
      metrics.GetCounter(obs::kServeResultCacheHits)->Increment();
      outcome.result.batch = std::move(*hit);
      outcome.result_cache_hit = true;
      PublishAdmissionGauges(tenant);
      return outcome;
    }
    metrics.GetCounter(obs::kServeResultCacheMisses)->Increment();
  }

  // Snapshot validity BEFORE executing: if a midnight recache lands while
  // the query runs, the stored stamp no longer matches the post-recache
  // snapshot and the entry self-invalidates on its next lookup.
  ResultValidity validity;
  if (canonical.has_value()) validity = CurrentValidity(*canonical);

  Result<engine::QueryResult> result = session_->Execute(sql);
  while (!result.ok() && result.status().code() == StatusCode::kIoError &&
         outcome.io_retries < options_.max_io_error_retries) {
    // A registry swap can unlink cache files between plan and read;
    // re-executing re-plans against the new registry state.
    ++outcome.io_retries;
    metrics.GetCounter(obs::kServeIoRetries)->Increment();
    if (canonical.has_value()) validity = CurrentValidity(*canonical);
    result = session_->Execute(sql);
  }
  PublishAdmissionGauges(tenant);
  if (!result.ok()) return result.status();

  if (canonical.has_value()) {
    result_cache_.Insert(*canonical, result->batch, validity);
  }
  outcome.result = std::move(*result);
  return outcome;
}

void RegisterServeOptions(OptionRegistry* registry, MaxsonServer* server,
                          const std::string& tenant, TenantLimits* limits) {
  registry->RegisterBool("resultcache", "on|off", [server](bool on) {
    server->EnableResultCache(on);
    return Status::Ok();
  });
  registry->RegisterUint64(
      "maxinflight", "N", [server, tenant, limits](uint64_t n) {
        limits->max_in_flight = static_cast<size_t>(n);
        server->SetTenantLimits(tenant, *limits);
        return Status::Ok();
      });
  registry->RegisterUint64(
      "maxqueue", "N", [server, tenant, limits](uint64_t n) {
        limits->max_queue = static_cast<size_t>(n);
        server->SetTenantLimits(tenant, *limits);
        return Status::Ok();
      });
}

}  // namespace maxson::serve
