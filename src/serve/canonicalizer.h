#ifndef MAXSON_SERVE_CANONICALIZER_H_
#define MAXSON_SERVE_CANONICALIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace maxson::serve {

/// Canonical form of one SELECT statement, produced by Canonicalize().
struct CanonicalQuery {
  /// Re-parseable canonical SQL: uppercase keywords, single spacing,
  /// normalized predicates (commutative conjuncts/disjuncts sorted,
  /// pure-literal subtrees folded, comparisons oriented literal-on-right,
  /// IN lists sorted and deduplicated). Projection order is preserved —
  /// output column order and derived names are part of a query's
  /// semantics — so executing this text yields byte-identical results to
  /// the original.
  std::string sql;

  /// Result-cache key: `sql` with the projection list sorted, so
  /// `SELECT a, b` and `SELECT b, a` share one cache entry (the cache
  /// permutes stored columns back into each query's requested order).
  std::string cache_key;

  /// Canonical text of each projection item in query order
  /// ("expr" or "expr AS alias"). Items equal as strings are equal as
  /// output columns — same values and same derived name — which is what
  /// lets the result cache serve permuted projections.
  std::vector<std::string> projections;

  /// Tables the query reads: {database (may be empty = default), table}
  /// for FROM and, when present, JOIN. Used to pin cache entries to the
  /// catalog's logical modification clocks.
  std::vector<std::pair<std::string, std::string>> tables;
};

/// Builds the canonical form of `sql`. Fails with the parser's error on
/// invalid SQL, and with kUnimplemented on the rare literal that has no
/// exact re-parseable rendering (doubles needing exponent notation) —
/// callers treat any failure as "do not result-cache this query".
///
/// Guarantee relied on by the result cache (and enforced by the
/// differential test in tests/canonicalizer_test.cc): executing `sql`
/// produces byte-identical results — values, row order, column names —
/// to executing the original text. The transformations are restricted to
/// ones the engine's own evaluation semantics make order-independent:
/// AND/OR operands short-circuit only as a cost matter (operand
/// evaluation is total: division by zero yields NULL, not an error),
/// IN-list membership scans the whole list, and literal folding runs the
/// engine's own EvaluateExpr. Expressions under aggregates and in the
/// projection / GROUP BY / ORDER BY lists are rendered verbatim so
/// derived column names and HAVING-to-projection aggregate matching
/// survive unchanged.
Result<CanonicalQuery> Canonicalize(std::string_view sql);

}  // namespace maxson::serve

#endif  // MAXSON_SERVE_CANONICALIZER_H_
