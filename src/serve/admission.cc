#include "serve/admission.h"

#include <algorithm>

namespace maxson::serve {

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->Release(tenant_);
    controller_ = nullptr;
  }
}

AdmissionController::TenantState& AdmissionController::StateFor(
    const std::string& tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) it->second.limits = default_limits_;
  return it->second;
}

void AdmissionController::SetTenantLimits(const std::string& tenant,
                                          TenantLimits limits) {
  MutexLock lock(mutex_);
  StateFor(tenant).limits = limits;
  cv_.notify_all();
}

Result<AdmissionTicket> AdmissionController::Admit(const std::string& tenant) {
  MutexLock lock(mutex_);
  if (shutdown_) {
    return Status::ResourceExhausted("server is shutting down");
  }
  // References into tenants_ stay valid across inserts (unordered_map
  // never invalidates element references), so `state` survives the waits
  // below even while other tenants register.
  TenantState& state = StateFor(tenant);
  if (state.limits.max_in_flight == 0) {
    ++state.rejected;
    return Status::ResourceExhausted("tenant '" + tenant +
                                     "' has zero admission capacity");
  }
  if (state.in_flight < state.limits.max_in_flight && state.waiting.empty()) {
    ++state.in_flight;
    ++state.admitted;
    ++total_in_flight_;
    return AdmissionTicket(this, tenant);
  }
  if (state.waiting.size() >= state.limits.max_queue) {
    ++state.rejected;
    return Status::ResourceExhausted(
        "admission queue full for tenant '" + tenant + "' (" +
        std::to_string(state.waiting.size()) + " waiting, limit " +
        std::to_string(state.limits.max_queue) + ")");
  }
  const uint64_t waiter_id = next_waiter_id_++;
  state.waiting.push_back(waiter_id);
  // Explicit wait loop: thread-safety analysis cannot see capabilities
  // through the predicate lambda of cv.wait(lock, pred).
  while (!shutdown_ && !(!state.waiting.empty() &&
                         state.waiting.front() == waiter_id &&
                         state.in_flight < state.limits.max_in_flight)) {
    cv_.wait(lock.native());
  }
  // Leave the queue under either outcome.
  auto it = std::find(state.waiting.begin(), state.waiting.end(), waiter_id);
  if (it != state.waiting.end()) state.waiting.erase(it);
  if (shutdown_) {
    ++state.rejected;
    cv_.notify_all();  // Shutdown() may be waiting for the queue to clear
    return Status::ResourceExhausted("server is shutting down");
  }
  ++state.in_flight;
  ++state.admitted;
  ++total_in_flight_;
  // The next queued waiter may also fit (e.g. limits were raised).
  cv_.notify_all();
  return AdmissionTicket(this, tenant);
}

void AdmissionController::Release(const std::string& tenant) {
  MutexLock lock(mutex_);
  TenantState& state = StateFor(tenant);
  if (state.in_flight > 0) --state.in_flight;
  if (total_in_flight_ > 0) --total_in_flight_;
  cv_.notify_all();
}

void AdmissionController::Shutdown() {
  MutexLock lock(mutex_);
  shutdown_ = true;
  cv_.notify_all();
  while (total_in_flight_ != 0) cv_.wait(lock.native());
}

AdmissionController::TenantSnapshot AdmissionController::Snapshot(
    const std::string& tenant) const {
  MutexLock lock(mutex_);
  TenantSnapshot snap;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return snap;
  snap.in_flight = it->second.in_flight;
  snap.queued = it->second.waiting.size();
  snap.admitted = it->second.admitted;
  snap.rejected = it->second.rejected;
  return snap;
}

size_t AdmissionController::TotalInFlight() const {
  MutexLock lock(mutex_);
  return total_in_flight_;
}

bool AdmissionController::shutting_down() const {
  MutexLock lock(mutex_);
  return shutdown_;
}

}  // namespace maxson::serve
