#include "serve/result_cache.h"

#include <utility>

namespace maxson::serve {

namespace {

/// Rebuilds `stored` with its columns in `wanted` order. Duplicate items
/// are matched one-to-one (each stored column serves one requested item).
/// Returns nullopt when the item multisets differ — the caller treats
/// that as a miss (it cannot happen for entries found under a
/// projection-sorted cache key, but the cache never trusts that).
std::optional<storage::RecordBatch> PermuteColumns(
    const storage::RecordBatch& stored,
    const std::vector<std::string>& stored_items,
    const std::vector<std::string>& wanted) {
  if (stored_items.size() != wanted.size() ||
      stored.num_columns() != stored_items.size()) {
    return std::nullopt;
  }
  std::vector<size_t> mapping(wanted.size());
  std::vector<bool> used(stored_items.size(), false);
  for (size_t w = 0; w < wanted.size(); ++w) {
    bool found = false;
    for (size_t s = 0; s < stored_items.size(); ++s) {
      if (!used[s] && stored_items[s] == wanted[w]) {
        mapping[w] = s;
        used[s] = true;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  storage::Schema schema;
  for (size_t w = 0; w < wanted.size(); ++w) {
    const storage::Field& f = stored.schema().field(mapping[w]);
    schema.AddField(f.name, f.type);
  }
  storage::RecordBatch out(schema);
  for (size_t w = 0; w < wanted.size(); ++w) {
    out.column(w) = stored.column(mapping[w]);
  }
  return out;
}

}  // namespace

std::optional<storage::RecordBatch> ResultCache::Lookup(
    const CanonicalQuery& query, const ResultValidity& current) {
  MutexLock lock(mutex_);
  auto it = entries_.find(query.cache_key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = it->second;
  if (!(entry.validity == current)) {
    bytes_ -= entry.bytes;
    lru_.erase(entry.lru_it);
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  std::optional<storage::RecordBatch> served =
      entry.projections == query.projections
          ? std::optional<storage::RecordBatch>(entry.batch)
          : PermuteColumns(entry.batch, entry.projections, query.projections);
  if (!served.has_value()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  ++stats_.hits;
  return served;
}

void ResultCache::Insert(const CanonicalQuery& query,
                         const storage::RecordBatch& batch,
                         const ResultValidity& at) {
  const uint64_t bytes = batch.ByteSize();
  MutexLock lock(mutex_);
  if (bytes > config_.max_bytes || config_.max_entries == 0) return;
  auto it = entries_.find(query.cache_key);
  if (it != entries_.end()) {
    // Concurrent producers of the same key: last writer wins; both ran the
    // query, so either entry is a correct result for its validity stamp.
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  lru_.push_front(query.cache_key);
  Entry entry;
  entry.batch = batch;
  entry.projections = query.projections;
  entry.validity = at;
  entry.bytes = bytes;
  entry.lru_it = lru_.begin();
  bytes_ += bytes;
  entries_.emplace(query.cache_key, std::move(entry));
  EvictWhileOverBudgetLocked();
}

void ResultCache::EvictWhileOverBudgetLocked() {
  while (!lru_.empty() &&
         (entries_.size() > config_.max_entries || bytes_ > config_.max_bytes)) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

ResultCache::Stats ResultCache::GetStats() const {
  MutexLock lock(mutex_);
  Stats stats = stats_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace maxson::serve
