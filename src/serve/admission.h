#ifndef MAXSON_SERVE_ADMISSION_H_
#define MAXSON_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace maxson::serve {

/// Per-tenant capacity: how many queries may execute at once and how many
/// more may wait. Everything beyond max_in_flight + max_queue is rejected
/// with kResourceExhausted instead of queueing without bound.
struct TenantLimits {
  size_t max_in_flight = 4;
  size_t max_queue = 16;
};

class AdmissionController;

/// RAII in-flight slot handed out by AdmissionController::Admit. Destroying
/// (or Release()ing) it frees the slot and wakes the tenant's next waiter.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_), tenant_(std::move(other.tenant_)) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      tenant_ = std::move(other.tenant_);
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { Release(); }

  void Release();

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, std::string tenant)
      : controller_(controller), tenant_(std::move(tenant)) {}

  AdmissionController* controller_ = nullptr;
  std::string tenant_;
};

/// Bounds concurrent query execution per tenant. Admit() returns a ticket
/// immediately when the tenant has a free in-flight slot, waits in FIFO
/// order while the bounded queue has room, and fails fast with a typed
/// kResourceExhausted Status when the queue is full, the tenant has zero
/// capacity, or the controller is shutting down — a caller is never
/// blocked behind an unbounded line.
///
/// Creates no threads of its own: waiting happens on the calling thread
/// (the serving layer runs all execution on the shared exec::ThreadPool).
class AdmissionController {
 public:
  explicit AdmissionController(TenantLimits default_limits)
      : default_limits_(default_limits) {}
  ~AdmissionController() { Shutdown(); }

  /// Overrides the limits for one tenant (first Admit of an unknown tenant
  /// installs the defaults). Taking effect immediately: queued waiters
  /// re-evaluate against the new limits.
  void SetTenantLimits(const std::string& tenant, TenantLimits limits)
      MAXSON_EXCLUDES(mutex_);

  /// Acquires an in-flight slot for `tenant`, waiting (bounded by the
  /// tenant's queue capacity, in arrival order) when all slots are busy.
  Result<AdmissionTicket> Admit(const std::string& tenant)
      MAXSON_EXCLUDES(mutex_);

  /// Rejects all queued waiters and every future Admit, then blocks until
  /// the in-flight queries drain (their tickets are released). Idempotent.
  void Shutdown() MAXSON_EXCLUDES(mutex_);

  struct TenantSnapshot {
    size_t in_flight = 0;
    size_t queued = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
  };
  TenantSnapshot Snapshot(const std::string& tenant) const
      MAXSON_EXCLUDES(mutex_);
  size_t TotalInFlight() const MAXSON_EXCLUDES(mutex_);
  bool shutting_down() const MAXSON_EXCLUDES(mutex_);

 private:
  friend class AdmissionTicket;

  struct TenantState {
    TenantLimits limits;
    size_t in_flight = 0;
    std::deque<uint64_t> waiting;  // FIFO of waiter ids
    uint64_t admitted = 0;
    uint64_t rejected = 0;
  };

  /// Called by tickets; frees the slot and wakes waiters.
  void Release(const std::string& tenant) MAXSON_EXCLUDES(mutex_);

  TenantState& StateFor(const std::string& tenant) MAXSON_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::condition_variable cv_;
  TenantLimits default_limits_ MAXSON_GUARDED_BY(mutex_);
  bool shutdown_ MAXSON_GUARDED_BY(mutex_) = false;
  size_t total_in_flight_ MAXSON_GUARDED_BY(mutex_) = 0;
  uint64_t next_waiter_id_ MAXSON_GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::string, TenantState> tenants_
      MAXSON_GUARDED_BY(mutex_);
};

}  // namespace maxson::serve

#endif  // MAXSON_SERVE_ADMISSION_H_
