#ifndef MAXSON_SERVE_SERVER_H_
#define MAXSON_SERVE_SERVER_H_

#include <memory>
#include <string>
#include <utility>

#include "catalog/catalog.h"
#include "common/options.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "core/maxson.h"
#include "engine/plan.h"
#include "serve/admission.h"
#include "serve/canonicalizer.h"
#include "serve/result_cache.h"

namespace maxson::serve {

/// Server-level knobs; admission limits apply per tenant.
struct ServeOptions {
  TenantLimits default_limits;
  bool enable_result_cache = true;
  ResultCacheConfig result_cache;
  /// Route the session's scans through the shared-scan manager so
  /// concurrent tenants querying one table coalesce into one parse pass
  /// per morsel (see exec/shared_scan.h). On by default here — the serving
  /// layer is exactly the concurrent-identical-scan workload sharing
  /// targets — and applied to the session at construction; flip off for
  /// strictly private per-query scans.
  bool enable_shared_scan = true;
  /// Executions that fail with kIoError are retried this many times: a
  /// midnight recache can unlink a cache part file between plan and read,
  /// and the registry contract is "re-plan against the new state".
  int max_io_error_retries = 2;
};

class MaxsonServer;

/// One client's handle onto the server: a tenant name plus the server
/// connection. Handles are cheap, movable, and must not outlive the
/// server. All handles multiplex onto the server's one MaxsonSession —
/// one shared CacheRegistry, one shared exec::ThreadPool.
class ClientSession {
 public:
  /// Result of one served query.
  struct Outcome {
    engine::QueryResult result;
    bool result_cache_hit = false;
    int io_retries = 0;
  };

  /// Executes SQL for this client's tenant, subject to admission control
  /// and the semantic result cache. Fails with kResourceExhausted when
  /// the tenant is over capacity or the server is shutting down.
  Result<Outcome> Execute(const std::string& sql);

  const std::string& tenant() const { return tenant_; }

 private:
  friend class MaxsonServer;
  ClientSession(MaxsonServer* server, std::string tenant)
      : server_(server), tenant_(std::move(tenant)) {}

  MaxsonServer* server_;
  std::string tenant_;
};

/// Multiplexes N concurrent client sessions onto one MaxsonSession: shared
/// CacheRegistry, shared engine and thread pool, per-tenant admission
/// control, and a semantic result cache above the plan/JSONPath cache
/// tiers. Serving metrics (maxson_serve_*) publish to the session's
/// metrics registry. Does not own the session or catalog; creates no
/// threads (clients call Execute from their own threads, execution runs
/// on the session's pool).
class MaxsonServer {
 public:
  MaxsonServer(core::MaxsonSession* session, const catalog::Catalog* catalog,
               ServeOptions options);
  ~MaxsonServer() { Shutdown(); }

  MaxsonServer(const MaxsonServer&) = delete;
  MaxsonServer& operator=(const MaxsonServer&) = delete;

  /// Opens a client session for `tenant`. Unknown tenants get the default
  /// admission limits.
  ClientSession Connect(const std::string& tenant);

  /// Overrides one tenant's admission limits (effective immediately).
  void SetTenantLimits(const std::string& tenant, TenantLimits limits);

  /// Turns the result cache on/off at runtime; turning it off clears it.
  /// Acquires ResultCache::mutex_ (via Clear) while holding options_mutex_
  /// — the declared server-layer lock order.
  void EnableResultCache(bool enabled) MAXSON_EXCLUDES(options_mutex_);
  bool result_cache_enabled() const MAXSON_EXCLUDES(options_mutex_);

  /// Drops all cached results (admin hook; staleness is otherwise handled
  /// by the ResultValidity snapshots).
  void InvalidateResultCache();

  /// Rejects queued and future queries, waits for in-flight ones to
  /// drain. Idempotent; also run by the destructor.
  void Shutdown();

  ResultCache::Stats result_cache_stats() const {
    return result_cache_.GetStats();
  }
  AdmissionController::TenantSnapshot admission_snapshot(
      const std::string& tenant) const {
    return admission_.Snapshot(tenant);
  }
  const ServeOptions& options() const { return options_; }

 private:
  friend class ClientSession;

  Result<ClientSession::Outcome> ExecuteForTenant(const std::string& tenant,
                                                  const std::string& sql);

  /// Snapshots everything a cached result for `query` depends on; see
  /// ResultValidity.
  ResultValidity CurrentValidity(const CanonicalQuery& query) const;

  void PublishAdmissionGauges(const std::string& tenant);

  core::MaxsonSession* session_;
  const catalog::Catalog* catalog_;
  ServeOptions options_;
  AdmissionController admission_;
  ResultCache result_cache_;
  /// Guards the result-cache toggle.
  mutable Mutex options_mutex_;
  bool result_cache_enabled_ MAXSON_GUARDED_BY(options_mutex_);
};

/// Registers the serving-layer knobs on `registry`: resultcache,
/// sharedscan (server-level toggle, applied to the session), maxinflight,
/// and maxqueue. Admission limits apply to `tenant` and are read-modify-
/// written through `limits`, which the caller owns (so its display of the
/// current limits stays in sync). All pointees must outlive the registry.
void RegisterServeOptions(OptionRegistry* registry, MaxsonServer* server,
                          const std::string& tenant, TenantLimits* limits);

}  // namespace maxson::serve

#endif  // MAXSON_SERVE_SERVER_H_
