#include "serve/canonicalizer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "engine/expr.h"
#include "engine/sql_ast.h"
#include "engine/sql_parser.h"

namespace maxson::serve {
namespace {

using engine::BinaryOp;
using engine::Expr;
using engine::ExprKind;
using engine::ExprPtr;
using engine::UnaryOp;
using storage::Value;

// ---- Rendering (must re-parse to the same tree the original SQL did) ----

const char* OpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// The operator such that `a op b` == `b mirror(op) a`.
BinaryOp MirrorOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

const char* AggToken(engine::AggKind agg) {
  switch (agg) {
    case engine::AggKind::kCount:
      return "count";
    case engine::AggKind::kSum:
      return "sum";
    case engine::AggKind::kAvg:
      return "avg";
    case engine::AggKind::kMin:
      return "min";
    case engine::AggKind::kMax:
      return "max";
  }
  return "?";
}

/// Shortest %g rendering that round-trips through the lexer (which has no
/// exponent syntax) back to exactly `v`. Fails for magnitudes that only
/// have exponent-form representations.
Status RenderDouble(double v, std::string* out) {
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    const std::string text = buffer;
    if (text.find_first_of("eEnNiI") != std::string::npos) continue;
    if (std::strtod(text.c_str(), nullptr) != v) continue;
    *out += text;
    // Integral doubles must re-parse as floats, not integers, so the
    // literal keeps its type through the round trip.
    if (text.find('.') == std::string::npos) *out += ".0";
    return Status::Ok();
  }
  return Status::Unimplemented("double literal has no plain rendering");
}

Status RenderLiteral(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "NULL";
  } else if (v.is_bool()) {
    *out += v.bool_value() ? "TRUE" : "FALSE";
  } else if (v.is_int64()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, v.int64_value());
    *out += buffer;
  } else if (v.is_double()) {
    MAXSON_RETURN_NOT_OK(RenderDouble(v.double_value(), out));
  } else {
    *out += '\'';
    for (char ch : v.string_value()) {
      *out += ch;
      if (ch == '\'') *out += '\'';  // lexer's '' escape
    }
    *out += '\'';
  }
  return Status::Ok();
}

Status RenderExpr(const Expr& e, std::string* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return RenderLiteral(e.literal, out);
    case ExprKind::kColumnRef:
      *out += e.column;
      return Status::Ok();
    case ExprKind::kBinary:
      *out += '(';
      MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
      *out += ' ';
      *out += OpToken(e.bin_op);
      *out += ' ';
      MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[1], out));
      *out += ')';
      return Status::Ok();
    case ExprKind::kUnary:
      switch (e.un_op) {
        case UnaryOp::kNot:
          *out += "(NOT ";
          MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
          *out += ')';
          return Status::Ok();
        case UnaryOp::kNeg:
          *out += "(-";
          MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
          *out += ')';
          return Status::Ok();
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          *out += '(';
          MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
          *out += e.un_op == UnaryOp::kIsNull ? " IS NULL)" : " IS NOT NULL)";
          return Status::Ok();
      }
      return Status::Internal("unhandled unary operator");
    case ExprKind::kFunction:
      // IN and LIKE parse into function nodes but ToString's "in(a, 1)"
      // form is not this grammar; emit the SQL operator spelling.
      if (e.func_name == "in" && e.children.size() >= 2) {
        *out += '(';
        MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
        *out += " IN (";
        for (size_t i = 1; i < e.children.size(); ++i) {
          if (i > 1) *out += ", ";
          MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[i], out));
        }
        *out += "))";
        return Status::Ok();
      }
      if (e.func_name == "like" && e.children.size() == 2) {
        *out += '(';
        MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
        *out += " LIKE ";
        MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[1], out));
        *out += ')';
        return Status::Ok();
      }
      *out += e.func_name;
      *out += '(';
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) *out += ", ";
        MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[i], out));
      }
      *out += ')';
      return Status::Ok();
    case ExprKind::kAggregate:
      *out += AggToken(e.agg);
      *out += '(';
      if (e.children.empty()) {
        *out += '*';
      } else {
        MAXSON_RETURN_NOT_OK(RenderExpr(*e.children[0], out));
      }
      *out += ')';
      return Status::Ok();
    case ExprKind::kStar:
      *out += '*';
      return Status::Ok();
  }
  return Status::Internal("unhandled expression kind");
}

/// Deterministic ordering key for sorting operands; falls back to the
/// diagnostic rendering when the exact one fails, which only affects sort
/// position, never semantics.
std::string SortKey(const Expr& e) {
  std::string out;
  if (RenderExpr(e, &out).ok()) return out;
  return "~" + e.ToString();
}

// ---- Normalization ----

/// True when the subtree is literals combined by operators only — no
/// columns, functions, or aggregates — so EvaluateExpr needs no context
/// and is total (division by zero yields NULL, not an error).
bool IsPureLiteral(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kBinary:
    case ExprKind::kUnary:
      for (const ExprPtr& child : e.children) {
        if (!IsPureLiteral(*child)) return false;
      }
      return true;
    default:
      return false;
  }
}

/// Folds a pure-literal operator subtree to the literal the engine itself
/// would compute, but only when that literal renders back exactly.
void TryFold(ExprPtr& e) {
  if (e->kind != ExprKind::kBinary && e->kind != ExprKind::kUnary) return;
  if (!IsPureLiteral(*e)) return;
  engine::EvalContext ctx;
  Result<Value> folded = engine::EvaluateExpr(*e, ctx);
  if (!folded.ok()) return;
  std::string probe;
  if (!RenderLiteral(*folded, &probe).ok()) return;
  e = Expr::Literal(std::move(*folded));
}

/// Collects the operands of a (possibly nested) chain of one AND/OR
/// operator, left to right.
void FlattenBoolean(BinaryOp op, ExprPtr e, std::vector<ExprPtr>* parts) {
  if (e->kind == ExprKind::kBinary && e->bin_op == op) {
    FlattenBoolean(op, std::move(e->children[0]), parts);
    FlattenBoolean(op, std::move(e->children[1]), parts);
  } else {
    parts->push_back(std::move(e));
  }
}

void CanonicalizeExpr(ExprPtr& e);

/// AND/OR chains: canonicalize every operand, then sort them — truthiness
/// of the conjunction/disjunction is a function of the operand truth
/// multiset, and operand evaluation is total, so order is a cost choice,
/// not a semantic one. Adjacent duplicates collapse while at least two
/// operands remain (collapsing to a single bare operand would change the
/// expression's value domain from boolean to the operand's own type,
/// which matters if the chain is nested inside a comparison).
void CanonicalizeBooleanChain(ExprPtr& e) {
  const BinaryOp op = e->bin_op;
  std::vector<ExprPtr> parts;
  FlattenBoolean(op, std::move(e), &parts);
  for (ExprPtr& part : parts) {
    CanonicalizeExpr(part);
    TryFold(part);
  }
  std::stable_sort(parts.begin(), parts.end(),
                   [](const ExprPtr& a, const ExprPtr& b) {
                     return SortKey(*a) < SortKey(*b);
                   });
  for (size_t i = 1; i < parts.size() && parts.size() > 2;) {
    if (SortKey(*parts[i - 1]) == SortKey(*parts[i])) {
      parts.erase(parts.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  ExprPtr rebuilt = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    rebuilt = Expr::Binary(op, std::move(rebuilt), std::move(parts[i]));
  }
  e = std::move(rebuilt);
  TryFold(e);
}

void CanonicalizeExpr(ExprPtr& e) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kAggregate:
      // Verbatim: aggregate text must stay identical between the
      // projection list (never rewritten) and HAVING, where the planner
      // matches aggregates textually.
      return;
    case ExprKind::kBinary: {
      if (e->bin_op == BinaryOp::kAnd || e->bin_op == BinaryOp::kOr) {
        CanonicalizeBooleanChain(e);
        return;
      }
      CanonicalizeExpr(e->children[0]);
      CanonicalizeExpr(e->children[1]);
      TryFold(e);
      if (e->kind != ExprKind::kBinary) return;  // folded away
      const bool left_literal = e->children[0]->kind == ExprKind::kLiteral;
      const bool right_literal = e->children[1]->kind == ExprKind::kLiteral;
      if (IsComparison(e->bin_op)) {
        // Literal on the right; between two non-literals, smaller rendering
        // on the left (comparison evaluation is symmetric under mirroring).
        const bool flip =
            (left_literal && !right_literal) ||
            (left_literal == right_literal &&
             SortKey(*e->children[0]) > SortKey(*e->children[1]));
        if (flip) {
          std::swap(e->children[0], e->children[1]);
          e->bin_op = MirrorOp(e->bin_op);
        }
      } else if (e->bin_op == BinaryOp::kAdd || e->bin_op == BinaryOp::kMul) {
        // + and * evaluate both operands then combine commutatively (for
        // int64 and IEEE doubles alike), so operand order is free.
        if (SortKey(*e->children[0]) > SortKey(*e->children[1])) {
          std::swap(e->children[0], e->children[1]);
        }
      }
      return;
    }
    case ExprKind::kUnary:
      CanonicalizeExpr(e->children[0]);
      TryFold(e);
      return;
    case ExprKind::kFunction: {
      for (ExprPtr& child : e->children) CanonicalizeExpr(child);
      if (e->func_name == "in" && e->children.size() > 2) {
        // Membership scans the whole list and skips NULLs, so the list is
        // a set: sort it and drop duplicates.
        std::stable_sort(e->children.begin() + 1, e->children.end(),
                         [](const ExprPtr& a, const ExprPtr& b) {
                           return SortKey(*a) < SortKey(*b);
                         });
        for (size_t i = 2; i < e->children.size();) {
          if (SortKey(*e->children[i - 1]) == SortKey(*e->children[i])) {
            e->children.erase(e->children.begin() +
                              static_cast<ptrdiff_t>(i));
          } else {
            ++i;
          }
        }
      }
      return;
    }
    default:
      return;
  }
}

void RenderTableRef(const engine::TableRef& ref, std::string* out) {
  if (!ref.database.empty()) {
    *out += ref.database;
    *out += '.';
  }
  *out += ref.table;
  if (!ref.alias.empty()) {
    *out += ' ';
    *out += ref.alias;
  }
}

}  // namespace

Result<CanonicalQuery> Canonicalize(std::string_view sql) {
  MAXSON_ASSIGN_OR_RETURN(engine::SelectStatement stmt, engine::ParseSql(sql));

  // Normalize the predicate positions only; projections, GROUP BY, and
  // ORDER BY render verbatim so output names, grouping, and sort keys are
  // untouched.
  CanonicalizeExpr(stmt.where);
  CanonicalizeExpr(stmt.having);
  CanonicalizeExpr(stmt.join_condition);

  CanonicalQuery out;
  for (const engine::SelectItem& item : stmt.items) {
    std::string text;
    MAXSON_RETURN_NOT_OK(RenderExpr(*item.expr, &text));
    if (!item.alias.empty()) {
      text += " AS ";
      text += item.alias;
    }
    out.projections.push_back(std::move(text));
  }
  std::vector<std::string> sorted_items = out.projections;
  std::sort(sorted_items.begin(), sorted_items.end());

  const auto render_statement =
      [&stmt](const std::vector<std::string>& items,
              std::string* rendered) -> Status {
    *rendered += "SELECT ";
    if (stmt.distinct) *rendered += "DISTINCT ";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) *rendered += ", ";
      *rendered += items[i];
    }
    *rendered += " FROM ";
    RenderTableRef(stmt.from, rendered);
    if (stmt.join.has_value()) {
      *rendered += " INNER JOIN ";
      RenderTableRef(*stmt.join, rendered);
      *rendered += " ON ";
      MAXSON_RETURN_NOT_OK(RenderExpr(*stmt.join_condition, rendered));
    }
    if (stmt.where != nullptr) {
      *rendered += " WHERE ";
      MAXSON_RETURN_NOT_OK(RenderExpr(*stmt.where, rendered));
    }
    if (!stmt.group_by.empty()) {
      *rendered += " GROUP BY ";
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        if (i > 0) *rendered += ", ";
        MAXSON_RETURN_NOT_OK(RenderExpr(*stmt.group_by[i], rendered));
      }
    }
    if (stmt.having != nullptr) {
      *rendered += " HAVING ";
      MAXSON_RETURN_NOT_OK(RenderExpr(*stmt.having, rendered));
    }
    if (!stmt.order_by.empty()) {
      *rendered += " ORDER BY ";
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        if (i > 0) *rendered += ", ";
        MAXSON_RETURN_NOT_OK(RenderExpr(*stmt.order_by[i].expr, rendered));
        if (stmt.order_by[i].descending) *rendered += " DESC";
      }
    }
    if (stmt.limit >= 0) {
      *rendered += " LIMIT ";
      *rendered += std::to_string(stmt.limit);
    }
    return Status::Ok();
  };

  MAXSON_RETURN_NOT_OK(render_statement(out.projections, &out.sql));
  MAXSON_RETURN_NOT_OK(render_statement(sorted_items, &out.cache_key));

  out.tables.emplace_back(stmt.from.database, stmt.from.table);
  if (stmt.join.has_value()) {
    out.tables.emplace_back(stmt.join->database, stmt.join->table);
  }
  return out;
}

}  // namespace maxson::serve
