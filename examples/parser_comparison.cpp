// Parser comparison: DOM ("Jackson") vs structural-index ("Mison") on the
// same extraction workload, including the schema-variability effect that
// drives the paper's Fig. 15 discussion.
//
//   ./build/examples/parser_comparison

#include <cstdio>
#include <string>
#include <vector>

#include "common/time_util.h"
#include "json/json_path.h"
#include "json/mison_parser.h"
#include "workload/data_generator.h"

using maxson::Stopwatch;
using maxson::json::JsonPath;
using maxson::json::MisonParser;
using maxson::workload::GenerateJsonRecord;
using maxson::workload::JsonTableSpec;

namespace {

double ExtractAllDom(const std::vector<std::string>& records,
                     const JsonPath& path) {
  Stopwatch timer;
  size_t found = 0;
  for (const std::string& text : records) {
    auto value = maxson::json::GetJsonObject(text, path);
    if (value.ok()) ++found;
  }
  const double elapsed = timer.ElapsedSeconds();
  std::printf("    DOM parser:   %7.1f ms (%zu/%zu found)\n", elapsed * 1e3,
              found, records.size());
  return elapsed;
}

double ExtractAllMison(const std::vector<std::string>& records,
                       const JsonPath& path, MisonParser* parser) {
  Stopwatch timer;
  size_t found = 0;
  for (const std::string& text : records) {
    auto value = parser->Extract(text, path);
    if (value.ok()) ++found;
  }
  const double elapsed = timer.ElapsedSeconds();
  std::printf("    Mison parser: %7.1f ms (%zu/%zu found, speculation "
              "hits=%llu misses=%llu)\n",
              elapsed * 1e3, found, records.size(),
              static_cast<unsigned long long>(parser->speculation_hits()),
              static_cast<unsigned long long>(parser->speculation_misses()));
  return elapsed;
}

}  // namespace

int main() {
  const int kRecords = 20000;
  auto path = JsonPath::Parse("$.f2");
  if (!path.ok()) return 1;

  for (const bool variable : {false, true}) {
    JsonTableSpec spec;
    spec.table = "demo";
    spec.num_properties = 40;
    spec.avg_json_bytes = 1200;
    spec.schema_variability = variable ? 0.8 : 0.0;
    std::vector<std::string> records;
    records.reserve(kRecords);
    for (int i = 0; i < kRecords; ++i) {
      records.push_back(GenerateJsonRecord(spec, static_cast<uint64_t>(i)));
    }
    std::printf("  %s schema (%d records, ~%d B each):\n",
                variable ? "VARIABLE" : "stable", kRecords,
                spec.avg_json_bytes);
    const double dom = ExtractAllDom(records, *path);
    MisonParser mison;
    const double fast = ExtractAllMison(records, *path, &mison);
    std::printf("    -> Mison speedup over DOM: %.1fx\n\n", dom / fast);
  }

  std::printf("Takeaway: structural-index parsing wins big on stable "
              "schemas and degrades\nwhen field order varies — which is why "
              "the paper pairs Maxson's caching\n(immune to schema "
              "variability) with Mison for the uncached paths.\n");
  return 0;
}
