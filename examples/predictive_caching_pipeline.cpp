// Predictive-caching pipeline: the full nightly loop over a realistic
// synthetic production trace.
//
// Generates an Alibaba-like workload trace (recurring daily/weekly query
// templates, power-law JSONPath popularity), prints its distributional
// statistics (the Section II workload analysis), trains the MPJP
// predictor, and simulates several consecutive nights: each midnight the
// predictor picks tomorrow's MPJPs, the scoring function ranks them, and
// the cycle's quality is evaluated against the next day's ground truth.
//
//   ./build/examples/predictive_caching_pipeline

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/collector.h"
#include "core/predictor.h"
#include "ml/metrics.h"
#include "workload/trace_generator.h"
#include "workload/workload_stats.h"

using maxson::core::JsonPathCollector;
using maxson::core::JsonPathPredictor;
using maxson::core::PredictorConfig;
using maxson::core::PredictorModel;
using maxson::ml::BinaryMetrics;
using maxson::workload::GenerateTrace;
using maxson::workload::Trace;
using maxson::workload::TraceGeneratorConfig;

int main() {
  // 1. Generate the trace and report the paper's workload statistics.
  TraceGeneratorConfig trace_config;
  trace_config.num_days = 45;
  const Trace trace = GenerateTrace(trace_config);

  const auto recurrence = maxson::workload::SummarizeRecurrence(trace);
  const auto popularity = maxson::workload::PathQueryCounts(trace);
  const auto power = maxson::workload::SummarizePowerLaw(popularity, 0.27);
  std::printf("trace: %zu queries over %d days, %zu distinct JSONPaths\n",
              trace.queries.size(), trace.num_days, popularity.size());
  std::printf("  recurring queries:        %.0f%% (paper: 82%%)\n",
              recurrence.recurring_fraction * 100);
  std::printf("  daily / weekly recurring: %.0f%% / %.0f%% "
              "(paper: 71%% / 17%%)\n",
              recurrence.daily_fraction * 100,
              recurrence.weekly_fraction * 100);
  std::printf("  top 27%% paths carry:      %.0f%% of traffic (paper: 89%%)\n",
              power.traffic_share * 100);
  std::printf("  mean queries per path:    %.1f (paper: ~14)\n",
              power.mean_queries_per_path);
  std::printf("  duplicate parse traffic:  %.0f%% (paper: >89%%)\n\n",
              maxson::workload::DuplicateParseTrafficShare(trace) * 100);

  // 2. Feed the collector and train the LSTM+CRF predictor on history.
  JsonPathCollector collector;
  collector.RecordTrace(trace);

  PredictorConfig predictor_config;
  predictor_config.model = PredictorModel::kLstmCrf;
  predictor_config.window_days = 7;
  predictor_config.epochs = 10;
  JsonPathPredictor predictor(predictor_config);

  const int train_first = 10;
  const int train_last = 34;
  std::printf("training LSTM+CRF on target days %d..%d...\n", train_first,
              train_last);
  auto samples = predictor.BuildDataset(collector, train_first, train_last);
  if (auto st = predictor.Train(samples); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Simulate the nightly cycle for the held-out days: predict tomorrow's
  //    MPJPs, compare against ground truth.
  std::printf("\n%-8s %10s %10s %10s %12s\n", "night", "precision", "recall",
              "F1", "MPJPs(true)");
  BinaryMetrics overall;
  for (int day = 36; day < 44; ++day) {
    const auto truth_vec = collector.PathsWithCountAtLeast(day, 2);
    const std::set<std::string> truth(truth_vec.begin(), truth_vec.end());
    BinaryMetrics night;
    for (const std::string& key : collector.Keys()) {
      const auto sample = predictor.BuildSample(collector, key, day);
      const int predicted = predictor.Predict(sample);
      const int actual = truth.count(key) != 0 ? 1 : 0;
      night.Add(predicted, actual);
      overall.Add(predicted, actual);
    }
    std::printf("day %-4d %10.3f %10.3f %10.3f %12zu\n", day,
                night.Precision(), night.Recall(), night.F1(), truth.size());
  }
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "overall", overall.Precision(),
              overall.Recall(), overall.F1());

  std::printf("\nA production deployment would now hand each night's "
              "predictions to the\nscoring function and JsonPathCacher "
              "(see examples/quickstart.cpp and\nexamples/sales_analytics.cpp"
              " for the caching half of the loop).\n");
  return 0;
}
