// XML scenario: the paper's future-work claim in practice — "Maxson's
// pre-caching technique can also be applied to other data formats, such as
// XML". Machine-state logs arrive as XML records; two monitoring queries
// extract the same XPaths daily. Maxson caches the XPath values exactly
// like JSONPaths and the queries stop paying XML parsing.
//
//   ./build/examples/xml_logs

#include <cstdio>
#include <filesystem>
#include <string>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

using maxson::catalog::Catalog;
using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::storage::CorcWriter;
using maxson::storage::CorcWriterOptions;
using maxson::storage::FileSystem;
using maxson::storage::Schema;
using maxson::storage::TypeKind;
using maxson::storage::Value;
using maxson::workload::JsonPathLocation;
using maxson::workload::QueryRecord;

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "maxson_xml_demo").string();
  std::filesystem::remove_all(root);

  // 1. A warehouse table of XML machine-state logs.
  Catalog catalog;
  const std::string dir = root + "/warehouse/ops/machine_logs";
  if (!FileSystem::MakeDirs(dir).ok()) return 1;
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("payload", TypeKind::kString);
  const int kRowsPerFile = 10000;
  for (int file = 0; file < 2; ++file) {
    CorcWriterOptions options;
    options.rows_per_group = 1000;
    CorcWriter writer(dir + "/" + FileSystem::PartFileName(file), schema,
                      options);
    if (!writer.Open().ok()) return 1;
    for (int i = 0; i < kRowsPerFile; ++i) {
      const int row = file * kRowsPerFile + i;
      const std::string xml =
          "<machine host=\"node" + std::to_string(row % 40) +
          "\"><cpu><load>" + std::to_string(row % 100) +
          "</load><temp>" + std::to_string(35 + row % 60) +
          "</temp></cpu><disk free=\"" + std::to_string(1000 - row % 900) +
          "\"/><status>" + (row % 17 == 0 ? "degraded" : "ok") +
          "</status></machine>";
      if (!writer.AppendRow({Value::Int64(row), Value::String(xml)}).ok()) {
        return 1;
      }
    }
    if (!writer.Close().ok()) return 1;
  }
  if (!catalog.CreateDatabase("ops").ok()) return 1;
  maxson::catalog::TableInfo info;
  info.database = "ops";
  info.name = "machine_logs";
  info.schema = schema;
  info.location = dir;
  if (!catalog.CreateTable(info).ok()) return 1;

  // 2. Maxson session; daily monitoring queries share three XPaths.
  MaxsonConfig config;
  config.cache_root = root + "/cache";
  config.engine.default_database = "ops";
  MaxsonSession session(&catalog, config);
  auto loc = [](const char* path) {
    JsonPathLocation l;
    l.database = "ops";
    l.table = "machine_logs";
    l.column = "payload";
    l.path = path;
    return l;
  };
  for (int day = 0; day < 14; ++day) {
    for (int rep = 0; rep < 3; ++rep) {
      QueryRecord q;
      q.date = day;
      q.paths = {loc("/machine/@host"), loc("/machine/cpu/load"),
                 loc("/machine/status")};
      session.RecordQuery(q);
    }
  }
  if (!session.TrainPredictor(8, 13).ok()) return 1;
  auto midnight = session.RunMidnightCycle(14);
  if (!midnight.ok()) {
    std::fprintf(stderr, "%s\n", midnight.status().ToString().c_str());
    return 1;
  }
  std::printf("cached %zu XPaths into the cache table\n",
              midnight->selected.size());

  // 3. The hot-machines report, with and without the cache.
  const std::string sql =
      "SELECT get_xml_object(payload, '/machine/@host') AS host, "
      "COUNT(*) AS degraded FROM ops.machine_logs "
      "WHERE get_xml_object(payload, '/machine/status') = 'degraded' "
      "GROUP BY get_xml_object(payload, '/machine/@host') "
      "ORDER BY degraded DESC LIMIT 5";
  auto cold = session.ExecuteWithoutCache(sql);
  auto warm = session.Execute(sql);
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("\n%-26s %12s %16s\n", "", "total (ms)", "XML records parsed");
  std::printf("%-26s %12.1f %16llu\n", "without cache",
              cold->metrics.TotalSeconds() * 1e3,
              static_cast<unsigned long long>(
                  cold->metrics.parse.records_parsed));
  std::printf("%-26s %12.1f %16llu\n", "Maxson (cached XPaths)",
              warm->metrics.TotalSeconds() * 1e3,
              static_cast<unsigned long long>(
                  warm->metrics.parse.records_parsed));
  std::printf("speedup: %.1fx\n\n", cold->metrics.TotalSeconds() /
                                        std::max(1e-9,
                                                 warm->metrics.TotalSeconds()));
  std::printf("most degraded hosts:\n");
  for (size_t r = 0; r < warm->batch.num_rows(); ++r) {
    std::printf("  %-8s %s\n",
                warm->batch.column(0).GetValue(r).ToString().c_str(),
                warm->batch.column(1).GetValue(r).ToString().c_str());
  }
  std::filesystem::remove_all(root);
  return 0;
}
