// Quickstart: the smallest end-to-end Maxson run.
//
// Builds a tiny JSON warehouse table, feeds Maxson a few days of query
// history, runs the nightly predict -> score -> cache cycle, and shows the
// same query executing with and without the JSONPath cache.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "workload/data_generator.h"

using maxson::catalog::Catalog;
using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::JsonPathLocation;
using maxson::workload::JsonTableSpec;
using maxson::workload::QueryRecord;

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "maxson_quickstart").string();

  // 1. Create a warehouse table whose `payload` column holds JSON strings
  //    (this is how JSON lands in Hive-style warehouses: as string columns).
  Catalog catalog;
  JsonTableSpec spec;
  spec.database = "mydb";
  spec.table = "sales";
  spec.num_properties = 12;
  spec.avg_json_bytes = 500;
  spec.rows = 20000;
  spec.rows_per_file = 5000;
  auto table = maxson::workload::GenerateJsonTable(spec, root + "/warehouse",
                                                   3, &catalog);
  if (!table.ok()) {
    std::fprintf(stderr, "table generation failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("generated mydb.sales: %llu rows, avg JSON %.0f bytes\n",
              static_cast<unsigned long long>(table->rows),
              table->avg_json_bytes);

  // 2. Start a Maxson session and replay two weeks of query history into
  //    the JSONPath collector. $.f1 and $.f2 are parsed by three queries
  //    every day -> they are Multiple-Parsed JSONPaths (MPJPs).
  MaxsonConfig config;
  config.cache_root = root + "/cache";
  config.cache_budget_bytes = 32ull << 20;
  config.engine.default_database = "mydb";
  MaxsonSession session(&catalog, config);

  auto loc = [](const char* path) {
    JsonPathLocation l;
    l.database = "mydb";
    l.table = "sales";
    l.column = "payload";
    l.path = path;
    return l;
  };
  for (int day = 0; day < 14; ++day) {
    for (int rep = 0; rep < 3; ++rep) {
      QueryRecord q;
      q.date = day;
      q.paths = {loc("$.f1"), loc("$.f2")};
      session.RecordQuery(q);
    }
  }

  // 3. Train the LSTM+CRF predictor and run the midnight cycle: predict
  //    tomorrow's MPJPs, score them (Eq. 1-3), cache within budget.
  if (auto st = session.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto report = session.RunMidnightCycle(14);
  if (!report.ok()) {
    std::fprintf(stderr, "midnight cycle failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("midnight cycle: predicted %zu MPJPs, cached %zu paths "
              "(%llu rows pre-parsed in %.2fs)\n",
              report->predicted_mpjps.size(), report->selected.size(),
              static_cast<unsigned long long>(report->caching.rows_parsed),
              report->caching.total_seconds);

  // 4. Run the same analytical query with and without the cache.
  const std::string sql =
      "SELECT get_json_object(payload, '$.f1') AS category, "
      "COUNT(*) AS cnt FROM mydb.sales GROUP BY "
      "get_json_object(payload, '$.f1') ORDER BY cnt DESC LIMIT 5";

  auto without = session.ExecuteWithoutCache(sql);
  auto with = session.Execute(sql);
  if (!without.ok() || !with.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("\n%-28s %12s %12s %12s\n", "", "total (ms)", "parse (ms)",
              "records parsed");
  std::printf("%-28s %12.1f %12.1f %12llu\n", "SparkSQL-style (no cache)",
              without->metrics.TotalSeconds() * 1e3,
              without->metrics.parse_seconds * 1e3,
              static_cast<unsigned long long>(
                  without->metrics.parse.records_parsed));
  std::printf("%-28s %12.1f %12.1f %12llu\n", "Maxson (cached JSONPaths)",
              with->metrics.TotalSeconds() * 1e3,
              with->metrics.parse_seconds * 1e3,
              static_cast<unsigned long long>(
                  with->metrics.parse.records_parsed));
  std::printf("\nspeedup: %.1fx\n", without->metrics.TotalSeconds() /
                                        std::max(1e-9, with->metrics.TotalSeconds()));

  std::printf("\ntop categories:\n");
  for (size_t r = 0; r < with->batch.num_rows(); ++r) {
    std::printf("  %-8s %s\n",
                with->batch.column(0).GetValue(r).ToString().c_str(),
                with->batch.column(1).GetValue(r).ToString().c_str());
  }

  std::filesystem::remove_all(root);
  return 0;
}
