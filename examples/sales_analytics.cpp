// Sales analytics scenario: the paper's motivating workload (Fig. 1).
//
// A mall's sale logs arrive daily as JSON; several analysts run different
// daily reports over the same logs (top turnover, top sale count, per-item
// rollups). The queries differ, but they parse the *same* JSONPaths —
// exactly the spatial correlation Maxson exploits. This example replays a
// multi-day schedule of such reports, lets Maxson learn and cache, and
// compares each report's latency with and without the cache.
//
//   ./build/examples/sales_analytics

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "workload/data_generator.h"

using maxson::catalog::Catalog;
using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::JsonPathLocation;
using maxson::workload::JsonTableSpec;
using maxson::workload::QueryRecord;

namespace {

JsonPathLocation Loc(const char* path) {
  JsonPathLocation l;
  l.database = "mall";
  l.table = "sale_logs";
  l.column = "payload";
  l.path = path;
  return l;
}

struct Report {
  const char* name;
  std::string sql;
  std::vector<JsonPathLocation> paths;
};

}  // namespace

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "maxson_sales_demo").string();

  // Sale logs: item_id ($.f0), category ($.f1), turnover ($.f2), plus misc
  // attributes — 25k rows of ~600-byte JSON.
  Catalog catalog;
  JsonTableSpec spec;
  spec.database = "mall";
  spec.table = "sale_logs";
  spec.num_properties = 15;
  spec.avg_json_bytes = 600;
  spec.rows = 25000;
  spec.rows_per_file = 5000;
  auto table =
      maxson::workload::GenerateJsonTable(spec, root + "/warehouse", 3, &catalog);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // Three analysts' daily reports sharing JSONPaths (item id, category,
  // turnover appear in all three).
  const std::vector<Report> reports = {
      {"top_turnover_items",
       "SELECT get_json_object(payload, '$.f0') AS item_id, "
       "get_json_object(payload, '$.f1') AS category, "
       "get_json_object(payload, '$.f2') AS turnover FROM mall.sale_logs "
       "ORDER BY to_int(get_json_object(payload, '$.f2')) DESC LIMIT 10",
       {Loc("$.f0"), Loc("$.f1"), Loc("$.f2")}},
      {"category_rollup",
       "SELECT get_json_object(payload, '$.f1') AS category, COUNT(*) AS n, "
       "sum(to_int(get_json_object(payload, '$.f2'))) AS turnover "
       "FROM mall.sale_logs GROUP BY get_json_object(payload, '$.f1') "
       "ORDER BY turnover DESC",
       {Loc("$.f1"), Loc("$.f2")}},
      {"item_activity",
       "SELECT get_json_object(payload, '$.f0') AS item_id, COUNT(*) AS n "
       "FROM mall.sale_logs WHERE get_json_object(payload, '$.f1') = 'cat3' "
       "GROUP BY get_json_object(payload, '$.f0') ORDER BY n DESC LIMIT 10",
       {Loc("$.f0"), Loc("$.f1")}},
  };

  MaxsonConfig config;
  config.cache_root = root + "/cache";
  config.cache_budget_bytes = 64ull << 20;
  config.engine.default_database = "mall";
  MaxsonSession session(&catalog, config);

  // Two weeks of history: every report runs daily (plus a weekly audit
  // touching a rarely-used path, which should NOT be cached).
  for (int day = 0; day < 14; ++day) {
    for (const Report& r : reports) {
      QueryRecord q;
      q.date = day;
      q.paths = r.paths;
      session.RecordQuery(q);
    }
    if (day % 7 == 6) {
      QueryRecord audit;
      audit.date = day;
      audit.paths = {Loc("$.f9")};
      session.RecordQuery(audit);
    }
  }

  if (auto st = session.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto midnight = session.RunMidnightCycle(14);
  if (!midnight.ok()) {
    std::fprintf(stderr, "%s\n", midnight.status().ToString().c_str());
    return 1;
  }
  std::printf("cached %zu JSONPaths at midnight:\n",
              midnight->selected.size());
  for (const auto& s : midnight->selected) {
    std::printf("  %-40s score=%.3g  A=%.3g  R=%.2f  O=%llu\n",
                s.candidate.location.Key().c_str(), s.score,
                s.acceleration_per_byte, s.relevance,
                static_cast<unsigned long long>(s.occurrences));
  }

  std::printf("\n%-22s %14s %14s %9s\n", "report", "no cache (ms)",
              "maxson (ms)", "speedup");
  for (const Report& r : reports) {
    auto cold = session.ExecuteWithoutCache(r.sql);
    auto warm = session.Execute(r.sql);
    if (!cold.ok() || !warm.ok()) {
      std::fprintf(stderr, "report %s failed\n", r.name);
      return 1;
    }
    std::printf("%-22s %14.1f %14.1f %8.1fx\n", r.name,
                cold->metrics.TotalSeconds() * 1e3,
                warm->metrics.TotalSeconds() * 1e3,
                cold->metrics.TotalSeconds() /
                    std::max(1e-9, warm->metrics.TotalSeconds()));
  }

  // Day 15: fresh data arrives (table touched). Maxson notices the cache is
  // stale, falls back to raw parsing, and the next midnight re-populates.
  std::printf("\nnew data loaded -> cache invalidated:\n");
  (void)catalog.TouchTable("mall", "sale_logs", 15);
  auto stale = session.Execute(reports[0].sql);
  if (stale.ok()) {
    std::printf("  after update: parsed %llu records (cache bypassed)\n",
                static_cast<unsigned long long>(
                    stale->metrics.parse.records_parsed));
  }
  auto repopulated = session.RunMidnightCycle(15);
  if (repopulated.ok()) {
    auto fresh = session.Execute(reports[0].sql);
    if (fresh.ok()) {
      std::printf("  after next midnight: parsed %llu records (cache hit)\n",
                  static_cast<unsigned long long>(
                      fresh->metrics.parse.records_parsed));
    }
  }

  std::filesystem::remove_all(root);
  return 0;
}
