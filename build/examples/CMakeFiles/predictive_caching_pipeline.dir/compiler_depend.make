# Empty compiler generated dependencies file for predictive_caching_pipeline.
# This may be replaced when dependencies are built.
