file(REMOVE_RECURSE
  "CMakeFiles/predictive_caching_pipeline.dir/predictive_caching_pipeline.cpp.o"
  "CMakeFiles/predictive_caching_pipeline.dir/predictive_caching_pipeline.cpp.o.d"
  "predictive_caching_pipeline"
  "predictive_caching_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_caching_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
