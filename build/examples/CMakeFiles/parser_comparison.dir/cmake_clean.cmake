file(REMOVE_RECURSE
  "CMakeFiles/parser_comparison.dir/parser_comparison.cpp.o"
  "CMakeFiles/parser_comparison.dir/parser_comparison.cpp.o.d"
  "parser_comparison"
  "parser_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
