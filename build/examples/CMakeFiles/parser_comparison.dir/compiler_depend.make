# Empty compiler generated dependencies file for parser_comparison.
# This may be replaced when dependencies are built.
