# Empty compiler generated dependencies file for xml_logs.
# This may be replaced when dependencies are built.
