file(REMOVE_RECURSE
  "CMakeFiles/xml_logs.dir/xml_logs.cpp.o"
  "CMakeFiles/xml_logs.dir/xml_logs.cpp.o.d"
  "xml_logs"
  "xml_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
