file(REMOVE_RECURSE
  "CMakeFiles/maxson_ml.dir/crf.cc.o"
  "CMakeFiles/maxson_ml.dir/crf.cc.o.d"
  "CMakeFiles/maxson_ml.dir/linear_models.cc.o"
  "CMakeFiles/maxson_ml.dir/linear_models.cc.o.d"
  "CMakeFiles/maxson_ml.dir/lstm.cc.o"
  "CMakeFiles/maxson_ml.dir/lstm.cc.o.d"
  "CMakeFiles/maxson_ml.dir/lstm_crf.cc.o"
  "CMakeFiles/maxson_ml.dir/lstm_crf.cc.o.d"
  "CMakeFiles/maxson_ml.dir/matrix.cc.o"
  "CMakeFiles/maxson_ml.dir/matrix.cc.o.d"
  "CMakeFiles/maxson_ml.dir/mlp.cc.o"
  "CMakeFiles/maxson_ml.dir/mlp.cc.o.d"
  "CMakeFiles/maxson_ml.dir/serialize.cc.o"
  "CMakeFiles/maxson_ml.dir/serialize.cc.o.d"
  "libmaxson_ml.a"
  "libmaxson_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
