
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/crf.cc" "src/ml/CMakeFiles/maxson_ml.dir/crf.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/crf.cc.o.d"
  "/root/repo/src/ml/linear_models.cc" "src/ml/CMakeFiles/maxson_ml.dir/linear_models.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/linear_models.cc.o.d"
  "/root/repo/src/ml/lstm.cc" "src/ml/CMakeFiles/maxson_ml.dir/lstm.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/lstm.cc.o.d"
  "/root/repo/src/ml/lstm_crf.cc" "src/ml/CMakeFiles/maxson_ml.dir/lstm_crf.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/lstm_crf.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/maxson_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/maxson_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/maxson_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/maxson_ml.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maxson_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/maxson_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
