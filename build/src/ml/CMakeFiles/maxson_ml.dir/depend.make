# Empty dependencies file for maxson_ml.
# This may be replaced when dependencies are built.
