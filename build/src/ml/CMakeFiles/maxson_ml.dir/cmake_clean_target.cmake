file(REMOVE_RECURSE
  "libmaxson_ml.a"
)
