
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/maxson_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/maxson_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/maxson_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/maxson_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/maxson_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/maxson_engine.dir/planner.cc.o.d"
  "/root/repo/src/engine/sql_lexer.cc" "src/engine/CMakeFiles/maxson_engine.dir/sql_lexer.cc.o" "gcc" "src/engine/CMakeFiles/maxson_engine.dir/sql_lexer.cc.o.d"
  "/root/repo/src/engine/sql_parser.cc" "src/engine/CMakeFiles/maxson_engine.dir/sql_parser.cc.o" "gcc" "src/engine/CMakeFiles/maxson_engine.dir/sql_parser.cc.o.d"
  "/root/repo/src/engine/table_scan.cc" "src/engine/CMakeFiles/maxson_engine.dir/table_scan.cc.o" "gcc" "src/engine/CMakeFiles/maxson_engine.dir/table_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maxson_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/maxson_json.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/maxson_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/maxson_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/maxson_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
