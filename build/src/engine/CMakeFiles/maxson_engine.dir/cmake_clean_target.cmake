file(REMOVE_RECURSE
  "libmaxson_engine.a"
)
