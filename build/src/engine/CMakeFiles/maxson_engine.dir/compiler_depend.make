# Empty compiler generated dependencies file for maxson_engine.
# This may be replaced when dependencies are built.
