file(REMOVE_RECURSE
  "CMakeFiles/maxson_engine.dir/engine.cc.o"
  "CMakeFiles/maxson_engine.dir/engine.cc.o.d"
  "CMakeFiles/maxson_engine.dir/expr.cc.o"
  "CMakeFiles/maxson_engine.dir/expr.cc.o.d"
  "CMakeFiles/maxson_engine.dir/planner.cc.o"
  "CMakeFiles/maxson_engine.dir/planner.cc.o.d"
  "CMakeFiles/maxson_engine.dir/sql_lexer.cc.o"
  "CMakeFiles/maxson_engine.dir/sql_lexer.cc.o.d"
  "CMakeFiles/maxson_engine.dir/sql_parser.cc.o"
  "CMakeFiles/maxson_engine.dir/sql_parser.cc.o.d"
  "CMakeFiles/maxson_engine.dir/table_scan.cc.o"
  "CMakeFiles/maxson_engine.dir/table_scan.cc.o.d"
  "libmaxson_engine.a"
  "libmaxson_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
