
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/column_vector.cc" "src/storage/CMakeFiles/maxson_storage.dir/column_vector.cc.o" "gcc" "src/storage/CMakeFiles/maxson_storage.dir/column_vector.cc.o.d"
  "/root/repo/src/storage/corc_reader.cc" "src/storage/CMakeFiles/maxson_storage.dir/corc_reader.cc.o" "gcc" "src/storage/CMakeFiles/maxson_storage.dir/corc_reader.cc.o.d"
  "/root/repo/src/storage/corc_writer.cc" "src/storage/CMakeFiles/maxson_storage.dir/corc_writer.cc.o" "gcc" "src/storage/CMakeFiles/maxson_storage.dir/corc_writer.cc.o.d"
  "/root/repo/src/storage/file_system.cc" "src/storage/CMakeFiles/maxson_storage.dir/file_system.cc.o" "gcc" "src/storage/CMakeFiles/maxson_storage.dir/file_system.cc.o.d"
  "/root/repo/src/storage/sarg.cc" "src/storage/CMakeFiles/maxson_storage.dir/sarg.cc.o" "gcc" "src/storage/CMakeFiles/maxson_storage.dir/sarg.cc.o.d"
  "/root/repo/src/storage/types.cc" "src/storage/CMakeFiles/maxson_storage.dir/types.cc.o" "gcc" "src/storage/CMakeFiles/maxson_storage.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maxson_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/maxson_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
