# Empty compiler generated dependencies file for maxson_storage.
# This may be replaced when dependencies are built.
