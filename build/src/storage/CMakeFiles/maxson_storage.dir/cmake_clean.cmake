file(REMOVE_RECURSE
  "CMakeFiles/maxson_storage.dir/column_vector.cc.o"
  "CMakeFiles/maxson_storage.dir/column_vector.cc.o.d"
  "CMakeFiles/maxson_storage.dir/corc_reader.cc.o"
  "CMakeFiles/maxson_storage.dir/corc_reader.cc.o.d"
  "CMakeFiles/maxson_storage.dir/corc_writer.cc.o"
  "CMakeFiles/maxson_storage.dir/corc_writer.cc.o.d"
  "CMakeFiles/maxson_storage.dir/file_system.cc.o"
  "CMakeFiles/maxson_storage.dir/file_system.cc.o.d"
  "CMakeFiles/maxson_storage.dir/sarg.cc.o"
  "CMakeFiles/maxson_storage.dir/sarg.cc.o.d"
  "CMakeFiles/maxson_storage.dir/types.cc.o"
  "CMakeFiles/maxson_storage.dir/types.cc.o.d"
  "libmaxson_storage.a"
  "libmaxson_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
