file(REMOVE_RECURSE
  "libmaxson_storage.a"
)
