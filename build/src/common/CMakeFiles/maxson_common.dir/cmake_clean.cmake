file(REMOVE_RECURSE
  "CMakeFiles/maxson_common.dir/logging.cc.o"
  "CMakeFiles/maxson_common.dir/logging.cc.o.d"
  "CMakeFiles/maxson_common.dir/random.cc.o"
  "CMakeFiles/maxson_common.dir/random.cc.o.d"
  "CMakeFiles/maxson_common.dir/status.cc.o"
  "CMakeFiles/maxson_common.dir/status.cc.o.d"
  "CMakeFiles/maxson_common.dir/string_util.cc.o"
  "CMakeFiles/maxson_common.dir/string_util.cc.o.d"
  "CMakeFiles/maxson_common.dir/time_util.cc.o"
  "CMakeFiles/maxson_common.dir/time_util.cc.o.d"
  "libmaxson_common.a"
  "libmaxson_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
