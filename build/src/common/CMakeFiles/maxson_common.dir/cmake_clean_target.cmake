file(REMOVE_RECURSE
  "libmaxson_common.a"
)
