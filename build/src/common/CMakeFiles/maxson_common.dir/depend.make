# Empty dependencies file for maxson_common.
# This may be replaced when dependencies are built.
