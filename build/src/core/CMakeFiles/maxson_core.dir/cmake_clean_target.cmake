file(REMOVE_RECURSE
  "libmaxson_core.a"
)
