
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_registry.cc" "src/core/CMakeFiles/maxson_core.dir/cache_registry.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/cache_registry.cc.o.d"
  "/root/repo/src/core/cacher.cc" "src/core/CMakeFiles/maxson_core.dir/cacher.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/cacher.cc.o.d"
  "/root/repo/src/core/collector.cc" "src/core/CMakeFiles/maxson_core.dir/collector.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/collector.cc.o.d"
  "/root/repo/src/core/lru_cache.cc" "src/core/CMakeFiles/maxson_core.dir/lru_cache.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/lru_cache.cc.o.d"
  "/root/repo/src/core/maxson.cc" "src/core/CMakeFiles/maxson_core.dir/maxson.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/maxson.cc.o.d"
  "/root/repo/src/core/maxson_parser.cc" "src/core/CMakeFiles/maxson_core.dir/maxson_parser.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/maxson_parser.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/maxson_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/scoring.cc" "src/core/CMakeFiles/maxson_core.dir/scoring.cc.o" "gcc" "src/core/CMakeFiles/maxson_core.dir/scoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maxson_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/maxson_json.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/maxson_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/maxson_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/maxson_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/maxson_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/maxson_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/maxson_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
