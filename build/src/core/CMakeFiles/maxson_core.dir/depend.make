# Empty dependencies file for maxson_core.
# This may be replaced when dependencies are built.
