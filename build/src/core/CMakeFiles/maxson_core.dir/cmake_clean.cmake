file(REMOVE_RECURSE
  "CMakeFiles/maxson_core.dir/cache_registry.cc.o"
  "CMakeFiles/maxson_core.dir/cache_registry.cc.o.d"
  "CMakeFiles/maxson_core.dir/cacher.cc.o"
  "CMakeFiles/maxson_core.dir/cacher.cc.o.d"
  "CMakeFiles/maxson_core.dir/collector.cc.o"
  "CMakeFiles/maxson_core.dir/collector.cc.o.d"
  "CMakeFiles/maxson_core.dir/lru_cache.cc.o"
  "CMakeFiles/maxson_core.dir/lru_cache.cc.o.d"
  "CMakeFiles/maxson_core.dir/maxson.cc.o"
  "CMakeFiles/maxson_core.dir/maxson.cc.o.d"
  "CMakeFiles/maxson_core.dir/maxson_parser.cc.o"
  "CMakeFiles/maxson_core.dir/maxson_parser.cc.o.d"
  "CMakeFiles/maxson_core.dir/predictor.cc.o"
  "CMakeFiles/maxson_core.dir/predictor.cc.o.d"
  "CMakeFiles/maxson_core.dir/scoring.cc.o"
  "CMakeFiles/maxson_core.dir/scoring.cc.o.d"
  "libmaxson_core.a"
  "libmaxson_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
