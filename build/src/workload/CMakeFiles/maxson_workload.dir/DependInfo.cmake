
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/data_generator.cc" "src/workload/CMakeFiles/maxson_workload.dir/data_generator.cc.o" "gcc" "src/workload/CMakeFiles/maxson_workload.dir/data_generator.cc.o.d"
  "/root/repo/src/workload/query_templates.cc" "src/workload/CMakeFiles/maxson_workload.dir/query_templates.cc.o" "gcc" "src/workload/CMakeFiles/maxson_workload.dir/query_templates.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/maxson_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/maxson_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_generator.cc" "src/workload/CMakeFiles/maxson_workload.dir/trace_generator.cc.o" "gcc" "src/workload/CMakeFiles/maxson_workload.dir/trace_generator.cc.o.d"
  "/root/repo/src/workload/workload_stats.cc" "src/workload/CMakeFiles/maxson_workload.dir/workload_stats.cc.o" "gcc" "src/workload/CMakeFiles/maxson_workload.dir/workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maxson_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/maxson_json.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/maxson_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/maxson_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
