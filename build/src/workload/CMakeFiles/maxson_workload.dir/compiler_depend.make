# Empty compiler generated dependencies file for maxson_workload.
# This may be replaced when dependencies are built.
