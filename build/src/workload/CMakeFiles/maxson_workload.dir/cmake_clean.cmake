file(REMOVE_RECURSE
  "CMakeFiles/maxson_workload.dir/data_generator.cc.o"
  "CMakeFiles/maxson_workload.dir/data_generator.cc.o.d"
  "CMakeFiles/maxson_workload.dir/query_templates.cc.o"
  "CMakeFiles/maxson_workload.dir/query_templates.cc.o.d"
  "CMakeFiles/maxson_workload.dir/trace.cc.o"
  "CMakeFiles/maxson_workload.dir/trace.cc.o.d"
  "CMakeFiles/maxson_workload.dir/trace_generator.cc.o"
  "CMakeFiles/maxson_workload.dir/trace_generator.cc.o.d"
  "CMakeFiles/maxson_workload.dir/workload_stats.cc.o"
  "CMakeFiles/maxson_workload.dir/workload_stats.cc.o.d"
  "libmaxson_workload.a"
  "libmaxson_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
