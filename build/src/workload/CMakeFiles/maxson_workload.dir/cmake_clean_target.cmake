file(REMOVE_RECURSE
  "libmaxson_workload.a"
)
