file(REMOVE_RECURSE
  "CMakeFiles/maxson_catalog.dir/catalog.cc.o"
  "CMakeFiles/maxson_catalog.dir/catalog.cc.o.d"
  "libmaxson_catalog.a"
  "libmaxson_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
