# Empty dependencies file for maxson_catalog.
# This may be replaced when dependencies are built.
