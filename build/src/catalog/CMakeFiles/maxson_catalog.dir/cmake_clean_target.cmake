file(REMOVE_RECURSE
  "libmaxson_catalog.a"
)
