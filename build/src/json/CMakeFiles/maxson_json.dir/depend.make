# Empty dependencies file for maxson_json.
# This may be replaced when dependencies are built.
