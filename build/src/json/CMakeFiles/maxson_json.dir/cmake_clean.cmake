file(REMOVE_RECURSE
  "CMakeFiles/maxson_json.dir/dom_parser.cc.o"
  "CMakeFiles/maxson_json.dir/dom_parser.cc.o.d"
  "CMakeFiles/maxson_json.dir/json_path.cc.o"
  "CMakeFiles/maxson_json.dir/json_path.cc.o.d"
  "CMakeFiles/maxson_json.dir/json_value.cc.o"
  "CMakeFiles/maxson_json.dir/json_value.cc.o.d"
  "CMakeFiles/maxson_json.dir/json_writer.cc.o"
  "CMakeFiles/maxson_json.dir/json_writer.cc.o.d"
  "CMakeFiles/maxson_json.dir/mison_parser.cc.o"
  "CMakeFiles/maxson_json.dir/mison_parser.cc.o.d"
  "CMakeFiles/maxson_json.dir/raw_filter.cc.o"
  "CMakeFiles/maxson_json.dir/raw_filter.cc.o.d"
  "libmaxson_json.a"
  "libmaxson_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
