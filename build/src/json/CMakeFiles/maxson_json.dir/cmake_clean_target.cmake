file(REMOVE_RECURSE
  "libmaxson_json.a"
)
