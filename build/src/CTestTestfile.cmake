# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("xml")
subdirs("storage")
subdirs("catalog")
subdirs("engine")
subdirs("ml")
subdirs("workload")
subdirs("core")
