file(REMOVE_RECURSE
  "CMakeFiles/maxson_xml.dir/xml_parser.cc.o"
  "CMakeFiles/maxson_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/maxson_xml.dir/xml_path.cc.o"
  "CMakeFiles/maxson_xml.dir/xml_path.cc.o.d"
  "libmaxson_xml.a"
  "libmaxson_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
