# Empty compiler generated dependencies file for maxson_xml.
# This may be replaced when dependencies are built.
