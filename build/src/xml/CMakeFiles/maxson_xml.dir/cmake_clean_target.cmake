file(REMOVE_RECURSE
  "libmaxson_xml.a"
)
