
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maxson_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/maxson_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/maxson_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/maxson_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/maxson_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/maxson_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/maxson_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/maxson_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/maxson_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
