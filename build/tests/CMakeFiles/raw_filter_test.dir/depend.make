# Empty dependencies file for raw_filter_test.
# This may be replaced when dependencies are built.
