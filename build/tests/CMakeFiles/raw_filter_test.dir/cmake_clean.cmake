file(REMOVE_RECURSE
  "CMakeFiles/raw_filter_test.dir/raw_filter_test.cc.o"
  "CMakeFiles/raw_filter_test.dir/raw_filter_test.cc.o.d"
  "raw_filter_test"
  "raw_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
