# Empty dependencies file for ml_gradient_test.
# This may be replaced when dependencies are built.
