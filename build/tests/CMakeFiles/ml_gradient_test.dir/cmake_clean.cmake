file(REMOVE_RECURSE
  "CMakeFiles/ml_gradient_test.dir/ml_gradient_test.cc.o"
  "CMakeFiles/ml_gradient_test.dir/ml_gradient_test.cc.o.d"
  "ml_gradient_test"
  "ml_gradient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_gradient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
