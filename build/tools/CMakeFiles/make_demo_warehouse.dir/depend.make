# Empty dependencies file for make_demo_warehouse.
# This may be replaced when dependencies are built.
