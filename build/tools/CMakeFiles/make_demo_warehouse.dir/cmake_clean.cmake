file(REMOVE_RECURSE
  "CMakeFiles/make_demo_warehouse.dir/make_demo_warehouse.cpp.o"
  "CMakeFiles/make_demo_warehouse.dir/make_demo_warehouse.cpp.o.d"
  "make_demo_warehouse"
  "make_demo_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_demo_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
