# Empty dependencies file for maxson_shell.
# This may be replaced when dependencies are built.
