file(REMOVE_RECURSE
  "CMakeFiles/maxson_shell.dir/maxson_shell.cpp.o"
  "CMakeFiles/maxson_shell.dir/maxson_shell.cpp.o.d"
  "maxson_shell"
  "maxson_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxson_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
