file(REMOVE_RECURSE
  "CMakeFiles/fig14_online_lru.dir/fig14_online_lru.cc.o"
  "CMakeFiles/fig14_online_lru.dir/fig14_online_lru.cc.o.d"
  "fig14_online_lru"
  "fig14_online_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_online_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
