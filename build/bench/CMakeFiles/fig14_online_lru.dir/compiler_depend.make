# Empty compiler generated dependencies file for fig14_online_lru.
# This may be replaced when dependencies are built.
