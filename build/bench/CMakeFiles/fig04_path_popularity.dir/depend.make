# Empty dependencies file for fig04_path_popularity.
# This may be replaced when dependencies are built.
