file(REMOVE_RECURSE
  "CMakeFiles/fig04_path_popularity.dir/fig04_path_popularity.cc.o"
  "CMakeFiles/fig04_path_popularity.dir/fig04_path_popularity.cc.o.d"
  "fig04_path_popularity"
  "fig04_path_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_path_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
