# Empty compiler generated dependencies file for fig13_plan_time.
# This may be replaced when dependencies are built.
