file(REMOVE_RECURSE
  "CMakeFiles/fig03_parse_cost.dir/fig03_parse_cost.cc.o"
  "CMakeFiles/fig03_parse_cost.dir/fig03_parse_cost.cc.o.d"
  "fig03_parse_cost"
  "fig03_parse_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_parse_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
