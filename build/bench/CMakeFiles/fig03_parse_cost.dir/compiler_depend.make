# Empty compiler generated dependencies file for fig03_parse_cost.
# This may be replaced when dependencies are built.
