# Empty compiler generated dependencies file for micro_parsers.
# This may be replaced when dependencies are built.
