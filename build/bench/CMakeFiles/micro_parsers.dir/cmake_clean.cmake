file(REMOVE_RECURSE
  "CMakeFiles/micro_parsers.dir/micro_parsers.cc.o"
  "CMakeFiles/micro_parsers.dir/micro_parsers.cc.o.d"
  "micro_parsers"
  "micro_parsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
