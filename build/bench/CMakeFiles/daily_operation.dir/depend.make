# Empty dependencies file for daily_operation.
# This may be replaced when dependencies are built.
