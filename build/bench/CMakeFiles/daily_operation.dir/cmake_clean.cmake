file(REMOVE_RECURSE
  "CMakeFiles/daily_operation.dir/daily_operation.cc.o"
  "CMakeFiles/daily_operation.dir/daily_operation.cc.o.d"
  "daily_operation"
  "daily_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
