file(REMOVE_RECURSE
  "CMakeFiles/fig02_update_times.dir/fig02_update_times.cc.o"
  "CMakeFiles/fig02_update_times.dir/fig02_update_times.cc.o.d"
  "fig02_update_times"
  "fig02_update_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_update_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
