# Empty compiler generated dependencies file for fig02_update_times.
# This may be replaced when dependencies are built.
