# Empty dependencies file for fig15_parsers.
# This may be replaced when dependencies are built.
