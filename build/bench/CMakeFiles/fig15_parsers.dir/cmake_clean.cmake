file(REMOVE_RECURSE
  "CMakeFiles/fig15_parsers.dir/fig15_parsers.cc.o"
  "CMakeFiles/fig15_parsers.dir/fig15_parsers.cc.o.d"
  "fig15_parsers"
  "fig15_parsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
