# Empty dependencies file for ablation_raw_filter.
# This may be replaced when dependencies are built.
