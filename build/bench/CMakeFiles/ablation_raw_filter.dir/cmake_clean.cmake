file(REMOVE_RECURSE
  "CMakeFiles/ablation_raw_filter.dir/ablation_raw_filter.cc.o"
  "CMakeFiles/ablation_raw_filter.dir/ablation_raw_filter.cc.o.d"
  "ablation_raw_filter"
  "ablation_raw_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_raw_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
