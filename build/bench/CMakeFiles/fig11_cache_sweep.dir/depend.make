# Empty dependencies file for fig11_cache_sweep.
# This may be replaced when dependencies are built.
