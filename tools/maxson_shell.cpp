// maxson_shell: interactive driver for a Maxson warehouse.
//
// Usage:
//   maxson_shell --warehouse DIR [--cache DIR] [--registry FILE]
//                [--database NAME] [--mison]
//
// The warehouse directory is expected to contain a `catalog.json` (written
// by Catalog::Save) whose table locations point at CORC part-file
// directories. Lines starting with '.' are shell commands; anything else
// is executed as SQL.
//
//   .help                     command list
//   .tables                   list catalog tables
//   .train FIRST LAST         train the MPJP predictor on target days
//   .midnight DAY             run the predict -> score -> cache cycle
//   .cache                    show current cache registry entries
//   .stats                    session counter snapshot
//   .serve                    serving-layer snapshot (result cache, admission)
//   .metrics                  dump the metrics registry (Prometheus text)
//   .metrics on|off           toggle per-query metric printing
//   .trace FILE               write recorded spans as chrome-trace JSON
//   .quit
//
// Runtime knobs go through `set`, dispatched via one typed OptionRegistry
// (session knobs registered by core::RegisterSessionOptions route through
// UpdateConfig; serving knobs by serve::RegisterServeOptions):
//   set threads N | set trace on|off | set rawfilter on|off | set budget N
//   set ondemand on|off | set isa scalar|sse2|avx2|auto
//   set faultinject fail:N|torn:N|short:N|off
//   set sharedscan on|off | set morselsize ROWS
//   set corcencoding on|off
//   set resultcache on|off | set maxinflight N | set maxqueue N
//
// SQL is served through a MaxsonServer (tenant "shell"), so admission
// control and the semantic result cache apply; the result cache starts off
// so interactive timings measure real executions until opted in.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/options.h"
#include "common/string_util.h"
#include "core/maxson.h"
#include "serve/server.h"

namespace {

using maxson::catalog::Catalog;
using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;

struct ShellOptions {
  std::string warehouse;
  std::string cache = "/tmp/maxson_shell_cache";
  std::string registry;
  std::string database = "default";
  bool mison = false;
  size_t threads = 1;  // 0 = hardware concurrency
};

void PrintHelp() {
  std::printf(
      ".help                this message\n"
      ".tables              list catalog tables\n"
      ".train FIRST LAST    train the MPJP predictor on target days\n"
      ".midnight DAY        run the nightly predict/score/cache cycle\n"
      ".cache               show cache registry entries\n"
      ".stats               session counter snapshot\n"
      ".serve               serving-layer snapshot (result cache, admission)\n"
      ".metrics             dump the metrics registry (Prometheus text;\n"
      "                     *_seconds series are summed per-task CPU time,\n"
      "                     not wall time, under parallel execution)\n"
      ".metrics on|off      toggle per-query metrics\n"
      ".trace FILE          write recorded spans as chrome-trace JSON\n"
      ".threads N           resize the execution pool (0 = all cores)\n"
      "set threads N        same, SQL-flavored; also set trace on|off,\n"
      "                     set rawfilter on|off, set budget BYTES,\n"
      "                     set isa scalar|sse2|avx2|auto (SIMD level),\n"
      "                     set faultinject fail:N|torn:N|short:N|off\n"
      "set ondemand on|off  resolve selective path sets by cursoring the\n"
      "                     SIMD structural tape instead of a full DOM parse\n"
      "set sharedscan on|off  coalesce concurrent scans of one table into\n"
      "                     one parse pass per morsel\n"
      "set morselsize ROWS  target rows per shared-scan morsel (0 = one\n"
      "                     morsel per split)\n"
      "set corcencoding on|off  write cache files as CORC v3 with adaptive\n"
      "                     chunk encodings (dict/RLE/block; off = v2 plain)\n"
      "set resultcache on|off  serve repeated SELECTs from the semantic\n"
      "                     result cache (off by default)\n"
      "set maxinflight N    admission: concurrent queries allowed\n"
      "set maxqueue N       admission: bounded wait queue beyond that\n"
      ".quit                exit\n"
      "anything else        executed as SQL (SELECT, EXPLAIN [ANALYZE])\n");
}

void PrintBatch(const maxson::storage::RecordBatch& batch, size_t max_rows) {
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    std::printf("%s%-18s", c ? " " : "", batch.schema().field(c).name.c_str());
  }
  std::printf("\n");
  const size_t n = std::min(batch.num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::printf("%s%-18s", c ? " " : "",
                  batch.column(c).GetValue(r).ToString().c_str());
    }
    std::printf("\n");
  }
  if (batch.num_rows() > n) {
    std::printf("... (%zu rows total)\n", batch.num_rows());
  }
}

int Run(const ShellOptions& options) {
  auto catalog = Catalog::Load(options.warehouse + "/catalog.json");
  if (!catalog.ok()) {
    std::fprintf(stderr, "cannot load catalog: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  MaxsonConfig config;
  config.cache_root = options.cache;
  config.registry_path = options.registry;
  config.engine.default_database = options.database;
  config.engine.json_backend = options.mison
                                   ? maxson::engine::JsonBackend::kMison
                                   : maxson::engine::JsonBackend::kDom;
  config.engine.num_threads = options.threads;
  MaxsonSession session(&*catalog, config);
  bool show_metrics = true;

  // SQL is served through the serving layer so its admission and
  // result-cache knobs are exercisable interactively. The result cache
  // starts off: interactive timings should measure real executions unless
  // the user opts in with `set resultcache on`.
  maxson::serve::ServeOptions serve_options;
  serve_options.enable_result_cache = false;
  maxson::serve::MaxsonServer server(&session, &*catalog, serve_options);
  maxson::serve::ClientSession client = server.Connect("shell");
  maxson::serve::TenantLimits shell_limits;

  // Every `set` knob dispatches through one typed registry: session knobs
  // route through UpdateConfig, serving knobs through the server. Parsing
  // and validation live with the registration, not in this loop.
  maxson::OptionRegistry knobs;
  maxson::core::RegisterSessionOptions(&knobs, &session);
  maxson::serve::RegisterServeOptions(&knobs, &server, "shell",
                                      &shell_limits);

  std::printf("maxson shell — %zu database(s); type .help for commands\n",
              catalog->ListDatabases().size());
  std::string line;
  while (true) {
    std::printf("maxson> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed(maxson::StripWhitespace(line));
    if (trimmed.empty()) continue;

    if (trimmed[0] == '.') {
      std::istringstream args(trimmed);
      std::string cmd;
      args >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        PrintHelp();
      } else if (cmd == ".tables") {
        for (const std::string& db : catalog->ListDatabases()) {
          for (const auto* table : catalog->ListTables(db)) {
            std::printf("  %-30s %s\n", table->QualifiedName().c_str(),
                        table->location.c_str());
          }
        }
      } else if (cmd == ".train") {
        int first = 0;
        int last = 0;
        if (!(args >> first >> last)) {
          std::printf("usage: .train FIRST LAST\n");
          continue;
        }
        auto st = session.TrainPredictor(first, last);
        std::printf("%s\n", st.ok() ? "trained" : st.ToString().c_str());
      } else if (cmd == ".midnight") {
        int day = 0;
        if (!(args >> day)) {
          std::printf("usage: .midnight DAY\n");
          continue;
        }
        auto report = session.RunMidnightCycle(day);
        if (!report.ok()) {
          std::printf("%s\n", report.status().ToString().c_str());
          continue;
        }
        std::printf("predicted %zu MPJPs, cached %zu (%.2fs)\n",
                    report->predicted_mpjps.size(), report->selected.size(),
                    report->caching.total_seconds);
      } else if (cmd == ".cache") {
        for (const auto& entry : session.registry().Snapshot()) {
          std::printf("  %-50s %s t=%lld %s\n", entry.location.Key().c_str(),
                      entry.cache_field.c_str(),
                      static_cast<long long>(entry.cache_time),
                      entry.valid ? "valid" : "INVALID");
        }
        if (session.registry().size() == 0) std::printf("  (empty)\n");
      } else if (cmd == ".stats") {
        const maxson::core::SessionStats stats = session.stats();
        std::printf(
            "rewrite cache:  %llu hits, %llu misses, %llu invalidations\n"
            "registry:       %llu entries; %llu lookups, %llu hits\n"
            "pool:           %zu threads, %llu tasks submitted\n"
            "midnight:       %llu cycles\n"
            "tracing:        %s (%llu events)\n"
            "simd:           isa=%s\n"
            "faultinject:    %s\n"
            "ondemand:       %s\n"
            "sharedscan:     %s (morselsize %llu); %llu subscribers, "
            "%llu passes, %llu coalesced, %llu bytes saved\n"
            "corcencoding:   %s\n",
            static_cast<unsigned long long>(stats.rewrite_cache_hits),
            static_cast<unsigned long long>(stats.rewrite_cache_misses),
            static_cast<unsigned long long>(stats.rewrite_invalidations),
            static_cast<unsigned long long>(stats.registry_entries),
            static_cast<unsigned long long>(stats.registry_lookups),
            static_cast<unsigned long long>(stats.registry_lookup_hits),
            stats.num_threads,
            static_cast<unsigned long long>(stats.pool_tasks_submitted),
            static_cast<unsigned long long>(stats.midnight_cycles),
            stats.tracing_enabled ? "on" : "off",
            static_cast<unsigned long long>(stats.trace_events),
            stats.simd_isa.c_str(), stats.fault_injection.c_str(),
            stats.ondemand_enabled ? "on" : "off",
            stats.shared_scan_enabled ? "on" : "off",
            static_cast<unsigned long long>(stats.morsel_rows),
            static_cast<unsigned long long>(stats.sharedscan_subscribers),
            static_cast<unsigned long long>(stats.sharedscan_parse_passes),
            static_cast<unsigned long long>(stats.sharedscan_coalesced_parses),
            static_cast<unsigned long long>(stats.sharedscan_saved_bytes),
            stats.corc_encoding_enabled ? "on" : "off");
      } else if (cmd == ".serve") {
        const auto cache_stats = server.result_cache_stats();
        const auto admission = server.admission_snapshot("shell");
        std::printf(
            "result cache:   %s; %llu hits, %llu misses, %llu invalidations, "
            "%llu evictions; %zu entries (%llu bytes)\n"
            "admission:      %zu in flight, %zu queued; %llu admitted, "
            "%llu rejected (limits: %zu in flight, %zu queued)\n",
            server.result_cache_enabled() ? "on" : "off",
            static_cast<unsigned long long>(cache_stats.hits),
            static_cast<unsigned long long>(cache_stats.misses),
            static_cast<unsigned long long>(cache_stats.invalidations),
            static_cast<unsigned long long>(cache_stats.evictions),
            cache_stats.entries,
            static_cast<unsigned long long>(cache_stats.bytes),
            admission.in_flight, admission.queued,
            static_cast<unsigned long long>(admission.admitted),
            static_cast<unsigned long long>(admission.rejected),
            shell_limits.max_in_flight, shell_limits.max_queue);
      } else if (cmd == ".metrics") {
        std::string mode;
        if (args >> mode) {
          show_metrics = mode != "off";
        } else {
          // *_seconds series sum per-task CPU time across workers, so with
          // N threads they exceed wall time; say so to avoid misreading.
          std::printf("# *_seconds = summed per-task CPU time (exceeds wall "
                      "time when threads > 1)\n%s",
                      session.metrics().RenderPrometheus().c_str());
        }
      } else if (cmd == ".trace") {
        std::string path;
        if (!(args >> path)) {
          std::printf("error: .trace expects a file path "
                      "(enable spans with `set trace on`)\n");
          continue;
        }
        std::ofstream out(path);
        if (!out) {
          std::printf("error: cannot open %s\n", path.c_str());
          continue;
        }
        out << session.tracer().ToChromeTraceJson();
        std::printf("wrote %zu span(s) to %s\n", session.tracer().size(),
                    path.c_str());
      } else if (cmd == ".threads") {
        size_t n = 0;
        if (!(args >> n)) {
          std::printf("threads: %zu\n", session.pool().num_threads());
          continue;
        }
        maxson::core::SessionUpdate update;
        update.num_threads = n;
        if (auto st = session.UpdateConfig(update); !st.ok()) {
          std::printf("%s\n", st.ToString().c_str());
          continue;
        }
        std::printf("threads: %zu\n", session.pool().num_threads());
      } else {
        std::printf("unknown command %s; try .help\n", cmd.c_str());
      }
      continue;
    }

    // `set KNOB VALUE` — SQL-flavored runtime configuration, dispatched
    // through the typed registry (typed parse errors, setter validation).
    if (trimmed.rfind("set ", 0) == 0 || trimmed.rfind("SET ", 0) == 0) {
      std::istringstream args(trimmed.substr(4));
      std::string knob;
      std::string value;
      args >> knob >> value;
      for (char& ch : knob) ch = static_cast<char>(std::tolower(ch));
      if (const auto st = knobs.Set(knob, value); !st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        if (knobs.Find(knob) == nullptr) {
          std::printf("usage: %s\n", knobs.Usage().c_str());
        }
      } else if (knob == "threads") {
        std::printf("threads: %zu\n", session.pool().num_threads());
      } else if (knob == "isa") {
        // Echo the dispatched level, which may differ from the request
        // ("auto" resolves to the startup policy's pick).
        std::printf("isa: %s\n", session.stats().simd_isa.c_str());
      } else {
        std::printf("%s = %s\n", knob.c_str(), value.c_str());
      }
      continue;
    }

    auto served = client.Execute(trimmed);
    if (!served.ok()) {
      std::printf("error: %s\n", served.status().ToString().c_str());
      continue;
    }
    PrintBatch(served->result.batch, 40);
    if (served->result_cache_hit) {
      // No execution happened; the per-query metrics below would be zeros.
      std::printf("(result cache hit)\n");
      continue;
    }
    if (show_metrics) {
      // read/parse/compute sum per-task CPU time across workers, so with
      // N threads they exceed wall time; label them cpu to avoid misreading.
      const auto& m = served->result.metrics;
      std::printf("[plan %.2fms | read(cpu) %.1fms | parse(cpu) %.1fms "
                  "(%llu records) | compute(cpu) %.1fms | %llu bytes read | "
                  "%llu shared skips]\n",
                  m.plan_seconds * 1e3, m.read_seconds * 1e3,
                  m.parse_seconds * 1e3,
                  static_cast<unsigned long long>(m.parse.records_parsed),
                  m.compute_seconds * 1e3,
                  static_cast<unsigned long long>(m.read.bytes_read),
                  static_cast<unsigned long long>(m.shared_skips));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ShellOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--warehouse") {
      if (const char* v = next()) options.warehouse = v;
    } else if (arg == "--cache") {
      if (const char* v = next()) options.cache = v;
    } else if (arg == "--registry") {
      if (const char* v = next()) options.registry = v;
    } else if (arg == "--database") {
      if (const char* v = next()) options.database = v;
    } else if (arg == "--mison") {
      options.mison = true;
    } else if (arg == "--threads") {
      if (const char* v = next()) options.threads = std::strtoul(v, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: maxson_shell --warehouse DIR [--cache DIR] "
                  "[--registry FILE] [--database NAME] [--mison] "
                  "[--threads N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (options.warehouse.empty()) {
    std::fprintf(stderr,
                 "--warehouse is required (directory with catalog.json)\n");
    return 1;
  }
  return Run(options);
}
