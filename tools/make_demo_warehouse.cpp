// make_demo_warehouse: generates a small JSON warehouse with a saved
// catalog.json, ready to explore with maxson_shell.
//
//   ./build/tools/make_demo_warehouse /tmp/maxson_demo
//   ./build/tools/maxson_shell --warehouse /tmp/maxson_demo --database mydb

#include <cstdio>
#include <string>

#include "catalog/catalog.h"
#include "workload/data_generator.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_demo_warehouse OUTPUT_DIR\n");
    return 1;
  }
  const std::string dir = argv[1];
  maxson::catalog::Catalog catalog;

  struct Spec {
    const char* table;
    int properties;
    int avg_bytes;
    uint64_t rows;
  };
  const Spec specs[] = {
      {"sales", 15, 500, 30000},
      {"clicks", 25, 900, 20000},
      {"machines", 40, 1500, 10000},
  };
  for (const Spec& spec : specs) {
    maxson::workload::JsonTableSpec table;
    table.database = "mydb";
    table.table = spec.table;
    table.num_properties = spec.properties;
    table.avg_json_bytes = spec.avg_bytes;
    table.rows = spec.rows;
    table.rows_per_file = 10000;
    auto generated =
        maxson::workload::GenerateJsonTable(table, dir, 5, &catalog);
    if (!generated.ok()) {
      std::fprintf(stderr, "generating %s failed: %s\n", spec.table,
                   generated.status().ToString().c_str());
      return 1;
    }
    std::printf("mydb.%-10s %8llu rows  avg %4.0f B JSON  at %s\n",
                spec.table,
                static_cast<unsigned long long>(generated->rows),
                generated->avg_json_bytes, generated->location.c_str());
  }
  if (auto st = catalog.Save(dir + "/catalog.json"); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("catalog written to %s/catalog.json\n", dir.c_str());
  std::printf("try: maxson_shell --warehouse %s --database mydb\n",
              dir.c_str());
  return 0;
}
