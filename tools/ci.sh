#!/usr/bin/env bash
# CI entry point: Release build + full test suite, then a ThreadSanitizer
# build + full test suite (the parallel execution runtime must be clean
# under TSan; the metrics-determinism test additionally runs standalone so
# a racy counter fails loudly by name), then the thread-scaling and
# observability benches (emit BENCH_scaling.json / BENCH_observability.json;
# the latter fails CI if instrumentation overhead exceeds 5%).
#
# Usage: tools/ci.sh [--skip-tsan] [--skip-bench]
# Runs from anywhere; build trees land in build-ci/ and build-tsan/.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_tsan=1
run_bench=1
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) run_tsan=0 ;;
    --skip-bench) run_bench=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "=== Release build + tests ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

if [[ "$run_tsan" == 1 ]]; then
  echo "=== ThreadSanitizer build + tests ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMAXSON_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  # halt_on_error surfaces the first race as a test failure instead of a
  # warning buried in the log.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
  echo "=== Metrics determinism under TSan ==="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test \
    --gtest_filter='ObsQueryTest.CounterTotalsIdenticalAcrossThreadCounts'
fi

if [[ "$run_bench" == 1 ]]; then
  echo "=== Thread-scaling bench ==="
  ./build-ci/bench/scaling_threads
  echo "=== Observability overhead bench ==="
  ./build-ci/bench/observability_overhead
fi

echo "CI OK"
