#!/usr/bin/env bash
# CI entry point. Phases, in order (see DESIGN.md, "Correctness tooling"):
#
#   lint    tools/lint.py --self-test (every rule must fire on a seeded
#           violation), then the repo lint itself — including the cross-TU
#           lock-order analysis. Runs first: it is the cheapest phase and
#           most failures are mechanical. clang-tidy (config in
#           .clang-tidy) runs only when the binary exists. When clang++ is
#           on PATH, a -fsyntax-only pass with -Wthread-safety -Werror
#           checks the MAXSON_* annotations per TU (skipped with a message
#           otherwise; --skip-threadsafety silences the stage).
#   release Release build + full test suite (the tier-1 gate).
#   asan    AddressSanitizer + UndefinedBehaviorSanitizer build + full test
#           suite, with leak detection on and halt-on-error so the first
#           finding fails the run instead of scrolling by. The on-demand
#           parser's differential suite also re-runs standalone (native and
#           MAXSON_FORCE_ISA=scalar): its cursor arithmetic over SIMD-built
#           bitmaps is the code most likely to hide an off-by-one. The CORC
#           encoding suite (dict/RLE/block codecs + fuzzed malformed
#           streams) re-runs standalone the same two ways: decoders read
#           attacker-controlled bytes.
#   tsan    ThreadSanitizer build + full test suite (the parallel execution
#           runtime must be race-clean); the metrics-determinism test, the
#           CacheRegistry stress test, the serving-layer test, and the
#           shared-scan executor test also run standalone so a racy counter,
#           serving race, or scan-sharing race fails loudly by name.
#   crash   Crash-consistency suite: the durability tests (corruption
#           matrix, kill-at-every-fault-point midnight sweep) re-run
#           standalone under Release and ASan, plus one run with the
#           fault injector armed through MAXSON_FAULT_INJECT to prove the
#           env knob arms it outside of test code.
#   bench   Thread-scaling, observability, SIMD-kernel, and serving benches
#           (the observability bench fails CI if instrumentation overhead
#           exceeds 5%; the kernel bench fails CI if any ISA level diverges
#           from scalar; the serving bench fails CI below a 0.80 result-
#           cache hit rate / 5x repeat-p50 speedup or on any wrong result
#           under registry churn).
#
# The Release and ASan test suites run twice: once at the host's native
# SIMD dispatch level and once under MAXSON_FORCE_ISA=scalar, so both the
# vector kernels and the portable fallback stay green (the differential
# tests inside the suite cover sse2/avx2 explicitly per kernel).
#
# Usage: tools/ci.sh [--skip-asan] [--skip-tsan] [--skip-bench]
#                    [--skip-threadsafety]
# Runs from anywhere; build trees land in build-ci/, build-asan/, build-tsan/.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_asan=1
run_tsan=1
run_bench=1
run_threadsafety=1
for arg in "$@"; do
  case "$arg" in
    --skip-asan) run_asan=0 ;;
    --skip-tsan) run_tsan=0 ;;
    --skip-bench) run_bench=0 ;;
    --skip-threadsafety) run_threadsafety=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "=== Lint ==="
python3 tools/lint.py --self-test
python3 tools/lint.py
if command -v clang-tidy >/dev/null 2>&1 && [[ -f build-ci/compile_commands.json ]]; then
  echo "=== clang-tidy (src/) ==="
  find src -name '*.cc' -print0 \
    | xargs -0 clang-tidy -p build-ci --quiet
fi

# Clang thread-safety analysis: a syntax-only pass over every src/ TU with
# -Wthread-safety promoted to an error. The MAXSON_* annotation macros in
# common/thread_annotations.h expand to nothing elsewhere, so this is the
# one stage that checks them; the lock-order rule in tools/lint.py covers
# the cross-TU ordering this per-TU pass cannot see. Syntax-only keeps the
# stage cheap (no codegen) and independent of the configured generator.
if [[ "$run_threadsafety" == 1 ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    echo "=== Clang thread-safety analysis (src/) ==="
    while IFS= read -r tu; do
      extra=()
      [[ "$tu" == src/simd/* ]] && extra+=(-mavx2)
      clang++ -std=c++20 -fsyntax-only -Isrc \
        -Wthread-safety -Wthread-safety-beta -Werror \
        "${extra[@]}" "$tu"
    done < <(find src -name '*.cc' | sort)
  else
    echo "=== Clang thread-safety analysis: SKIPPED (no clang++ on PATH;" \
         "install clang or pass --skip-threadsafety to silence this) ==="
  fi
fi

echo "=== Release build + tests ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"
echo "=== Release tests, forced-scalar kernels ==="
MAXSON_FORCE_ISA=scalar ctest --test-dir build-ci --output-on-failure -j "$JOBS"

if [[ "$run_asan" == 1 ]]; then
  echo "=== ASan + UBSan build + tests ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMAXSON_SANITIZE=address,undefined
  cmake --build build-asan -j "$JOBS"
  # Leaks are errors too; halt_on_error surfaces the first finding as a
  # test failure instead of a warning buried in the log.
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
  echo "=== ASan + UBSan tests, forced-scalar kernels ==="
  MAXSON_FORCE_ISA=scalar \
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== ThreadSanitizer build + tests ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMAXSON_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
  echo "=== Metrics determinism under TSan ==="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test \
    --gtest_filter='ObsQueryTest.CounterTotalsIdenticalAcrossThreadCounts'
  # The serving-layer concurrency surfaces run standalone by name so a
  # race in the registry or the server fails loudly here, not as a flake.
  echo "=== CacheRegistry stress under TSan ==="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/registry_stress_test
  echo "=== Serving layer under TSan ==="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/serve_test
  echo "=== Shared-scan executor under TSan ==="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/shared_scan_test
fi

echo "=== Crash-consistency suite (durability tests) ==="
./build-ci/tests/durability_test
./build-ci/tests/storage_test \
  --gtest_filter='CorcWriterTest.*:CorcReaderTest.*:CorcEncodingTest.*:CorcPropertyTest.*:FaultInjectorTest.*'
if [[ "$run_asan" == 1 ]]; then
  echo "=== Crash-consistency suite under ASan ==="
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-asan/tests/durability_test
  # The on-demand parser cursors byte positions derived from SIMD bitmaps;
  # an off-by-one there is exactly the bug class ASan/UBSan catches, so its
  # differential suite runs standalone — at the native dispatch level and
  # once more forced to the scalar kernels, proving the tape is
  # byte-identical no matter which ClassifyJsonFull variant built it.
  echo "=== On-demand parser differential suite under ASan ==="
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-asan/tests/ondemand_parser_test
  echo "=== On-demand parser differential suite under ASan, forced-scalar ==="
  MAXSON_FORCE_ISA=scalar \
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-asan/tests/ondemand_parser_test
  # The CORC encoding layer (dict/RLE/block codecs plus their fuzzed
  # malformed-stream suite) runs standalone under ASan/UBSan: decoders
  # parse attacker-controlled bytes, so buffer overreads here are the
  # exact bug class the sanitizers exist for. Once at native dispatch,
  # once forced to the scalar RleSplat/MaxU32 kernels.
  echo "=== CORC encoding suite under ASan ==="
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-asan/tests/storage_test --gtest_filter='CorcEncodingTest.*'
  echo "=== CORC encoding suite under ASan, forced-scalar ==="
  MAXSON_FORCE_ISA=scalar \
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-asan/tests/storage_test --gtest_filter='CorcEncodingTest.*'
fi
# Prove the env knob arms the injector outside of test code, then exercise
# a short read end to end through the session knob path.
echo "=== Fault injection via MAXSON_FAULT_INJECT ==="
MAXSON_FAULT_INJECT=fail:9999 ./build-ci/tests/durability_test \
  --gtest_filter='DurabilityTest.EnvVarArmsInjectorAtFirstUse'
./build-ci/tests/durability_test \
  --gtest_filter='DurabilityTest.ShortReadSurfacesAsCorruptionAndFallsBack'

if [[ "$run_bench" == 1 ]]; then
  echo "=== Thread-scaling bench ==="
  ./build-ci/bench/scaling_threads
  echo "=== Observability overhead bench ==="
  ./build-ci/bench/observability_overhead
  echo "=== SIMD kernel bench ==="
  ./build-ci/bench/kernel_bench
  echo "=== Serving concurrency bench ==="
  # Fails CI when result-cache hit rate, repeat speedup, correctness under
  # registry churn, or typed-rejection accounting misses its threshold.
  ./build-ci/bench/serving_concurrency
fi

echo "CI OK"
