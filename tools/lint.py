#!/usr/bin/env python3
"""Project lint for the Maxson repository.

Encodes the project-specific invariants that generic tooling cannot know
(see DESIGN.md, "Correctness tooling"):

  thread-create        No raw std::thread / std::jthread construction or
                       std::async outside src/exec/ — all parallelism flows
                       through the shared ThreadPool so the deterministic
                       merge discipline holds. The serving layer (src/serve/)
                       is explicitly covered: it blocks on client threads and
                       the shared pool, never spawning its own. Using
                       std::thread::id (e.g. for trace attribution) is fine;
                       creating threads is not.
  wall-clock           No direct std::chrono clock reads (steady_clock /
                       system_clock / high_resolution_clock) or C time
                       syscalls outside src/common/time_util.h. Every
                       timing site shares one monotonic clock.
  counter-write        MetricsRegistry::GetCounter may be called only at
                       the publication sites that sit *after* the
                       deterministic merge (src/obs itself, engine.cc's
                       PublishMetrics, the rewriter, the midnight cycle).
                       Scan/operator code must accumulate into QueryMetrics
                       and let the merge publish.
  include-hygiene      foo.cc includes its own foo.h first; no "../"
                       includes; headers carry canonical
                       MAXSON_<PATH>_H_ guards.
  nodiscard-guard      Status, Result<T>, and the MetricsRegistry lookup
                       helpers keep their [[nodiscard]] attributes (the
                       -Werror build enforces call sites; this guards the
                       declarations themselves).
  simd-intrinsics      Vendor intrinsics headers (<immintrin.h>, <arm_neon.h>
                       and friends) and __builtin_cpu_supports appear only
                       under src/simd/ — everything else calls the dispatched
                       kernels so one layer owns ISA-specific code and the
                       byte-identical-across-levels contract stays auditable.
  ondemand-tape        json/ondemand_tape.h (the on-demand tier's structural
                       tape internals) may be included only from src/json/ —
                       every other layer consumes the tier through the
                       json/ondemand_parser.h API, so the tape layout can
                       change without rippling past its owning directory.
  exec-layering        src/exec/ is the scheduling layer *below* parsing and
                       execution: it must not include engine/json/xml/core/
                       serve/catalog/ml/workload/simd headers nor name the
                       parse/execute entry points (MisonParser, CorcReader,
                       RawFilter, ExecutePlan, ExecuteScan). Scan work
                       reaches the scheduler as a SharedScanPassFn callback
                       supplied by the layer above, keeping the dependency
                       arrow engine -> exec one-directional.
  mutex-annotation     No raw std::mutex / std::shared_mutex members in src/
                       outside common/thread_annotations.h — locks are the
                       annotated maxson::Mutex / maxson::SharedMutex so the
                       Clang thread-safety analysis sees them. Every such
                       lock member must be referenced by at least one
                       MAXSON_* annotation in its file (GUARDED_BY /
                       REQUIRES / EXCLUDES / ...), so an unannotated lock
                       cannot silently opt out of the analysis.
  lock-order           Cross-TU lock-acquisition analysis. Parses class
                       lock members, member/local variable types, MAXSON_
                       annotations, and MutexLock / WriterMutexLock /
                       SharedMutexLock acquisition sites into a lock graph
                       (with transitive propagation through method calls).
                       Every observed nesting edge must be declared in
                       LOCK_HIERARCHY below, and the combined declared +
                       observed graph must be acyclic. The analysis is
                       textual and intentionally conservative: it suppresses
                       lambda bodies (they may run outside the critical
                       section that created them) and skips acquisitions it
                       cannot attribute — clang -Wthread-safety remains the
                       precise per-TU check; this rule adds the cross-TU
                       ordering discipline clang cannot see.
  status-discard       A statement that calls a Status / Result<T>-returning
                       function and drops the value. Redundant with the
                       [[nodiscard]] -Werror build for compiled code, but it
                       also covers code behind #if blocks the local build
                       never compiles, and it makes the discipline visible
                       to reviewers without a compiler.
  metric-name          Every "maxson_*" metric string literal in src/ must
                       be declared in src/obs/metric_names.h — the single
                       metric-name registry. A typo'd name cannot silently
                       create a parallel series.
  trailing-whitespace  No trailing blanks (mechanical; --fix rewrites).
  final-newline        Files end with exactly one newline (mechanical;
                       --fix rewrites).

Exit status: 0 when clean, 1 when violations remain, 2 on usage errors.
`--fix` auto-repairs the mechanical categories, then reports whatever is
left. `--self-test` seeds one violation per rule in a temp tree and checks
each rule fires — run by tools/ci.sh so a silently broken rule fails CI.
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned for C++ sources, relative to the repo root.
CPP_DIRS = ("src", "tests", "bench", "tools", "examples")
CPP_EXTS = (".h", ".hpp", ".cc", ".cpp")

# counter-write: publication sites that run after the deterministic merge.
COUNTER_WRITE_ALLOWLIST = (
    "src/obs/",              # the registry implementation itself
    "src/engine/engine.cc",  # PublishMetrics + plan-validation failures
    "src/core/maxson.cc",    # midnight-cycle outcome counters
    "src/core/maxson_parser.cc",  # rewrite outcome counters
    "src/serve/",            # serving-layer counters (admission, result
                             # cache) publish outside any query's merge
    "src/exec/shared_scan.cc",  # cross-query scan-sharing counters have no
                                # per-query merge barrier to publish behind
)

# nodiscard-guard: (file, regex that must match somewhere in the file).
NODISCARD_REQUIRED = (
    ("src/common/status.h", r"class\s+\[\[nodiscard\]\]\s+Status\b"),
    ("src/common/result.h", r"class\s+\[\[nodiscard\]\]\s+Result\b"),
    ("src/obs/metrics_registry.h", r"\[\[nodiscard\]\]\s+Counter\*\s+GetCounter"),
    ("src/obs/metrics_registry.h", r"\[\[nodiscard\]\]\s+Gauge\*\s+GetGauge"),
    ("src/obs/metrics_registry.h",
     r"\[\[nodiscard\]\]\s+Histogram\*\s+GetHistogram"),
)

THREAD_CREATE_RE = re.compile(r"std::(?:thread\b(?!::)|jthread\b|async\b)")
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)::now"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")
COUNTER_WRITE_RE = re.compile(r"\bGetCounter\s*\(")
SIMD_INTRINSICS_RE = re.compile(
    r"#\s*include\s+<(?:[a-z0-9]*mmintrin\.h|x86intrin\.h|arm_neon\.h)>"
    r"|__builtin_cpu_supports\b")
ONDEMAND_TAPE_INCLUDE_RE = re.compile(
    r'#\s*include\s+"json/ondemand_tape\.h"')
EXEC_BANNED_INCLUDE_RE = re.compile(
    r'#\s*include\s+"(?:engine|json|xml|core|serve|catalog|ml|workload|simd)/')
EXEC_BANNED_IDENT_RE = re.compile(
    r"\b(?:MisonParser|CorcReader|RawFilter|ExecutePlan|ExecuteScan)\b")
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s+"\.\./')
INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')
GUARD_RE = re.compile(r"#\s*ifndef\s+(\S+)")
TRAILING_WS_RE = re.compile(r"[ \t]+$")

# ---------------------------------------------------------------------------
# Lock-order analysis (cross-TU)
# ---------------------------------------------------------------------------

# The declared lock hierarchy: every "outer lock held while inner lock is
# acquired" pair the codebase is allowed to create, as Class::member nodes.
# The lock-order rule fails on any observed nesting edge missing from this
# set and on any cycle in the combined declared + observed graph. Adding an
# edge here is a design decision: document the call path that needs it.
LOCK_HIERARCHY = {
    # The manager lock is the outer lock of the shared-scan layer. Today
    # Subscribe deliberately releases mutex_ before registering morsels
    # (so subscriptions to different tables never contend), but if manager
    # and scheduler locks are ever nested, this is the only legal order —
    # MorselScheduler must never call back into its owning manager.
    ("SharedScanManager::mutex_", "MorselScheduler::mutex_"),
    # MaxsonServer::EnableResultCache clears the result cache under
    # options_mutex_ so "disable" atomically implies "emptied".
    ("MaxsonServer::options_mutex_", "ResultCache::mutex_"),
    # MaxsonSession::CacheBindingSnapshot refreshes the binding cache from
    # CacheRegistry::Snapshot while holding binding_cache_mutex_, making
    # snapshot+version a single atomic read for the plan validator.
    ("MaxsonSession::binding_cache_mutex_", "CacheRegistry::mutex_"),
    # MetricsRegistry::RenderPrometheus reads Histogram::sum() for every
    # histogram series while holding the registry lock so one scrape is a
    # consistent snapshot of the series map. Histogram::Observe never
    # touches the registry lock, so the reverse order cannot occur.
    ("MetricsRegistry::mutex_", "Histogram::sum_mutex_"),
}

LOCK_TYPE_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:maxson::)?(Mutex|SharedMutex)\s+(\w+)\s*;")
RAW_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(?:recursive_|timed_|shared_)?mutex\s+\w+\s*;")
ANNOTATION_ARG_RE = re.compile(r"MAXSON_[A-Z_]+\(([^()]*)\)")
CLASS_DECL_RE = re.compile(r"^\s*(?:class|struct)\s+(\w+)\b")
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?([A-Za-z_][\w:]*(?:<[\w:,\s<>*]*>)?)"
    r"\s*[*&]?\s+(\w+)\s*(?:MAXSON_\w+\([^()]*\)\s*)?(?:;|=|\{)")
ACQUIRE_RE = re.compile(
    r"\b(?:MutexLock|WriterMutexLock|SharedMutexLock)\s+\w+\s*\(([^()]*)\)")
METHOD_SIG_RE = re.compile(r"\b(\w+)::(~?\w+)\s*\(")
INLINE_SIG_RE = re.compile(r"(?<![\w.>:])(~?\w+)\s*\(")
MEMBER_CALL_RE = re.compile(r"\b(\w+)(?:\.|->)(\w+)\s*\(")
LOCAL_REF_RE = re.compile(
    r"^\s*(?:const\s+)?([\w:]+(?:<[\w:,\s<>*]*>)?)\s*[&*]\s*(\w+)\s*=")
LAMBDA_OPEN_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:->\s*[\w:<>&*\s]+)?$")
REQUIRES_RE = re.compile(r"MAXSON_REQUIRES\(([^()]*)\)")

CPP_KEYWORDS = frozenset((
    "if", "while", "for", "switch", "return", "sizeof", "catch", "new",
    "delete", "do", "else", "case", "default", "throw", "static_assert",
    "alignof", "decltype", "noexcept", "operator",
))


def strip_block_comments_and_literals(lines):
    """Returns code-only lines: block/line comments removed, string and char
    literal *contents* blanked (quotes kept) so brace counting and token
    matching never see quoted text."""
    out = []
    in_block = False
    for raw in lines:
        line = raw.rstrip("\n")
        buf = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            if ch == "/" and line.startswith("//", i):
                break
            if ch == "/" and line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                buf.append(quote)
                i += 1
                while i < len(line):
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                buf.append(quote)
                i += 1
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


def _norm_type(type_str):
    """shared_ptr<core::Foo>* -> Foo (unwraps one smart-pointer layer)."""
    t = type_str.strip()
    m = re.match(r"(?:std::)?(?:shared_ptr|unique_ptr|optional)\s*<(.+)>$", t)
    if m:
        t = m.group(1).strip()
    t = t.rstrip("*& ")
    return t.split("::")[-1]


class LockModel:
    """What the lock-order pass learns about the tree."""

    def __init__(self):
        self.classes = set()
        self.lock_members = {}    # cls -> set(member name)
        self.member_types = {}    # (cls, member) -> normalized type name
        self.requires = {}        # (cls, method) -> [lock member names]
        self.direct = {}          # (cls, method) -> set(lock node str)
        self.calls = {}           # (cls, method) -> set((cls, method))
        self.nest_edges = []      # (holder, inner, rel, line) direct nesting
        self.call_sites = []      # (rel, line, held(list), callee(cls, meth))

    def is_lock(self, cls, member):
        return member in self.lock_members.get(cls, ())


def _scan_file_for_locks(model, rel, lines):
    """One pass over a src/ file: class/member decls, REQUIRES annotations,
    and lock acquisitions inside (inline or out-of-line) method bodies."""
    code_lines = strip_block_comments_and_literals(lines)
    depth = 0
    class_stack = []       # (name, body_depth)
    pending_class = None
    cur_fn = None          # (cls, method)
    fn_open_depth = 0
    pending_sig = None
    held = []              # (lock node, depth acquired at)
    lambda_depths = []     # brace depths of active lambda bodies
    ns_depths = []         # brace depths of namespace scopes (transparent)
    last_decl_method = None

    def cur_class():
        return class_stack[-1][0] if class_stack else None

    def resolve_lock(arg, cls):
        arg = arg.strip()
        if arg.endswith("()"):
            return arg  # lock factory function, e.g. SinkMutex()
        parts = re.split(r"->|\.", arg)
        if len(parts) == 1:
            if cls is not None and model.is_lock(cls, arg):
                return f"{cls}::{arg}"
            return None
        base, field = parts[0], parts[-1]
        base_cls = model.member_types.get((cls, base))
        if base_cls is not None and model.is_lock(base_cls, field):
            return f"{base_cls}::{field}"
        return None

    locals_map = {}

    for lineno, code in enumerate(code_lines, 1):
        m = CLASS_DECL_RE.match(code)
        if m and cur_fn is None and "{" not in code and code.rstrip().endswith(";"):
            m = None  # forward declaration
        if m and cur_fn is None:
            pending_class = m.group(1)
            model.classes.add(pending_class)

        # Class-scope declarations (members, REQUIRES on method decls).
        if class_stack and cur_fn is None:
            cls = cur_class()
            lm = LOCK_TYPE_RE.match(code)
            if lm:
                model.lock_members.setdefault(cls, set()).add(lm.group(2))
            else:
                mm = MEMBER_DECL_RE.match(code)
                if mm and mm.group(2) not in CPP_KEYWORDS:
                    model.member_types[(cls, mm.group(2))] = _norm_type(
                        mm.group(1))
            sig = INLINE_SIG_RE.search(code)
            if sig and not sig.group(1).startswith("MAXSON_") \
                    and sig.group(1) not in CPP_KEYWORDS:
                last_decl_method = sig.group(1)
            req = REQUIRES_RE.search(code)
            if req and last_decl_method is not None:
                model.requires.setdefault((cls, last_decl_method), set()).update(
                    a.strip() for a in req.group(1).split(","))

        # Definition signatures: out-of-line Cls::Method at namespace scope,
        # inline Method at class-body scope. Namespace braces are
        # transparent — they raise brace depth but not declaration scope.
        scope_depth = class_stack[-1][1] if class_stack else len(ns_depths)
        if cur_fn is None and depth == scope_depth:
            sig_matches = list(METHOD_SIG_RE.finditer(code))
            if sig_matches and not class_stack:
                pending_sig = sig_matches[-1].group(1), sig_matches[-1].group(2)
            elif class_stack:
                sig = INLINE_SIG_RE.search(code)
                if sig and not sig.group(1).startswith("MAXSON_") \
                        and sig.group(1) not in CPP_KEYWORDS \
                        and not ACQUIRE_RE.search(code[:sig.start()]):
                    pending_sig = (cur_class(), sig.group(1))
        if pending_sig is not None and cur_fn is None and ";" in code \
                and "{" not in code:
            pending_sig = None  # was a declaration, not a definition

        # Walk brace / acquisition / call events in position order.
        events = []
        for i, ch in enumerate(code):
            if ch in "{}":
                events.append((i, ch, None))
        in_lambda_now = bool(lambda_depths)
        if cur_fn is not None and not in_lambda_now:
            for am in ACQUIRE_RE.finditer(code):
                events.append((am.start(), "acq", am.group(1)))
            for cm in MEMBER_CALL_RE.finditer(code):
                events.append((cm.start(), "mcall",
                               (cm.group(1), cm.group(2))))
            for bm in INLINE_SIG_RE.finditer(code):
                name = bm.group(1)
                if name not in CPP_KEYWORDS and not name.startswith("MAXSON_"):
                    events.append((bm.start(), "bcall", name))
            lr = LOCAL_REF_RE.match(code)
            if lr:
                locals_map[lr.group(2)] = _norm_type(lr.group(1))
        events.sort(key=lambda e: e[0])

        fn_cls = cur_fn[0] if cur_fn else None
        fn_key = cur_fn
        for pos, kind, payload in events:
            if kind == "{":
                depth += 1
                if re.search(r"\bnamespace\s+[\w:]*\s*$", code[:pos]):
                    ns_depths.append(depth)
                elif LAMBDA_OPEN_RE.search(code[:pos]):
                    lambda_depths.append(depth)
                elif pending_class is not None:
                    class_stack.append((pending_class, depth))
                    pending_class = None
                elif pending_sig is not None and cur_fn is None:
                    cur_fn = pending_sig
                    fn_cls, fn_key = cur_fn[0], cur_fn
                    fn_open_depth = depth
                    pending_sig = None
                    locals_map = {}
                    model.direct.setdefault(fn_key, set())
                    model.calls.setdefault(fn_key, set())
                    for req_lock in model.requires.get(fn_key, ()):
                        node = resolve_lock(req_lock, fn_cls)
                        if node is not None:
                            held.append((node, depth - 1))
            elif kind == "}":
                depth -= 1
                held[:] = [(n, d) for n, d in held if d <= depth]
                while lambda_depths and lambda_depths[-1] > depth:
                    lambda_depths.pop()
                while ns_depths and ns_depths[-1] > depth:
                    ns_depths.pop()
                if cur_fn is not None and depth < fn_open_depth:
                    cur_fn = None
                    fn_cls = fn_key = None
                    held = []
                    locals_map = {}
                if class_stack and depth < class_stack[-1][1]:
                    class_stack.pop()
                    last_decl_method = None
            elif lambda_depths:
                continue  # suppress body of a lambda: it may run later
            elif kind == "acq" and cur_fn is not None:
                node = resolve_lock(payload, fn_cls)
                if node is None:
                    continue
                for holder, _ in held:
                    model.nest_edges.append((holder, node, rel, lineno))
                held.append((node, depth))
                model.direct[fn_key].add(node)
            elif kind == "mcall" and cur_fn is not None:
                recv, meth = payload
                recv_cls = model.member_types.get((fn_cls, recv))
                if recv_cls is None:
                    recv_cls = locals_map.get(recv)
                if recv_cls is None:
                    continue
                model.calls[fn_key].add((recv_cls, meth))
                if held:
                    model.call_sites.append(
                        (rel, lineno, [n for n, _ in held], (recv_cls, meth)))
            elif kind == "bcall" and cur_fn is not None:
                callee = (fn_cls, payload)
                model.calls[fn_key].add(callee)
                if held:
                    model.call_sites.append(
                        (rel, lineno, [n for n, _ in held], callee))


def check_lock_order(root, files, out):
    model = LockModel()
    src_files = [(rel, lines) for rel, lines in sorted(files.items())
                 if rel.startswith("src/")]
    # Declaration pass over the headers first: an inline method body may
    # precede the private section that declares the lock it takes, so body
    # attribution needs the full member map before it can resolve anything.
    for rel, lines in src_files:
        if rel.endswith(".h"):
            _scan_file_for_locks(model, rel, lines)
    model.direct = {}
    model.calls = {}
    model.nest_edges = []
    model.call_sites = []
    for rel, lines in src_files:
        _scan_file_for_locks(model, rel, lines)

    # Transitive closure: locks a method acquires, directly or via callees.
    closure = {fn: set(direct) for fn, direct in model.direct.items()}
    changed = True
    while changed:
        changed = False
        for fn, callees in model.calls.items():
            for callee in callees:
                extra = closure.get(callee, ())
                if extra and not closure.setdefault(fn, set()).issuperset(
                        extra):
                    closure[fn].update(extra)
                    changed = True

    edges = {}  # (holder, inner) -> (rel, line) of first observation
    for holder, inner, rel, lineno in model.nest_edges:
        edges.setdefault((holder, inner), (rel, lineno))
    for rel, lineno, held, callee in model.call_sites:
        for inner in closure.get(callee, ()):
            for holder in held:
                edges.setdefault((holder, inner), (rel, lineno))

    for (holder, inner), (rel, lineno) in sorted(edges.items()):
        if holder == inner:
            out.append(Violation(
                "lock-order", rel, lineno,
                f"acquires {inner} while already holding it — "
                "self-deadlock"))
        elif (holder, inner) not in LOCK_HIERARCHY:
            out.append(Violation(
                "lock-order", rel, lineno,
                f"undeclared nesting: {inner} acquired while holding "
                f"{holder} — declare the edge in tools/lint.py "
                "LOCK_HIERARCHY (with justification) or restructure to "
                "release the outer lock first"))

    # Cycle check over declared + observed edges.
    graph = {}
    for holder, inner in set(edges) | LOCK_HIERARCHY:
        graph.setdefault(holder, set()).add(inner)
    state = {}  # node -> 1 (on stack) / 2 (done)
    cycles = []

    def visit(node, path):
        state[node] = 1
        path.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 1:
                cycles.append(path[path.index(nxt):] + [nxt])
            elif nxt not in state:
                visit(nxt, path)
        path.pop()
        state[node] = 2

    for node in sorted(graph):
        if node not in state:
            visit(node, [])
    for cycle in cycles:
        first_edge = (cycle[0], cycle[1])
        rel, lineno = edges.get(first_edge, ("tools/lint.py", 0))
        out.append(Violation(
            "lock-order", rel, lineno,
            "lock-order cycle: " + " -> ".join(cycle)))


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, or 0 for whole-file findings
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_line_comment(line):
    """Removes a // comment (good enough: the banned tokens never appear in
    string literals in this codebase)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_cpp_files(root):
    for top in CPP_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def read_lines(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read().splitlines(keepends=True)


def check_thread_create(root, rel, lines, out):
    if not rel.startswith("src/") or rel.startswith("src/exec/"):
        return
    for i, line in enumerate(lines, 1):
        if THREAD_CREATE_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "thread-create", rel, i,
                "raw thread creation outside src/exec/ — use the shared "
                "exec::ThreadPool (TaskGroup / ParallelFor)"))


def check_wall_clock(root, rel, lines, out):
    if not rel.startswith("src/") or rel == "src/common/time_util.h":
        return
    for i, line in enumerate(lines, 1):
        if WALL_CLOCK_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "wall-clock", rel, i,
                "direct clock read — use maxson::MonotonicNow() / Stopwatch "
                "from common/time_util.h"))


def check_counter_write(root, rel, lines, out):
    if not rel.startswith("src/"):
        return
    if any(rel == a or rel.startswith(a) for a in COUNTER_WRITE_ALLOWLIST):
        return
    for i, line in enumerate(lines, 1):
        if COUNTER_WRITE_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "counter-write", rel, i,
                "GetCounter outside the deterministic publication sites — "
                "accumulate into QueryMetrics and let the merge publish"))


def expected_guard(rel):
    # src/foo/bar.h -> MAXSON_FOO_BAR_H_
    stem = rel[len("src/"):]
    return "MAXSON_" + re.sub(r"[/.]", "_", stem).upper() + "_"


def check_include_hygiene(root, rel, lines, out):
    for i, line in enumerate(lines, 1):
        if PARENT_INCLUDE_RE.search(line):
            out.append(Violation(
                "include-hygiene", rel, i,
                'parent-relative #include "../..." — include from the src/ '
                "root instead"))
    if rel.startswith("src/") and rel.endswith(".h"):
        guard = None
        for line in lines:
            m = GUARD_RE.search(line)
            if m:
                guard = m.group(1)
                break
        want = expected_guard(rel)
        if guard != want:
            out.append(Violation(
                "include-hygiene", rel, 1,
                f"include guard {guard or '(missing)'} should be {want}"))
    if rel.startswith("src/") and rel.endswith(".cc"):
        own = rel[len("src/"):-len(".cc")] + ".h"
        if os.path.exists(os.path.join(root, "src", own)):
            for i, line in enumerate(lines, 1):
                m = INCLUDE_RE.search(line)
                if m is None:
                    continue
                if m.group(1) != own:
                    out.append(Violation(
                        "include-hygiene", rel, i,
                        f'first #include must be the own header "{own}"'))
                break


def check_simd_intrinsics(root, rel, lines, out):
    if rel.startswith("src/simd/"):
        return
    for i, line in enumerate(lines, 1):
        if SIMD_INTRINSICS_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "simd-intrinsics", rel, i,
                "intrinsics header / cpu-feature probe outside src/simd/ — "
                "call the dispatched kernels from simd/kernels.h instead"))


def check_ondemand_tape(root, rel, lines, out):
    if rel.startswith("src/json/"):
        return
    for i, line in enumerate(lines, 1):
        if ONDEMAND_TAPE_INCLUDE_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "ondemand-tape", rel, i,
                "json/ondemand_tape.h is internal to src/json/ — consume "
                "the on-demand tier through json/ondemand_parser.h instead"))


def check_exec_layering(root, rel, lines, out):
    if not rel.startswith("src/exec/"):
        return
    for i, line in enumerate(lines, 1):
        code = strip_line_comment(line)
        if EXEC_BANNED_INCLUDE_RE.search(code):
            out.append(Violation(
                "exec-layering", rel, i,
                "src/exec/ must not include the parse/execute layers — the "
                "scheduler receives work as a SharedScanPassFn callback, "
                "never by calling parsers or the engine itself"))
        elif EXEC_BANNED_IDENT_RE.search(code):
            out.append(Violation(
                "exec-layering", rel, i,
                "parse/execute entry point named in src/exec/ — route the "
                "work through a pass callback supplied by the layer above"))


def check_nodiscard_guard(root, rel, lines, out):
    text = "".join(lines)
    for path, pattern in NODISCARD_REQUIRED:
        if rel == path and not re.search(pattern, text):
            out.append(Violation(
                "nodiscard-guard", rel, 0,
                f"required [[nodiscard]] declaration missing: /{pattern}/"))


def check_mutex_annotation(root, rel, lines, out):
    if not rel.startswith("src/") or rel == "src/common/thread_annotations.h":
        return
    annotated = set()
    for line in lines:
        for m in ANNOTATION_ARG_RE.finditer(line):
            for arg in m.group(1).split(","):
                annotated.add(re.split(r"->|\.", arg.strip())[-1])
    for i, line in enumerate(lines, 1):
        code = strip_line_comment(line)
        if RAW_MUTEX_MEMBER_RE.match(code):
            out.append(Violation(
                "mutex-annotation", rel, i,
                "raw std:: mutex member — use the annotated maxson::Mutex / "
                "SharedMutex from common/thread_annotations.h so the Clang "
                "thread-safety analysis covers it"))
            continue
        m = LOCK_TYPE_RE.match(code)
        if m and m.group(2) not in annotated:
            out.append(Violation(
                "mutex-annotation", rel, i,
                f"lock member {m.group(2)} is never referenced by a MAXSON_* "
                "annotation in this file — annotate the data it guards "
                "(MAXSON_GUARDED_BY) or the functions that take it "
                "(MAXSON_REQUIRES / MAXSON_EXCLUDES)"))


STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+)*"
    r"(?:Status|Result<[^;{}=]*>)\s+(\w+)\s*\(")
VOIDISH_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:virtual\s+|static\s+|inline\s+|constexpr\s+)*"
    r"(?:void|bool|int|size_t|uint64_t|int64_t|double|float|auto|"
    r"std::string)[&*]?\s+(\w+)\s*\(")
STMT_CALL_RE = re.compile(r"((?:\w+(?:\.|->|::))*)(\w+)\s*\(")


def check_status_discard(root, files, out):
    # Harvest Status / Result<T>-returning function names from src/ headers;
    # names also declared with a non-discardable return anywhere are dropped
    # as ambiguous (the textual check cannot do overload resolution).
    status_names = set()
    other_names = set()
    for rel, lines in files.items():
        if not rel.startswith("src/") or not rel.endswith(".h"):
            continue
        for line in lines:
            m = STATUS_DECL_RE.match(strip_line_comment(line))
            if m:
                status_names.add(m.group(1))
            m = VOIDISH_DECL_RE.match(strip_line_comment(line))
            if m:
                other_names.add(m.group(1))
    status_names -= other_names
    if not status_names:
        return
    for rel, lines in sorted(files.items()):
        if not rel.startswith("src/"):
            continue
        prev_end = ";"
        for i, line in enumerate(lines, 1):
            code = strip_line_comment(line).strip()
            if not code:
                continue
            starts_statement = prev_end in ";{}:"
            prev_end = code[-1]
            if not starts_statement:
                continue
            m = STMT_CALL_RE.match(code)
            if m and m.group(2) in status_names:
                out.append(Violation(
                    "status-discard", rel, i,
                    f"result of {m.group(2)}() is discarded — handle the "
                    "Status/Result or cast to (void) with a comment saying "
                    "why failure is ignorable"))


METRIC_LITERAL_RE = re.compile(r'"(maxson_[a-z0-9_]+)"')
METRIC_NAMES_HEADER = "src/obs/metric_names.h"


def check_metric_names(root, files, out):
    declared = set()
    for line in files.get(METRIC_NAMES_HEADER, ()):
        declared.update(METRIC_LITERAL_RE.findall(line))
    for rel, lines in sorted(files.items()):
        if not rel.startswith("src/") or rel == METRIC_NAMES_HEADER:
            continue
        for i, line in enumerate(lines, 1):
            for name in METRIC_LITERAL_RE.findall(strip_line_comment(line)):
                if name not in declared:
                    out.append(Violation(
                        "metric-name", rel, i,
                        f'metric "{name}" is not declared in '
                        "src/obs/metric_names.h — add a named constant "
                        "there and use it at the call site"))


def check_trailing_ws(root, rel, lines, out, fix):
    dirty = [i for i, line in enumerate(lines, 1)
             if TRAILING_WS_RE.search(line.rstrip("\n"))]
    if not dirty:
        return
    if fix:
        fixed = [TRAILING_WS_RE.sub("", line.rstrip("\n")) +
                 ("\n" if line.endswith("\n") else "") for line in lines]
        with open(os.path.join(root, rel), "w", encoding="utf-8") as f:
            f.writelines(fixed)
        lines[:] = fixed
        return
    for i in dirty:
        out.append(Violation("trailing-whitespace", rel, i,
                             "trailing whitespace"))


def check_final_newline(root, rel, lines, out, fix):
    if not lines:
        return
    ok = lines[-1].endswith("\n") and (len(lines) == 1 or lines[-1] != "\n")
    # also reject multiple blank lines at EOF
    if lines[-1] == "\n":
        ok = False
    if ok:
        return
    if fix:
        while lines and lines[-1].strip() == "":
            lines.pop()
        if lines:
            lines[-1] = lines[-1].rstrip("\n") + "\n"
        with open(os.path.join(root, rel), "w", encoding="utf-8") as f:
            f.writelines(lines)
        return
    out.append(Violation("final-newline", rel, len(lines),
                         "file must end with exactly one newline"))


def run_lint(root, fix=False):
    violations = []
    files = {}
    for rel in iter_cpp_files(root):
        lines = read_lines(root, rel)
        # Mechanical rules first: --fix then re-reads nothing, the in-place
        # edit keeps `lines` current for the semantic rules below.
        check_trailing_ws(root, rel, lines, violations, fix)
        check_final_newline(root, rel, lines, violations, fix)
        check_thread_create(root, rel, lines, violations)
        check_wall_clock(root, rel, lines, violations)
        check_counter_write(root, rel, lines, violations)
        check_simd_intrinsics(root, rel, lines, violations)
        check_ondemand_tape(root, rel, lines, violations)
        check_exec_layering(root, rel, lines, violations)
        check_include_hygiene(root, rel, lines, violations)
        check_nodiscard_guard(root, rel, lines, violations)
        check_mutex_annotation(root, rel, lines, violations)
        files[rel] = lines
    # Cross-file analyses run once over the collected tree.
    check_status_discard(root, files, violations)
    check_metric_names(root, files, violations)
    check_lock_order(root, files, violations)
    return violations


SELF_TEST_FILES = (
    # (rule, path, content) — each entry seeds that violation at that path
    # and the self-test requires the rule to fire *on that file*. Rules may
    # appear more than once to pin coverage of every guarded directory:
    # src/serve/ gets its own thread-create seed because the serving layer
    # waits on client threads and must never create threads of its own.
    ("thread-create", "src/engine/bad_thread.cc",
     '#include "engine/bad_thread.h"\n'
     "void f() { std::thread t([] {}); }\n"),
    ("thread-create", "src/serve/bad_thread.cc",
     '#include "serve/bad_thread.h"\n'
     "void g() { std::thread t([] {}); }\n"),
    ("wall-clock", "src/engine/bad_clock.cc",
     '#include "engine/bad_clock.h"\n'
     "auto t = std::chrono::steady_clock::now();\n"),
    ("counter-write", "src/engine/bad_counter.cc",
     '#include "engine/bad_counter.h"\n'
     'void f(R* r) { r->GetCounter("x")->Increment(); }\n'),
    ("simd-intrinsics", "src/engine/bad_intrinsics.cc",
     '#include "engine/bad_intrinsics.h"\n'
     "#include <immintrin.h>\n"),
    ("ondemand-tape", "src/engine/bad_tape.cc",
     '#include "engine/bad_tape.h"\n'
     '#include "json/ondemand_tape.h"\n'),
    # Two exec-layering seeds pin both detection paths: the include ban and
    # the entry-point-identifier ban.
    ("exec-layering", "src/exec/bad_include.cc",
     '#include "exec/bad_include.h"\n'
     '#include "engine/table_scan.h"\n'),
    ("exec-layering", "src/exec/bad_parse_call.cc",
     '#include "exec/bad_parse_call.h"\n'
     "void f() { maxson::storage::CorcReader reader; }\n"),
    ("include-hygiene", "src/engine/bad_guard.h",
     "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n"
     "#endif\n"),
    ("nodiscard-guard", "src/common/status.h",
     "class Status {};\n"),
    ("trailing-whitespace", "src/engine/bad_ws.cc",
     '#include "engine/bad_ws.h"\n'
     "int x = 1;   \n"),
    ("final-newline", "src/engine/bad_eof.cc",
     '#include "engine/bad_eof.h"\n'
     "int y = 2;"),
    # Lock-order seed: two classes whose methods nest each other's locks —
    # both edges are undeclared and together they form a hierarchy cycle,
    # so this seed pins the undeclared-edge and the cycle detection paths.
    (None, "src/engine/bad_order.h",
     "#ifndef MAXSON_ENGINE_BAD_ORDER_H_\n"
     "#define MAXSON_ENGINE_BAD_ORDER_H_\n"
     '#include "common/thread_annotations.h"\n'
     "namespace maxson::engine {\n"
     "class BadOrderA;\n"
     "class BadOrderB {\n"
     " public:\n"
     "  void Poke() MAXSON_EXCLUDES(mutex_);\n"
     "  Mutex mutex_;\n"
     "  BadOrderA* a_ = nullptr;\n"
     "};\n"
     "class BadOrderA {\n"
     " public:\n"
     "  void Touch() MAXSON_EXCLUDES(mutex_);\n"
     "  Mutex mutex_;\n"
     "  BadOrderB* b_ = nullptr;\n"
     "};\n"
     "}  // namespace maxson::engine\n"
     "#endif  // MAXSON_ENGINE_BAD_ORDER_H_\n"),
    ("lock-order", "src/engine/bad_order.cc",
     '#include "engine/bad_order.h"\n'
     "namespace maxson::engine {\n"
     "void BadOrderA::Touch() {\n"
     "  MutexLock lock(mutex_);\n"
     "  b_->Poke();\n"
     "}\n"
     "void BadOrderB::Poke() {\n"
     "  MutexLock lock(mutex_);\n"
     "  a_->Touch();\n"
     "}\n"
     "}  // namespace maxson::engine\n"),
    # Both mutex-annotation detection paths: a raw std::mutex member and an
    # annotated-type lock member no MAXSON_* annotation ever names.
    ("mutex-annotation", "src/engine/bad_mutex.h",
     "#ifndef MAXSON_ENGINE_BAD_MUTEX_H_\n"
     "#define MAXSON_ENGINE_BAD_MUTEX_H_\n"
     "#include <mutex>\n"
     '#include "common/thread_annotations.h"\n'
     "namespace maxson::engine {\n"
     "class BadMutex {\n"
     "  std::mutex raw_;\n"
     "  Mutex unreferenced_;\n"
     "};\n"
     "}  // namespace maxson::engine\n"
     "#endif  // MAXSON_ENGINE_BAD_MUTEX_H_\n"),
    (None, "src/engine/bad_discard.h",
     "#ifndef MAXSON_ENGINE_BAD_DISCARD_H_\n"
     "#define MAXSON_ENGINE_BAD_DISCARD_H_\n"
     "namespace maxson::engine {\n"
     "Status MutateThing();\n"
     "}  // namespace maxson::engine\n"
     "#endif  // MAXSON_ENGINE_BAD_DISCARD_H_\n"),
    ("status-discard", "src/engine/bad_discard.cc",
     '#include "engine/bad_discard.h"\n'
     "namespace maxson::engine {\n"
     "void Caller() {\n"
     "  MutateThing();\n"
     "}\n"
     "}  // namespace maxson::engine\n"),
    ("metric-name", "src/engine/bad_metric.cc",
     '#include "engine/bad_metric.h"\n'
     'void f(R* r) { r->GetGauge("maxson_bogus_gauge")->Set(1.0); }\n'),
)


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for _, rel, content in SELF_TEST_FILES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        found = run_lint(tmp)
        hits = {(v.rule, v.path) for v in found}
        for rule, rel, _ in SELF_TEST_FILES:
            # rule=None marks a support file another seed needs (a header
            # declaring what its .cc seed misuses); it need not fire itself.
            if rule is not None and (rule, rel) not in hits:
                failures.append(
                    f"rule {rule} did not fire on seeded violation in {rel}")
        # The lock-order seed must trip both detection paths: the
        # undeclared-edge report and the cycle report.
        order_msgs = [v.message for v in found
                      if v.rule == "lock-order"
                      and v.path == "src/engine/bad_order.cc"]
        if not any("undeclared nesting" in m for m in order_msgs):
            failures.append("lock-order did not report the undeclared edge")
        if not any("cycle" in m for m in order_msgs):
            failures.append("lock-order did not report the hierarchy cycle")
        # --fix must clear the mechanical categories and only those: the
        # semantic rules must survive a --fix run unrepaired and unsilenced.
        fixed_left = {v.rule for v in run_lint(tmp, fix=True)}
        for rule in ("trailing-whitespace", "final-newline"):
            if rule in fixed_left:
                failures.append(f"--fix did not repair {rule}")
        for rule in ("thread-create", "wall-clock", "counter-write",
                     "simd-intrinsics", "ondemand-tape", "exec-layering",
                     "lock-order", "mutex-annotation", "status-discard",
                     "metric-name"):
            if rule not in fixed_left:
                failures.append(f"--fix must not silence {rule}")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    rules = {rule for rule, _, _ in SELF_TEST_FILES if rule is not None}
    seeds = sum(1 for rule, _, _ in SELF_TEST_FILES if rule is not None)
    print(f"self-test OK: all {len(rules)} rules fire on "
          f"{seeds} seeded violations and --fix repairs only "
          "the mechanical ones")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fix", action="store_true",
                        help="auto-repair mechanical categories "
                             "(trailing-whitespace, final-newline)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: this repo)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    violations = run_lint(args.root, fix=args.fix)
    for v in violations:
        print(v)
    if violations:
        rules = sorted({v.rule for v in violations})
        print(f"\nlint: {len(violations)} violation(s) across rules: "
              f"{', '.join(rules)}", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
