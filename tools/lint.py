#!/usr/bin/env python3
"""Project lint for the Maxson repository.

Encodes the project-specific invariants that generic tooling cannot know
(see DESIGN.md, "Correctness tooling"):

  thread-create        No raw std::thread / std::jthread construction or
                       std::async outside src/exec/ — all parallelism flows
                       through the shared ThreadPool so the deterministic
                       merge discipline holds. The serving layer (src/serve/)
                       is explicitly covered: it blocks on client threads and
                       the shared pool, never spawning its own. Using
                       std::thread::id (e.g. for trace attribution) is fine;
                       creating threads is not.
  wall-clock           No direct std::chrono clock reads (steady_clock /
                       system_clock / high_resolution_clock) or C time
                       syscalls outside src/common/time_util.h. Every
                       timing site shares one monotonic clock.
  counter-write        MetricsRegistry::GetCounter may be called only at
                       the publication sites that sit *after* the
                       deterministic merge (src/obs itself, engine.cc's
                       PublishMetrics, the rewriter, the midnight cycle).
                       Scan/operator code must accumulate into QueryMetrics
                       and let the merge publish.
  include-hygiene      foo.cc includes its own foo.h first; no "../"
                       includes; headers carry canonical
                       MAXSON_<PATH>_H_ guards.
  nodiscard-guard      Status, Result<T>, and the MetricsRegistry lookup
                       helpers keep their [[nodiscard]] attributes (the
                       -Werror build enforces call sites; this guards the
                       declarations themselves).
  simd-intrinsics      Vendor intrinsics headers (<immintrin.h>, <arm_neon.h>
                       and friends) and __builtin_cpu_supports appear only
                       under src/simd/ — everything else calls the dispatched
                       kernels so one layer owns ISA-specific code and the
                       byte-identical-across-levels contract stays auditable.
  exec-layering        src/exec/ is the scheduling layer *below* parsing and
                       execution: it must not include engine/json/xml/core/
                       serve/catalog/ml/workload/simd headers nor name the
                       parse/execute entry points (MisonParser, CorcReader,
                       RawFilter, ExecutePlan, ExecuteScan). Scan work
                       reaches the scheduler as a SharedScanPassFn callback
                       supplied by the layer above, keeping the dependency
                       arrow engine -> exec one-directional.
  trailing-whitespace  No trailing blanks (mechanical; --fix rewrites).
  final-newline        Files end with exactly one newline (mechanical;
                       --fix rewrites).

Exit status: 0 when clean, 1 when violations remain, 2 on usage errors.
`--fix` auto-repairs the mechanical categories, then reports whatever is
left. `--self-test` seeds one violation per rule in a temp tree and checks
each rule fires — run by tools/ci.sh so a silently broken rule fails CI.
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned for C++ sources, relative to the repo root.
CPP_DIRS = ("src", "tests", "bench", "tools", "examples")
CPP_EXTS = (".h", ".hpp", ".cc", ".cpp")

# counter-write: publication sites that run after the deterministic merge.
COUNTER_WRITE_ALLOWLIST = (
    "src/obs/",              # the registry implementation itself
    "src/engine/engine.cc",  # PublishMetrics + plan-validation failures
    "src/core/maxson.cc",    # midnight-cycle outcome counters
    "src/core/maxson_parser.cc",  # rewrite outcome counters
    "src/serve/",            # serving-layer counters (admission, result
                             # cache) publish outside any query's merge
    "src/exec/shared_scan.cc",  # cross-query scan-sharing counters have no
                                # per-query merge barrier to publish behind
)

# nodiscard-guard: (file, regex that must match somewhere in the file).
NODISCARD_REQUIRED = (
    ("src/common/status.h", r"class\s+\[\[nodiscard\]\]\s+Status\b"),
    ("src/common/result.h", r"class\s+\[\[nodiscard\]\]\s+Result\b"),
    ("src/obs/metrics_registry.h", r"\[\[nodiscard\]\]\s+Counter\*\s+GetCounter"),
    ("src/obs/metrics_registry.h", r"\[\[nodiscard\]\]\s+Gauge\*\s+GetGauge"),
    ("src/obs/metrics_registry.h",
     r"\[\[nodiscard\]\]\s+Histogram\*\s+GetHistogram"),
)

THREAD_CREATE_RE = re.compile(r"std::(?:thread\b(?!::)|jthread\b|async\b)")
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)::now"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")
COUNTER_WRITE_RE = re.compile(r"\bGetCounter\s*\(")
SIMD_INTRINSICS_RE = re.compile(
    r"#\s*include\s+<(?:[a-z0-9]*mmintrin\.h|x86intrin\.h|arm_neon\.h)>"
    r"|__builtin_cpu_supports\b")
EXEC_BANNED_INCLUDE_RE = re.compile(
    r'#\s*include\s+"(?:engine|json|xml|core|serve|catalog|ml|workload|simd)/')
EXEC_BANNED_IDENT_RE = re.compile(
    r"\b(?:MisonParser|CorcReader|RawFilter|ExecutePlan|ExecuteScan)\b")
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s+"\.\./')
INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')
GUARD_RE = re.compile(r"#\s*ifndef\s+(\S+)")
TRAILING_WS_RE = re.compile(r"[ \t]+$")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, or 0 for whole-file findings
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_line_comment(line):
    """Removes a // comment (good enough: the banned tokens never appear in
    string literals in this codebase)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_cpp_files(root):
    for top in CPP_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def read_lines(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read().splitlines(keepends=True)


def check_thread_create(root, rel, lines, out):
    if not rel.startswith("src/") or rel.startswith("src/exec/"):
        return
    for i, line in enumerate(lines, 1):
        if THREAD_CREATE_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "thread-create", rel, i,
                "raw thread creation outside src/exec/ — use the shared "
                "exec::ThreadPool (TaskGroup / ParallelFor)"))


def check_wall_clock(root, rel, lines, out):
    if not rel.startswith("src/") or rel == "src/common/time_util.h":
        return
    for i, line in enumerate(lines, 1):
        if WALL_CLOCK_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "wall-clock", rel, i,
                "direct clock read — use maxson::MonotonicNow() / Stopwatch "
                "from common/time_util.h"))


def check_counter_write(root, rel, lines, out):
    if not rel.startswith("src/"):
        return
    if any(rel == a or rel.startswith(a) for a in COUNTER_WRITE_ALLOWLIST):
        return
    for i, line in enumerate(lines, 1):
        if COUNTER_WRITE_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "counter-write", rel, i,
                "GetCounter outside the deterministic publication sites — "
                "accumulate into QueryMetrics and let the merge publish"))


def expected_guard(rel):
    # src/foo/bar.h -> MAXSON_FOO_BAR_H_
    stem = rel[len("src/"):]
    return "MAXSON_" + re.sub(r"[/.]", "_", stem).upper() + "_"


def check_include_hygiene(root, rel, lines, out):
    for i, line in enumerate(lines, 1):
        if PARENT_INCLUDE_RE.search(line):
            out.append(Violation(
                "include-hygiene", rel, i,
                'parent-relative #include "../..." — include from the src/ '
                "root instead"))
    if rel.startswith("src/") and rel.endswith(".h"):
        guard = None
        for line in lines:
            m = GUARD_RE.search(line)
            if m:
                guard = m.group(1)
                break
        want = expected_guard(rel)
        if guard != want:
            out.append(Violation(
                "include-hygiene", rel, 1,
                f"include guard {guard or '(missing)'} should be {want}"))
    if rel.startswith("src/") and rel.endswith(".cc"):
        own = rel[len("src/"):-len(".cc")] + ".h"
        if os.path.exists(os.path.join(root, "src", own)):
            for i, line in enumerate(lines, 1):
                m = INCLUDE_RE.search(line)
                if m is None:
                    continue
                if m.group(1) != own:
                    out.append(Violation(
                        "include-hygiene", rel, i,
                        f'first #include must be the own header "{own}"'))
                break


def check_simd_intrinsics(root, rel, lines, out):
    if rel.startswith("src/simd/"):
        return
    for i, line in enumerate(lines, 1):
        if SIMD_INTRINSICS_RE.search(strip_line_comment(line)):
            out.append(Violation(
                "simd-intrinsics", rel, i,
                "intrinsics header / cpu-feature probe outside src/simd/ — "
                "call the dispatched kernels from simd/kernels.h instead"))


def check_exec_layering(root, rel, lines, out):
    if not rel.startswith("src/exec/"):
        return
    for i, line in enumerate(lines, 1):
        code = strip_line_comment(line)
        if EXEC_BANNED_INCLUDE_RE.search(code):
            out.append(Violation(
                "exec-layering", rel, i,
                "src/exec/ must not include the parse/execute layers — the "
                "scheduler receives work as a SharedScanPassFn callback, "
                "never by calling parsers or the engine itself"))
        elif EXEC_BANNED_IDENT_RE.search(code):
            out.append(Violation(
                "exec-layering", rel, i,
                "parse/execute entry point named in src/exec/ — route the "
                "work through a pass callback supplied by the layer above"))


def check_nodiscard_guard(root, rel, lines, out):
    text = "".join(lines)
    for path, pattern in NODISCARD_REQUIRED:
        if rel == path and not re.search(pattern, text):
            out.append(Violation(
                "nodiscard-guard", rel, 0,
                f"required [[nodiscard]] declaration missing: /{pattern}/"))


def check_trailing_ws(root, rel, lines, out, fix):
    dirty = [i for i, line in enumerate(lines, 1)
             if TRAILING_WS_RE.search(line.rstrip("\n"))]
    if not dirty:
        return
    if fix:
        fixed = [TRAILING_WS_RE.sub("", line.rstrip("\n")) +
                 ("\n" if line.endswith("\n") else "") for line in lines]
        with open(os.path.join(root, rel), "w", encoding="utf-8") as f:
            f.writelines(fixed)
        lines[:] = fixed
        return
    for i in dirty:
        out.append(Violation("trailing-whitespace", rel, i,
                             "trailing whitespace"))


def check_final_newline(root, rel, lines, out, fix):
    if not lines:
        return
    ok = lines[-1].endswith("\n") and (len(lines) == 1 or lines[-1] != "\n")
    # also reject multiple blank lines at EOF
    if lines[-1] == "\n":
        ok = False
    if ok:
        return
    if fix:
        while lines and lines[-1].strip() == "":
            lines.pop()
        if lines:
            lines[-1] = lines[-1].rstrip("\n") + "\n"
        with open(os.path.join(root, rel), "w", encoding="utf-8") as f:
            f.writelines(lines)
        return
    out.append(Violation("final-newline", rel, len(lines),
                         "file must end with exactly one newline"))


def run_lint(root, fix=False):
    violations = []
    for rel in iter_cpp_files(root):
        lines = read_lines(root, rel)
        # Mechanical rules first: --fix then re-reads nothing, the in-place
        # edit keeps `lines` current for the semantic rules below.
        check_trailing_ws(root, rel, lines, violations, fix)
        check_final_newline(root, rel, lines, violations, fix)
        check_thread_create(root, rel, lines, violations)
        check_wall_clock(root, rel, lines, violations)
        check_counter_write(root, rel, lines, violations)
        check_simd_intrinsics(root, rel, lines, violations)
        check_exec_layering(root, rel, lines, violations)
        check_include_hygiene(root, rel, lines, violations)
        check_nodiscard_guard(root, rel, lines, violations)
    return violations


SELF_TEST_FILES = (
    # (rule, path, content) — each entry seeds that violation at that path
    # and the self-test requires the rule to fire *on that file*. Rules may
    # appear more than once to pin coverage of every guarded directory:
    # src/serve/ gets its own thread-create seed because the serving layer
    # waits on client threads and must never create threads of its own.
    ("thread-create", "src/engine/bad_thread.cc",
     '#include "engine/bad_thread.h"\n'
     "void f() { std::thread t([] {}); }\n"),
    ("thread-create", "src/serve/bad_thread.cc",
     '#include "serve/bad_thread.h"\n'
     "void g() { std::thread t([] {}); }\n"),
    ("wall-clock", "src/engine/bad_clock.cc",
     '#include "engine/bad_clock.h"\n'
     "auto t = std::chrono::steady_clock::now();\n"),
    ("counter-write", "src/engine/bad_counter.cc",
     '#include "engine/bad_counter.h"\n'
     'void f(R* r) { r->GetCounter("x")->Increment(); }\n'),
    ("simd-intrinsics", "src/engine/bad_intrinsics.cc",
     '#include "engine/bad_intrinsics.h"\n'
     "#include <immintrin.h>\n"),
    # Two exec-layering seeds pin both detection paths: the include ban and
    # the entry-point-identifier ban.
    ("exec-layering", "src/exec/bad_include.cc",
     '#include "exec/bad_include.h"\n'
     '#include "engine/table_scan.h"\n'),
    ("exec-layering", "src/exec/bad_parse_call.cc",
     '#include "exec/bad_parse_call.h"\n'
     "void f() { maxson::storage::CorcReader reader; }\n"),
    ("include-hygiene", "src/engine/bad_guard.h",
     "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n"
     "#endif\n"),
    ("nodiscard-guard", "src/common/status.h",
     "class Status {};\n"),
    ("trailing-whitespace", "src/engine/bad_ws.cc",
     '#include "engine/bad_ws.h"\n'
     "int x = 1;   \n"),
    ("final-newline", "src/engine/bad_eof.cc",
     '#include "engine/bad_eof.h"\n'
     "int y = 2;"),
)


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for _, rel, content in SELF_TEST_FILES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        found = run_lint(tmp)
        hits = {(v.rule, v.path) for v in found}
        for rule, rel, _ in SELF_TEST_FILES:
            if (rule, rel) not in hits:
                failures.append(
                    f"rule {rule} did not fire on seeded violation in {rel}")
        # --fix must clear the mechanical categories and only those.
        fixed_left = {v.rule for v in run_lint(tmp, fix=True)}
        for rule in ("trailing-whitespace", "final-newline"):
            if rule in fixed_left:
                failures.append(f"--fix did not repair {rule}")
        for rule in ("thread-create", "wall-clock", "counter-write",
                     "simd-intrinsics", "exec-layering"):
            if rule not in fixed_left:
                failures.append(f"--fix must not silence {rule}")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    rules = {rule for rule, _, _ in SELF_TEST_FILES}
    print(f"self-test OK: all {len(rules)} rules fire on "
          f"{len(SELF_TEST_FILES)} seeded violations and --fix repairs only "
          "the mechanical ones")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fix", action="store_true",
                        help="auto-repair mechanical categories "
                             "(trailing-whitespace, final-newline)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: this repo)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    violations = run_lint(args.root, fix=args.fix)
    for v in violations:
        print(v)
    if violations:
        rules = sorted({v.rule for v in violations})
        print(f"\nlint: {len(violations)} violation(s) across rules: "
              f"{', '.join(rules)}", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
