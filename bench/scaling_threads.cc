// Thread-scaling curve of the parallel execution runtime: Q1–Q3 of the
// Table II suite at 1/2/4/8 threads, uncached (raw parsing is the work
// being parallelized), verifying byte-identical results at every degree.
//
// Writes BENCH_scaling.json with the per-query speedup curve. Speedups are
// only meaningful up to the machine's core count (reported in the JSON);
// on a single-core container every degree measures ~1x by construction.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/time_util.h"
#include "core/maxson.h"
#include "engine/fingerprint.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::BenchmarkQuery;

int main() {
  maxson::bench::PrintHeader(
      "Thread scaling — Q1-Q3 wall time at 1/2/4/8 execution threads",
      "split- and chunk-parallel execution shortens the read+parse critical "
      "path while keeping results byte-identical");

  maxson::bench::BenchWorkspace workspace("scaling");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 6ull << 20;
  suite.max_rows = 30000;
  // Several files per table so split parallelism has units to fan out.
  suite.rows_per_file = 5000;
  auto all_queries = maxson::workload::MakeTableIIQueries(suite);
  std::vector<BenchmarkQuery> queries;
  for (auto& q : all_queries) {
    if (q.name == "Q1" || q.name == "Q2" || q.name == "Q3") {
      queries.push_back(std::move(q));
    }
  }
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.engine.num_threads = 1;
  MaxsonSession session(&catalog, config);

  const unsigned cores = std::thread::hardware_concurrency();
  const std::vector<size_t> degrees = {1, 2, 4, 8};
  constexpr int kReps = 3;

  struct Point {
    size_t threads;
    double seconds;
  };
  struct Curve {
    std::string name;
    std::vector<Point> points;
  };
  std::vector<Curve> curves;

  std::printf("machine: %u hardware thread(s)\n\n", cores);
  std::printf("%-6s %8s %12s %9s\n", "query", "threads", "wall(ms)",
              "speedup");
  bool identical = true;
  for (const BenchmarkQuery& q : queries) {
    Curve curve;
    curve.name = q.name;
    std::string baseline_fp;
    double baseline_seconds = 0;
    for (const size_t threads : degrees) {
      maxson::core::SessionUpdate update;
      update.num_threads = threads;
      if (auto st = session.UpdateConfig(update); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      // Warmup (first run pays page-cache and speculation-training costs),
      // then best-of-kReps.
      auto warm = session.Execute(q.sql);
      if (!warm.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     warm.status().ToString().c_str());
        return 1;
      }
      // Cell-exact rendering (engine/fingerprint.h), so equal fingerprints
      // mean byte-identical results.
      const std::string fp = maxson::engine::FingerprintBatch(warm->batch);
      if (threads == 1) {
        baseline_fp = fp;
      } else if (fp != baseline_fp) {
        identical = false;
        std::fprintf(stderr, "%s: result diverged at %zu threads!\n",
                     q.name.c_str(), threads);
      }
      double best = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        maxson::Stopwatch timer;
        auto result = session.Execute(q.sql);
        const double elapsed = timer.ElapsedSeconds();
        if (!result.ok()) {
          std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        if (elapsed < best) best = elapsed;
      }
      if (threads == 1) baseline_seconds = best;
      curve.points.push_back(Point{threads, best});
      std::printf("%-6s %8zu %12.2f %8.2fx\n", q.name.c_str(), threads,
                  best * 1e3, baseline_seconds / best);
    }
    curves.push_back(std::move(curve));
  }
  std::printf("\nresults byte-identical across degrees: %s\n",
              identical ? "yes" : "NO");

  // Machine-readable curve for CI trend tracking.
  std::ofstream json("BENCH_scaling.json", std::ios::trunc);
  json << "{\n  \"bench\": \"scaling_threads\",\n";
  json << "  \"hardware_concurrency\": " << cores << ",\n";
  json << "  \"results_identical\": " << (identical ? "true" : "false")
       << ",\n  \"queries\": [\n";
  for (size_t i = 0; i < curves.size(); ++i) {
    json << "    {\"name\": \"" << curves[i].name << "\", \"curve\": [";
    for (size_t p = 0; p < curves[i].points.size(); ++p) {
      const Point& point = curves[i].points[p];
      json << (p ? ", " : "") << "{\"threads\": " << point.threads
           << ", \"seconds\": " << point.seconds << ", \"speedup\": "
           << curves[i].points[0].seconds / point.seconds << "}";
    }
    json << "]}" << (i + 1 < curves.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("wrote BENCH_scaling.json\n");
  return identical ? 0 : 1;
}
